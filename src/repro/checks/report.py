"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.checks.findings import Finding


def render_text(findings: Sequence[Finding], scanned: int | None = None) -> str:
    """GCC-style one-line-per-finding report plus a per-rule summary."""
    if not findings:
        suffix = f" across {scanned} files" if scanned is not None else ""
        return f"repro check: clean{suffix} (0 findings)"
    lines: list[str] = []
    for f in findings:
        lines.append(f.render())
        if f.snippet:
            lines.append(f"    {f.snippet}")
    by_rule = Counter(f.rule for f in findings)
    summary = ", ".join(f"{rid}: {n}" for rid, n in sorted(by_rule.items()))
    lines.append("")
    lines.append(
        f"repro check: {len(findings)} finding(s) — {summary}"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], scanned: int | None = None) -> str:
    """One JSON document: ``{summary: {...}, findings: [...]}``."""
    by_rule: dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    doc = {
        "summary": {
            "findings": len(findings),
            "files_scanned": scanned,
            "by_rule": dict(sorted(by_rule.items())),
        },
        "findings": [f.as_dict() for f in findings],
    }
    return json.dumps(doc, indent=2, sort_keys=False)


__all__ = ["render_text", "render_json"]
