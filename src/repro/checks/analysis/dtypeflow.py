"""Interprocedural dtype-exactness flow (DTY110).

The lattice mirrors the paper's exactness contract:

* ``exact-int`` — exact integers in an int64-class container (quantize
  outputs, ``astype(int64)`` of a value that never lost exactness);
* ``exact-float`` — exact integers carried in float64 (bit planes,
  im2col columns, ``np.rint`` output) — the GEMM-operand domain;
* ``tainted`` — a value that *was* exact and then lost it: narrowed
  below float64/int64, divided, or combined with a non-integral float;
* ``unknown`` — everything else (ordinary float math is fine: ``pgemm``
  also serves the non-quantized conv path).

Per-function facts are symbolic bases recorded by the summarizer
(:mod:`repro.checks.analysis.summary`): a GEMM argument may be a lattice
constant, ``param i``, a conditional taint over another basis, or a
one-level ``call`` result.  This pass resolves those bases over the call
graph — callee returns, params bound to caller arguments — and reports
DTY110 wherever a resolved-**tainted** value reaches a ``pgemm`` /
``plan_gemm`` argument, anchored at the *tainting operation* with the
sink named in the message.  That is what retires the name-heuristic
DTY103: no identifier conventions, only provenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.checks.analysis.callgraph import CallGraph
from repro.checks.analysis.project import FunctionRef, Project
from repro.checks.findings import Finding, Severity

_MAX_DEPTH = 6


@dataclass(frozen=True)
class Resolved:
    """A fully-resolved lattice value with taint provenance."""

    value: str                     #: exact-int | exact-float | unknown | tainted
    taint_line: int = 0
    taint_reason: str = ""
    taint_module: str = ""


_UNKNOWN = Resolved("unknown")


class DtypeFlow:
    """Whole-program basis resolver."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        self.project: Project = graph.project
        self._returns_cache: dict[str, Resolved] = {}

    # -- basis resolution --------------------------------------------------

    def resolve(
        self,
        basis: dict[str, Any],
        ref: FunctionRef,
        bindings: list[Resolved] | None = None,
        depth: int = 0,
    ) -> Resolved:
        """Resolve a symbolic basis in the context of function ``ref``.

        ``bindings`` maps the function's parameters to resolved caller
        arguments when following a call edge; without bindings a
        ``param`` basis stays unknown (the function is analyzed as
        externally callable).
        """
        if depth > _MAX_DEPTH or not isinstance(basis, dict):
            return _UNKNOWN
        k = basis.get("k")
        if k == "lat":
            v = basis.get("v", "unknown")
            return Resolved(v) if v in ("exact-int", "exact-float") else _UNKNOWN
        if k == "param":
            i = basis.get("i", -1)
            if bindings is not None and 0 <= i < len(bindings):
                return bindings[i]
            return _UNKNOWN
        if k == "taint":
            inner = self.resolve(basis.get("base", {}), ref, bindings, depth + 1)
            if inner.value == "tainted":
                return inner
            if inner.value in ("exact-int", "exact-float"):
                return Resolved(
                    "tainted",
                    taint_line=int(basis.get("line", 0)),
                    taint_reason=str(basis.get("reason", "exactness lost")),
                    taint_module=ref.module,
                )
            return _UNKNOWN
        if k == "call":
            callee = self.project.resolve_call(ref, str(basis.get("callee", "")))
            args = [
                self.resolve(a, ref, bindings, depth + 1)
                for a in basis.get("args", ())
            ]
            # A tainted argument flowing into *any* call keeps its taint
            # only if the callee passes it through to its return — which
            # requires resolving the callee; unresolvable callees launder
            # conservatively to unknown.
            if callee is None:
                return _UNKNOWN
            return self._returns_of(callee, args, depth + 1)
        return _UNKNOWN

    def _returns_of(
        self, ref: FunctionRef, args: list[Resolved], depth: int
    ) -> Resolved:
        fn = self.project.function(ref)
        if fn is None or depth > _MAX_DEPTH:
            return _UNKNOWN
        return self.resolve(fn.returns, ref, bindings=args, depth=depth)

    # -- sink collection ---------------------------------------------------

    def _gemm_sinks(self) -> Iterator[tuple[FunctionRef, Any]]:
        for ref, fn in self.project.iter_functions():
            for g in fn.gemm_calls:
                yield ref, g

    def findings(self) -> Iterator[Finding]:
        """DTY110: resolved-tainted values reaching GEMM arguments."""
        seen: set[tuple[str, int, str]] = set()
        # Pass 1: sinks whose argument bases resolve without bindings
        # (taint originated inside the sink's own function or via calls).
        for ref, gemm in self._gemm_sinks():
            for idx, basis in enumerate(gemm.args):
                res = self.resolve(basis, ref)
                if res.value == "tainted":
                    f = self._make_finding(ref, gemm, idx, res, seen)
                    if f is not None:
                        yield f
        # Pass 2: taint crossing a call edge into a function whose param
        # reaches a GEMM — walk call sites with resolvable tainted args.
        param_sinks = self._params_reaching_gemm()
        for ref, fn in self.project.iter_functions():
            for site in fn.calls:
                if not site.args:
                    continue
                callee = self.project.resolve_call(ref, site.callee)
                if callee is None:
                    continue
                sink_params = param_sinks.get(callee.fq)
                if not sink_params:
                    continue
                for i, basis in enumerate(site.args):
                    if i not in sink_params:
                        continue
                    res = self.resolve(basis, ref)
                    if res.value != "tainted":
                        continue
                    gemm_line, gemm_path = sink_params[i]
                    f = self._taint_finding(
                        res,
                        sink_desc=(
                            f"reaches a GEMM operand in {callee.fq} "
                            f"({gemm_path}:{gemm_line}) via the call at "
                            f"{self.project.path_of(ref.module)}:{site.line}"
                        ),
                        seen=seen,
                    )
                    if f is not None:
                        yield f

    def _params_reaching_gemm(self) -> dict[str, dict[int, tuple[int, str]]]:
        """fq -> {param index -> (gemm line, path)} incl. one-level
        forwarding through calls to other param-sink functions."""
        direct: dict[str, dict[int, tuple[int, str]]] = {}
        for ref, fn in self.project.iter_functions():
            path = self.project.path_of(ref.module)
            for g in fn.gemm_calls:
                for basis in g.args:
                    if isinstance(basis, dict) and basis.get("k") == "param":
                        direct.setdefault(ref.fq, {})[int(basis["i"])] = (
                            g.line, path,
                        )
        # Forwarding: f passes its param j as arg i of g where g's param
        # i reaches a GEMM -> f's param j reaches that GEMM too.
        for _ in range(_MAX_DEPTH):
            changed = False
            for ref, fn in self.project.iter_functions():
                for site in fn.calls:
                    callee = self.project.resolve_call(ref, site.callee)
                    if callee is None:
                        continue
                    sink_params = direct.get(callee.fq)
                    if not sink_params:
                        continue
                    for i, basis in enumerate(site.args):
                        if (
                            isinstance(basis, dict)
                            and basis.get("k") == "param"
                            and i in sink_params
                        ):
                            j = int(basis["i"])
                            slot = direct.setdefault(ref.fq, {})
                            if j not in slot:
                                slot[j] = sink_params[i]
                                changed = True
            if not changed:
                break
        return direct

    # -- finding construction ---------------------------------------------

    def _make_finding(
        self,
        ref: FunctionRef,
        gemm: Any,
        arg_index: int,
        res: Resolved,
        seen: set[tuple[str, int, str]],
    ) -> Finding | None:
        path = self.project.path_of(ref.module)
        return self._taint_finding(
            res,
            sink_desc=(
                f"flows into argument {arg_index} of "
                f"`{gemm.callee}` at {path}:{gemm.line}"
            ),
            seen=seen,
        )

    def _taint_finding(
        self,
        res: Resolved,
        sink_desc: str,
        seen: set[tuple[str, int, str]],
    ) -> Finding | None:
        taint_path = self.project.path_of(res.taint_module)
        key = (taint_path, res.taint_line, sink_desc)
        if key in seen:
            return None
        seen.add(key)
        return Finding(
            rule="DTY110",
            severity=Severity.ERROR,
            path=taint_path,
            line=res.taint_line,
            col=0,
            message=(
                f"exact quantized value loses exactness here "
                f"({res.taint_reason}) and {sink_desc} — the bit-exact "
                "GEMM contract (docs/performance.md) is broken along "
                "this flow"
            ),
        )


def find_dtype_flow_violations(graph: CallGraph) -> Iterator[Finding]:
    """DTY110 over the whole project."""
    yield from DtypeFlow(graph).findings()


__all__ = ["DtypeFlow", "find_dtype_flow_violations", "Resolved"]
