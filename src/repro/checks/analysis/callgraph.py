"""Project-wide call graph, thread roots, and lockset propagation.

Built entirely from module summaries (no ASTs), so it runs identically
from the content-addressed cache.

**Call edges** carry the lockset syntactically held at the call site.
**Thread roots** are the functions handed to ``threading.Thread(target=…)``
/ ``mp.Process(target=…)`` factories or to ``pool.submit(fn, …)`` — the
places a second program counter enters the code.  Unresolvable targets
(e.g. ``self._httpd.serve_forever``, a stdlib method) are kept as named
pseudo-roots so the roots regression test still sees them appear.

**Entry locksets** are a must-hold fixpoint: the set of locks guaranteed
to be held on *every* resolved path into a function —
``entry(f) = ∩ over call sites (entry(caller) ∪ site locks)``, with
thread roots and externally-callable functions (no resolved callers)
pinned to ∅.  This is what lets THR210 accept a helper that mutates
shared state with the lock taken one call up, and what retires THR201's
same-function-only view in deep mode.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.checks.analysis.project import FunctionRef, Project


@dataclass(frozen=True)
class CallEdge:
    caller: str                    #: fq name
    callee: str                    #: fq name
    line: int
    locks: tuple[str, ...] = ()


@dataclass
class ThreadRoot:
    """One discovered thread/process entry point."""

    kind: str                      #: ``thread`` | ``process`` | ``submit``
    target: str                    #: fq function name, or the raw expr
    resolved: bool
    spawned_at: str                #: ``path:line`` of the spawning call
    spawner: str                   #: fq name of the spawning function


@dataclass
class CallGraph:
    project: Project
    edges: list[CallEdge] = field(default_factory=list)
    #: fq name -> outgoing edges / incoming edges
    out_edges: dict[str, list[CallEdge]] = field(default_factory=dict)
    in_edges: dict[str, list[CallEdge]] = field(default_factory=dict)
    roots: list[ThreadRoot] = field(default_factory=list)
    #: fq function -> set of root target fq names it is reachable from
    reachable_from: dict[str, set[str]] = field(default_factory=dict)
    #: fq function -> must-hold entry lockset
    entry_locks: dict[str, frozenset[str]] = field(default_factory=dict)
    #: fq function -> locks acquired here or in (transitive) callees
    transitive_acquires: dict[str, set[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        graph = cls(project=project)
        graph._build_edges()
        graph._discover_roots()
        graph._compute_reachability()
        graph._compute_entry_locks()
        graph._compute_transitive_acquires()
        return graph

    # -- construction ------------------------------------------------------

    def _build_edges(self) -> None:
        for ref, fn in self.project.iter_functions():
            for site in fn.calls:
                callee = self.project.resolve_call(ref, site.callee)
                if callee is None:
                    continue
                edge = CallEdge(
                    caller=ref.fq, callee=callee.fq, line=site.line,
                    locks=tuple(site.locks),
                )
                self.edges.append(edge)
        for e in self.edges:
            self.out_edges.setdefault(e.caller, []).append(e)
            self.in_edges.setdefault(e.callee, []).append(e)

    def _discover_roots(self) -> None:
        seen: set[tuple[str, str]] = set()
        for ref, fn in self.project.iter_functions():
            path = self.project.path_of(ref.module)
            for site in fn.calls:
                terminal = site.callee.split(".")[-1]
                kind: str | None = None
                raw: str | None = None
                if terminal in ("Thread", "Process") and site.target is not None:
                    kind = "thread" if terminal == "Thread" else "process"
                    raw = site.target
                elif terminal in ("submit", "apply_async") and site.arg0 is not None:
                    kind = "submit"
                    raw = site.arg0
                if kind is None or raw is None:
                    continue
                resolved = self.project.resolve_target(ref, raw)
                if resolved is None and kind == "submit":
                    # ``.submit(x)`` is ambiguous: the project's own
                    # Batcher/ClusterPool work queues take *data* as the
                    # first argument.  Only a resolvable function
                    # reference counts as an executor-style thread root;
                    # Thread/Process ``target=`` is unambiguous, so those
                    # stay visible as pseudo-roots even when unresolved.
                    continue
                target = resolved.fq if resolved is not None else (
                    f"{ref.module}.{raw}"
                )
                key = (kind, target)
                if key in seen:
                    continue
                seen.add(key)
                self.roots.append(
                    ThreadRoot(
                        kind=kind, target=target,
                        resolved=resolved is not None,
                        spawned_at=f"{path}:{site.line}",
                        spawner=ref.fq,
                    )
                )
        self.roots.sort(key=lambda r: (r.kind, r.target))

    def _compute_reachability(self) -> None:
        reach: dict[str, set[str]] = defaultdict(set)
        for root in self.roots:
            if not root.resolved:
                continue
            stack = [root.target]
            visited: set[str] = set()
            while stack:
                fq = stack.pop()
                if fq in visited:
                    continue
                visited.add(fq)
                reach[fq].add(root.target)
                for e in self.out_edges.get(fq, ()):
                    stack.append(e.callee)
        self.reachable_from = dict(reach)

    def _compute_entry_locks(self) -> None:
        """Must-hold fixpoint over resolved call edges (see module doc)."""
        TOP = None  # lattice top: "not yet constrained"
        entry: dict[str, frozenset[str] | None] = {}
        all_fns = [ref.fq for ref, _ in self.project.iter_functions()]
        for fq in all_fns:
            entry[fq] = TOP
        root_targets = {r.target for r in self.roots if r.resolved}
        pinned: set[str] = set()
        for fq in all_fns:
            terminal = fq.rsplit(".", 1)[-1]
            public = not terminal.startswith("_") or terminal.startswith("__")
            # Roots, externally-callable functions (no resolved callers),
            # and public API (callable from anywhere with no lock held)
            # are pinned to the empty entry lockset.
            if fq in root_targets or fq not in self.in_edges or public:
                entry[fq] = frozenset()
                pinned.add(fq)
        changed = True
        iters = 0
        while changed and iters < 50:
            changed = False
            iters += 1
            for fq in all_fns:
                incoming = self.in_edges.get(fq)
                if not incoming or fq in pinned:
                    continue
                acc: frozenset[str] | None = TOP
                for e in incoming:
                    caller_entry = entry.get(e.caller)
                    if caller_entry is TOP:
                        continue  # unconstrained caller: no info yet
                    locks = frozenset(caller_entry or ()) | frozenset(e.locks)
                    acc = locks if acc is TOP else (acc & locks)
                if acc is not TOP and acc != entry[fq]:
                    entry[fq] = acc
                    changed = True
        self.entry_locks = {
            fq: (locks if locks is not TOP else frozenset())
            for fq, locks in entry.items()
        }

    def _compute_transitive_acquires(self) -> None:
        acq: dict[str, set[str]] = {}
        for ref, fn in self.project.iter_functions():
            acq[ref.fq] = set(fn.acquires)
        changed = True
        iters = 0
        while changed and iters < 50:
            changed = False
            iters += 1
            for fq, locks in acq.items():
                for e in self.out_edges.get(fq, ()):
                    callee_locks = acq.get(e.callee)
                    if callee_locks and not callee_locks <= locks:
                        locks.update(callee_locks)
                        changed = True
        self.transitive_acquires = acq

    # -- queries -----------------------------------------------------------

    def roots_reaching(self, fq: str) -> set[str]:
        return self.reachable_from.get(fq, set())

    def entry_lockset(self, fq: str) -> frozenset[str]:
        return self.entry_locks.get(fq, frozenset())

    def ancestors_with_getpid(self, fq: str) -> bool:
        """Does any (transitive) caller contain a getpid fork-guard?"""
        stack = [fq]
        visited: set[str] = set()
        while stack:
            cur = stack.pop()
            if cur in visited:
                continue
            visited.add(cur)
            for e in self.in_edges.get(cur, ()):
                caller_ref = self._ref_for(e.caller)
                if caller_ref is not None:
                    fn = self.project.function(caller_ref)
                    if fn is not None and fn.has_getpid:
                        return True
                stack.append(e.caller)
        return False

    def _ref_for(self, fq: str) -> FunctionRef | None:
        for module in self.project.summaries:
            if fq.startswith(module + "."):
                qual = fq[len(module) + 1:]
                if qual in self.project.summaries[module].functions:
                    return FunctionRef(module, qual)
        return None


__all__ = ["CallGraph", "CallEdge", "ThreadRoot"]
