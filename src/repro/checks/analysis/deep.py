"""``repro check --deep`` — the whole-program analysis driver.

One deep run =

1. **shallow pass** — the per-file rules over the requested files (in
   ``--changed`` mode, just the changed subset), minus the rules a deep
   successor supersedes (``DTY103`` -> ``DTY110``);
2. **project build** — parse/summarize every file under the scan roots,
   serving summaries from the content-addressed cache when the source is
   unchanged;
3. **deep pass** — call graph + thread roots, interprocedural locksets
   (THR210/THR211), dtype-exactness flow (DTY110);
4. **upgrades** — shallow THR201/THR203 findings are re-judged with
   call-graph facts: a mutation that provably runs under a caller's lock,
   or a pool creation guarded by a caller's PID probe, is dropped;
5. **suppression** — deep findings obey the same physical-line
   ``# repro: noqa[RULE] — why`` policy as shallow ones.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from repro.checks.analysis.cache import DEFAULT_CACHE_DIR, SummaryCache
from repro.checks.analysis.callgraph import CallGraph
from repro.checks.analysis.dtypeflow import find_dtype_flow_violations
from repro.checks.analysis.lockset import (
    find_inconsistent_locksets,
    find_lock_order_inversions,
    upgrade_thr201,
    upgrade_thr203,
)
from repro.checks.analysis.project import Project
from repro.checks.engine import run as run_shallow
from repro.checks.engine import suppression_covers
from repro.checks.findings import Finding
from repro.checks.rules.deep import SUPERSEDED_BY_DEEP


class DeepResult:
    """Findings plus the run's bookkeeping (cache stats, timings)."""

    def __init__(
        self,
        findings: list[Finding],
        project: Project,
        graph: CallGraph,
        cache_stats: dict[str, int],
        elapsed: float,
    ):
        self.findings = findings
        self.project = project
        self.graph = graph
        self.cache_stats = cache_stats
        self.elapsed = elapsed


def _deep_findings(graph: CallGraph) -> list[Finding]:
    out: list[Finding] = []
    out.extend(find_inconsistent_locksets(graph))
    out.extend(find_lock_order_inversions(graph))
    out.extend(find_dtype_flow_violations(graph))
    return out


def _apply_suppressions(
    project: Project, findings: list[Finding]
) -> list[Finding]:
    tables = {
        ctx.path: ctx.suppressions for ctx in project.contexts.values()
    }
    kept = []
    for f in findings:
        table = tables.get(f.path)
        if table is not None and suppression_covers(table, f):
            continue
        kept.append(f)
    return kept


def run_deep(
    paths: Sequence[str] | str,
    rules: Iterable[str] | None = None,
    shallow_paths: Sequence[str] | None = None,
    cache_dir: str | None = DEFAULT_CACHE_DIR,
) -> DeepResult:
    """Run the combined shallow + whole-program analysis.

    ``paths`` are the project roots the deep analysis covers; the
    shallow per-file rules run over ``shallow_paths`` when given (the
    ``--changed`` subset) and over ``paths`` otherwise.  ``cache_dir``
    of ``None`` disables the summary cache.
    """
    start = time.perf_counter()
    if isinstance(paths, str):
        paths = [paths]

    # 1. Shallow rules, minus the superseded ones (unless explicitly
    # requested by id — an explicit --rules selection always wins).
    selected = list(rules) if rules is not None else None
    shallow_rules = selected
    if selected is None:
        from repro.checks.registry import iter_rules

        shallow_rules = [
            r.id for r in iter_rules() if r.id not in SUPERSEDED_BY_DEEP
        ]
    scan_paths = list(shallow_paths) if shallow_paths is not None else list(paths)
    findings = run_shallow(scan_paths, rules=shallow_rules) if scan_paths else []

    # 2./3. Whole-program phase from (cached) summaries.
    cache = SummaryCache(cache_dir) if cache_dir is not None else None
    project = Project.load(paths, cache=cache)
    graph = CallGraph.build(project)

    wanted = set(selected) if selected is not None else None
    deep = [
        f for f in _deep_findings(graph)
        if wanted is None or f.rule in wanted
    ]
    deep = _apply_suppressions(project, deep)
    findings.extend(deep)

    # 4. Call-graph upgrades of the syntactic THR rules.
    findings = upgrade_thr201(graph, findings)
    findings = upgrade_thr203(graph, findings)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return DeepResult(
        findings=findings,
        project=project,
        graph=graph,
        cache_stats=cache.stats() if cache is not None else {},
        elapsed=time.perf_counter() - start,
    )


def run_deep_sources(
    sources: dict[str, str],
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Deep analysis over in-memory ``{path: source}`` (fixture tests).

    Only the deep findings are returned (the shallow rules have their
    own fixture suites); suppressions still apply.
    """
    project = Project.from_sources(sources)
    graph = CallGraph.build(project)
    wanted = set(rules) if rules is not None else None
    deep = [
        f for f in _deep_findings(graph)
        if wanted is None or f.rule in wanted
    ]
    deep = _apply_suppressions(project, deep)
    deep.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return deep


__all__ = ["run_deep", "run_deep_sources", "DeepResult"]
