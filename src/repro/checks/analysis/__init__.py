"""Whole-program analysis for :mod:`repro.checks` (``repro check --deep``).

The per-file rules in :mod:`repro.checks.rules` are deliberately
syntactic — one AST at a time.  This subpackage adds the project-wide
view needed for rules that are *about* cross-function behavior:

* :mod:`~repro.checks.analysis.summary` — per-module function summaries
  (writes, lock acquisitions, call sites, dtype bases), the only thing
  retained after parsing a module;
* :mod:`~repro.checks.analysis.cache` — content-addressed summary cache
  (blake2b of source) so warm incremental runs skip re-parsing;
* :mod:`~repro.checks.analysis.project` — symbol table + import/method
  resolution over the summaries;
* :mod:`~repro.checks.analysis.callgraph` — call edges, thread-root
  discovery, reachability, must-hold entry locksets;
* :mod:`~repro.checks.analysis.lockset` — Eraser-style lockset reports
  (THR210) and static lock-order-inversion detection (THR211);
* :mod:`~repro.checks.analysis.dtypeflow` — the dtype-exactness lattice
  behind DTY110;
* :mod:`~repro.checks.analysis.deep` — the driver gluing it together.
"""

from repro.checks.analysis.cache import DEFAULT_CACHE_DIR, SummaryCache
from repro.checks.analysis.callgraph import CallGraph
from repro.checks.analysis.deep import DeepResult, run_deep, run_deep_sources
from repro.checks.analysis.project import Project

__all__ = [
    "DEFAULT_CACHE_DIR",
    "SummaryCache",
    "CallGraph",
    "Project",
    "DeepResult",
    "run_deep",
    "run_deep_sources",
]
