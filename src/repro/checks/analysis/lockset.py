"""Eraser-style lockset + lock-order analyses (THR210, THR211).

**THR210 — inconsistent lockset on shared mutable state.**  For every
module-level mutable variable, collect all writes across the project;
each write's effective lockset is the locks syntactically held at the
statement *plus* the writer function's must-hold entry lockset (locks
provably held by every resolved caller — the interprocedural part).  A
variable written from ≥ 2 distinct thread roots — or from one thread
root plus main-only code — whose write locksets share **no** common lock
is a race: no single lock consistently protects it.  One finding per
variable, anchored at the least-protected write.

**THR211 — lock-order inversion (static deadlock detector).**  Build the
*acquired-before* graph: an edge ``A -> B`` whenever ``B`` is acquired
while ``A`` is held — directly (nested ``with``), or through a call made
under ``A`` into a callee that (transitively) acquires ``B``.  Any cycle
is a potential ABBA deadlock; one finding per distinct cycle, anchored
at the lexically first acquisition that participates.

Both analyses only *report* races/cycles whose every lock token is
project-canonical; expression locks that could not be canonicalized
never silence a report but also never fabricate one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.checks.analysis.callgraph import CallGraph
from repro.checks.findings import Finding, Severity


@dataclass
class _WriteSite:
    var: str                       #: fq variable name (``module.name``)
    path: str
    line: int
    func: str                      #: fq function name
    locks: frozenset[str]
    roots: frozenset[str]


def _collect_writes(graph: CallGraph) -> dict[str, list[_WriteSite]]:
    by_var: dict[str, list[_WriteSite]] = {}
    project = graph.project
    for ref, fn in project.iter_functions():
        entry = graph.entry_lockset(ref.fq)
        roots = frozenset(graph.roots_reaching(ref.fq))
        path = project.path_of(ref.module)
        for w in fn.writes:
            var = f"{ref.module}.{w.name}"
            site = _WriteSite(
                var=var, path=path, line=w.line, func=ref.fq,
                locks=frozenset(w.locks) | entry, roots=roots,
            )
            by_var.setdefault(var, []).append(site)
    return by_var


def _fmt_locks(locks: frozenset[str]) -> str:
    return "{" + ", ".join(sorted(locks)) + "}" if locks else "{} (none)"


def find_inconsistent_locksets(graph: CallGraph) -> Iterator[Finding]:
    """THR210 findings over the whole project."""
    for var, sites in sorted(_collect_writes(graph).items()):
        thread_roots = frozenset().union(*(s.roots for s in sites))
        has_main_only_writer = any(not s.roots for s in sites)
        concurrent = len(thread_roots) >= 2 or (
            len(thread_roots) == 1 and has_main_only_writer
        )
        if not concurrent:
            continue
        common = sites[0].locks
        for s in sites[1:]:
            common &= s.locks
        if common:
            continue  # one lock consistently guards every write
        # Anchor at the least-protected write (fewest locks, then first).
        anchor = sorted(sites, key=lambda s: (len(s.locks), s.path, s.line))[0]
        others = [
            f"{s.path}:{s.line} holds {_fmt_locks(s.locks)}"
            for s in sorted(sites, key=lambda s: (s.path, s.line))
            if s is not anchor
        ]
        root_names = ", ".join(sorted(r.rsplit(".", 1)[-1] for r in thread_roots))
        detail = "; ".join(others[:4])
        if len(others) > 4:
            detail += f"; … {len(others) - 4} more"
        yield Finding(
            rule="THR210",
            severity=Severity.ERROR,
            path=anchor.path,
            line=anchor.line,
            col=0,
            message=(
                f"shared mutable `{var}` is written from {len(sites)} site(s) "
                f"reachable from thread root(s) [{root_names}]"
                + (" and main" if has_main_only_writer else "")
                + f" with no common lock — this write holds "
                f"{_fmt_locks(anchor.locks)}"
                + (f"; other writes: {detail}" if detail else "")
            ),
            extra={"var": var, "roots": sorted(thread_roots)},
        )


@dataclass(frozen=True)
class _AcqEdge:
    held: str
    acquired: str
    path: str
    line: int
    via: str                       #: fq function where the edge arises


def _acquired_before_edges(graph: CallGraph) -> list[_AcqEdge]:
    project = graph.project
    edges: dict[tuple[str, str], _AcqEdge] = {}

    def add(held: str, acquired: str, path: str, line: int, via: str) -> None:
        key = (held, acquired)
        if held != acquired and key not in edges:
            edges[key] = _AcqEdge(held, acquired, path, line, via)

    for ref, fn in project.iter_functions():
        path = project.path_of(ref.module)
        entry = graph.entry_lockset(ref.fq)
        # Direct nested acquisitions inside one function.
        for outer, inner, line in fn.acq_pairs:
            add(outer, inner, path, line, ref.fq)
        # Entry locks held around any acquisition in this function.
        for tok in fn.acquires:
            for held in entry:
                add(held, tok, path, fn.line, ref.fq)
        # Locks held at a call site ordered before everything the callee
        # (transitively) acquires.
        for site in fn.calls:
            if not site.locks:
                continue
            callee = project.resolve_call(ref, site.callee)
            if callee is None:
                continue
            for acquired in sorted(graph.transitive_acquires.get(callee.fq, ())):
                for held in site.locks:
                    add(held, acquired, path, site.line, ref.fq)
    return list(edges.values())


def find_lock_order_inversions(graph: CallGraph) -> Iterator[Finding]:
    """THR211 findings: cycles in the acquired-before graph."""
    edges = _acquired_before_edges(graph)
    out: dict[str, list[_AcqEdge]] = {}
    for e in edges:
        out.setdefault(e.held, []).append(e)

    # Enumerate simple cycles by DFS from each node (the graph is tiny —
    # one node per canonical lock).  Deduplicate by the cycle's lock set.
    reported: set[frozenset[str]] = set()
    findings: list[Finding] = []

    def path_back(start: str, frm: str) -> list[_AcqEdge] | None:
        """A path of edges from ``frm`` back to ``start`` (DFS)."""
        stack: list[tuple[str, list[_AcqEdge]]] = [(frm, [])]
        seen: set[str] = set()
        while stack:
            node, trail = stack.pop()
            if node == start:
                return trail
            if node in seen:
                continue
            seen.add(node)
            for e in out.get(node, ()):
                stack.append((e.acquired, trail + [e]))
        return None

    for e in sorted(edges, key=lambda e: (e.path, e.line, e.held, e.acquired)):
        back = path_back(e.held, e.acquired)
        if back is None:
            continue
        cycle = [e] + back
        key = frozenset(x.held for x in cycle)
        if key in reported:
            continue
        reported.add(key)
        order = " -> ".join([c.held for c in cycle] + [e.held])
        sites = "; ".join(
            f"{c.held} then {c.acquired} at {c.path}:{c.line} ({c.via})"
            for c in cycle
        )
        findings.append(
            Finding(
                rule="THR211",
                severity=Severity.ERROR,
                path=e.path,
                line=e.line,
                col=0,
                message=(
                    f"lock-order inversion: {order} — two threads taking "
                    f"these locks in opposite orders can deadlock; "
                    f"acquisitions: {sites}"
                ),
                extra={"cycle": sorted(key)},
            )
        )
    yield from findings


def upgrade_thr201(
    graph: CallGraph, findings: list[Finding]
) -> list[Finding]:
    """Drop THR201 findings whose statement provably runs under a lock
    on every resolved call path (the call-graph upgrade of the rule)."""
    kept: list[Finding] = []
    for f in findings:
        if f.rule != "THR201":
            kept.append(f)
            continue
        ref = graph.project.enclosing_function(f.path, f.line)
        if ref is not None and graph.entry_lockset(ref.fq):
            continue  # a caller provably holds a lock here
        kept.append(f)
    return kept


def upgrade_thr203(
    graph: CallGraph, findings: list[Finding]
) -> list[Finding]:
    """Drop THR203 findings when a (transitive) caller carries the
    PID-keyed fork-rebuild guard the same-file syntax could not see."""
    kept: list[Finding] = []
    for f in findings:
        if f.rule != "THR203":
            kept.append(f)
            continue
        ref = graph.project.enclosing_function(f.path, f.line)
        if ref is not None and graph.ancestors_with_getpid(ref.fq):
            continue
        kept.append(f)
    return kept


__all__ = [
    "find_inconsistent_locksets",
    "find_lock_order_inversions",
    "upgrade_thr201",
    "upgrade_thr203",
]
