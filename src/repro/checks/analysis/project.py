"""Project model: module discovery, summaries, and symbol resolution.

A :class:`Project` is the whole-program view the deep analyses run over:
every scanned module's :class:`~repro.checks.analysis.summary.ModuleSummary`
plus the file contexts (suppression tables) and a resolver that turns the
dotted call expressions recorded in summaries into fully-qualified
function names (``repro.cluster.router.ClusterPool._io_loop``).

Resolution is deliberately one-level and syntactic (this is still a
linter, not a type checker):

* ``name(...)``      -> same-module function, or an imported symbol;
* ``self.meth(...)`` -> method of the enclosing class or its resolvable
  bases;
* ``mod.func(...)``  -> function of an imported module;
* ``Class(...)``     -> ``Class.__init__``;
* ``self.attr.meth(...)`` / ``local.meth(...)`` -> method of the class
  recorded for the attribute/local (``self.attr = Class(...)``).

Anything else resolves to ``None`` and simply contributes no call edge —
the analyses stay conservative rather than guess.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.checks.analysis.cache import SummaryCache
from repro.checks.analysis.summary import ModuleSummary, summarize
from repro.checks.engine import FileContext, discover, make_context


def module_name_for(path: str) -> str:
    """Dotted module name for a file path.

    ``src/repro/core/gemm.py`` -> ``repro.core.gemm``.  Falls back to the
    path relative to its first package-ish component; ``__init__.py``
    names the package itself.
    """
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        # Strip leading absolute/relative noise; keep the last components
        # that look like an importable dotted path.
        parts = [p for p in parts if p not in ("/", ".", "..")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p) or "<module>"


@dataclass
class FunctionRef:
    """A fully-qualified function in the project."""

    module: str
    qualname: str          #: module-relative (``Class.meth`` or ``func``)

    @property
    def fq(self) -> str:
        return f"{self.module}.{self.qualname}"


@dataclass
class Project:
    """Summaries + contexts for one whole-program analysis run."""

    summaries: dict[str, ModuleSummary] = field(default_factory=dict)
    contexts: dict[str, FileContext] = field(default_factory=dict)
    #: modules whose source failed to parse (path -> error line)
    parse_failures: dict[str, int] = field(default_factory=dict)

    # -- construction ------------------------------------------------------

    @classmethod
    def load(
        cls,
        paths: Iterable[str],
        cache: SummaryCache | None = None,
    ) -> "Project":
        """Build a project from files/directories on disk."""
        project = cls()
        for file in discover(list(paths)):
            text = file.read_text(encoding="utf-8")
            path = str(file)
            module = module_name_for(path)
            try:
                ctx = make_context(text, path)
            except SyntaxError as exc:
                project.parse_failures[path] = exc.lineno or 1
                continue
            project.contexts[module] = ctx
            summary = cache.get(text) if cache is not None else None
            if summary is None or summary.module != module:
                summary = summarize(module, path, ctx.tree)
                if cache is not None:
                    cache.put(text, summary)
            project.summaries[module] = summary
        return project

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "Project":
        """Build a project from in-memory ``{relpath: source}`` (tests)."""
        project = cls()
        for path, text in sources.items():
            module = module_name_for(path)
            try:
                ctx = make_context(text, path)
            except SyntaxError as exc:
                project.parse_failures[path] = exc.lineno or 1
                continue
            project.contexts[module] = ctx
            project.summaries[module] = summarize(module, path, ctx.tree)
        return project

    # -- lookups -----------------------------------------------------------

    def function(self, ref: FunctionRef):
        mod = self.summaries.get(ref.module)
        if mod is None:
            return None
        return mod.functions.get(ref.qualname)

    def iter_functions(self) -> Iterable[tuple[FunctionRef, object]]:
        for module, summary in self.summaries.items():
            for qualname, fn in summary.functions.items():
                yield FunctionRef(module, qualname), fn

    def path_of(self, module: str) -> str:
        s = self.summaries.get(module)
        return s.path if s is not None else module

    def enclosing_function(self, path: str, line: int) -> FunctionRef | None:
        """The function whose body spans ``line`` in ``path``."""
        for module, summary in self.summaries.items():
            if summary.path != path:
                continue
            best: FunctionRef | None = None
            best_span = None
            for qualname, fn in summary.functions.items():
                if fn.line <= line <= fn.end_line:
                    span = fn.end_line - fn.line
                    if best_span is None or span < best_span:
                        best, best_span = FunctionRef(module, qualname), span
            return best
        return None

    # -- resolution --------------------------------------------------------

    def _symbol_in_module(self, module: str, name: str) -> FunctionRef | None:
        """``name`` as a function or class constructor in ``module``."""
        summary = self.summaries.get(module)
        if summary is None:
            return None
        if name in summary.functions:
            return FunctionRef(module, name)
        cls_info = summary.classes.get(name)
        if cls_info is not None:
            if "__init__" in cls_info.get("methods", ()):
                return FunctionRef(module, f"{name}.__init__")
            return FunctionRef(module, name)  # class without own __init__
        return None

    def _resolve_import(self, module: str, alias: str) -> str | None:
        summary = self.summaries.get(module)
        if summary is None:
            return None
        return summary.imports.get(alias)

    def _method_on_class(
        self, module: str, class_name: str, meth: str, _depth: int = 0
    ) -> FunctionRef | None:
        summary = self.summaries.get(module)
        if summary is None or _depth > 4:
            return None
        info = summary.classes.get(class_name)
        if info is None:
            return None
        if meth in info.get("methods", ()):
            return FunctionRef(module, f"{class_name}.{meth}")
        for base in info.get("bases", ()):
            ref = self._resolve_class(module, base)
            if ref is not None:
                found = self._method_on_class(
                    ref[0], ref[1], meth, _depth + 1
                )
                if found is not None:
                    return found
        return None

    def _resolve_class(
        self, module: str, dotted: str
    ) -> tuple[str, str] | None:
        """Resolve a class expression to ``(module, class_name)``."""
        parts = dotted.split(".")
        summary = self.summaries.get(module)
        if summary is None:
            return None
        if len(parts) == 1:
            if parts[0] in summary.classes:
                return (module, parts[0])
            target = summary.imports.get(parts[0])
            if target is not None:
                tmod, _, tname = target.rpartition(".")
                if tmod in self.summaries and tname in self.summaries[tmod].classes:
                    return (tmod, tname)
            return None
        head, rest = parts[0], parts[1:]
        target = summary.imports.get(head)
        if target is not None and target in self.summaries and len(rest) == 1:
            if rest[0] in self.summaries[target].classes:
                return (target, rest[0])
        return None

    def resolve_call(
        self, caller: FunctionRef, dotted: str
    ) -> FunctionRef | None:
        """Resolve a recorded call expression to a project function."""
        if not dotted:
            return None
        parts = dotted.split(".")
        module = caller.module
        summary = self.summaries.get(module)
        caller_fn = self.function(caller)
        class_name = getattr(caller_fn, "class_name", None)

        # self.meth(...) / cls.meth(...)
        if parts[0] in ("self", "cls") and class_name is not None:
            if len(parts) == 2:
                return self._method_on_class(module, class_name, parts[1])
            if len(parts) == 3 and summary is not None:
                # self.attr.meth(...): use the recorded attribute type.
                info = summary.classes.get(class_name, {})
                attr_cls = info.get("attr_types", {}).get(parts[1])
                if attr_cls is not None:
                    ref = self._resolve_class(module, attr_cls)
                    if ref is not None:
                        return self._method_on_class(ref[0], ref[1], parts[2])
            return None

        # bare name: local function/class, else imported symbol
        if len(parts) == 1:
            local = self._symbol_in_module(module, parts[0])
            if local is not None:
                return local
            target = self._resolve_import(module, parts[0])
            if target is not None:
                tmod, _, tname = target.rpartition(".")
                if target in self.summaries:
                    return None  # a module used bare — not callable
                if tmod in self.summaries:
                    return self._symbol_in_module(tmod, tname)
            return None

        # dotted: alias.attr[.attr2]
        target = self._resolve_import(module, parts[0])
        if target is not None:
            if target in self.summaries:
                tmod = target
                if len(parts) == 2:
                    return self._symbol_in_module(tmod, parts[1])
                if len(parts) == 3:
                    return self._method_on_class(tmod, parts[1], parts[2])
                return None
            # ``from x import Class`` then ``Class.method`` / ``Class()``
            tmod, _, tname = target.rpartition(".")
            if tmod in self.summaries:
                if len(parts) == 2:
                    return self._method_on_class(tmod, tname, parts[1])
            return None

        # ClassName.meth within the same module
        if len(parts) == 2 and summary is not None and parts[0] in summary.classes:
            return self._method_on_class(module, parts[0], parts[1])
        return None

    def resolve_target(
        self, caller: FunctionRef, dotted: str | None
    ) -> FunctionRef | None:
        """Resolve a thread/process target or submit arg to a function."""
        if dotted is None:
            return None
        return self.resolve_call(caller, dotted)


def parse_module(source: str, path: str = "<memory>") -> ast.Module:
    """Tiny helper kept for the analysis tests."""
    return ast.parse(source, filename=path)


__all__ = ["Project", "FunctionRef", "module_name_for", "parse_module"]
