"""Per-module summaries for the whole-program analyses.

One AST pass per module distills everything the interprocedural phases
need into a :class:`ModuleSummary` — a plain JSON-serializable record:

* **symbols** — module-level functions, classes (bases, methods, and the
  ``self.<attr> = ClassName(...)`` attribute types used for one-level
  method resolution), import aliases, module-level mutable state and
  lock definitions;
* **per-function facts** — resolved-enough call sites with the lockset
  held at each, module-state writes with their locksets, direct lock
  acquisitions and nested (outer, inner) acquisition pairs, thread /
  process / pool-submit spawn sites, and the dtype-exactness events the
  :mod:`repro.checks.analysis.dtypeflow` lattice consumes.

Summaries deliberately contain **no AST nodes** so they can round-trip
through the content-addressed cache (:mod:`repro.checks.analysis.cache`)
— the whole-program phase runs entirely from summaries, which is what
keeps warm incremental ``--deep`` runs fast.

Lock canonicalization
---------------------
Locks are named so the same object gets the same token everywhere:

* module-level lock -> ``<module>.<name>`` (``repro.core.gemm._state_lock``)
* ``self._lock`` in class C -> ``<module>.<C>._lock`` (all instances of a
  class share a token — exact for the process-wide singletons the THR
  rules guard, an over-approximation for multi-instance classes)
* ``<global>.lock`` -> ``<module>.<global>.lock``
* anything else (a local's attribute) -> ``<module>.<function>.<expr>``,
  a function-scoped token.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field
from typing import Any, Iterator

from repro.checks import astutil

#: Bump to invalidate every cached summary when the extraction changes.
SUMMARY_VERSION = 3

#: Callee terminal names that spawn a thread/process with ``target=``.
_SPAWN_FACTORIES = frozenset({"Thread", "Process"})

#: Callee terminal names whose first positional argument runs on a
#: worker thread (``pool.submit(fn, ...)``).
_SUBMIT_METHODS = frozenset({"submit", "apply_async"})

#: dtype spellings narrower than the float64/int64 exactness contract.
NARROW_DTYPES = frozenset({
    "float32", "float16", "int32", "int16", "int8",
    "uint8", "uint16", "uint32",
})

#: dtype spellings that keep (or establish) the exact-integer contract.
_WIDE_INT_DTYPES = frozenset({"int64", "uint64", "intp"})
_WIDE_FLOAT_DTYPES = frozenset({"float64", "double"})

#: Array-returning methods that preserve the element values exactly.
_VALUE_PRESERVING_METHODS = frozenset({
    "reshape", "transpose", "copy", "ravel", "flatten", "squeeze",
    "swapaxes", "view", "take",
})

#: np.* functions that preserve element values exactly.
_VALUE_PRESERVING_FUNCS = frozenset({
    "ascontiguousarray", "asarray", "array", "concatenate", "stack",
    "vstack", "hstack", "pad", "where", "take", "take_along_axis",
    "zeros_like", "empty_like",
})

#: Attribute reads that are bit-plane / packed-operand sources — the
#: ColumnCache / PackedConvWeights API (exact integers in float64).
_SOURCE_ATTRS = frozenset({
    "cols_high", "cols_low", "cols_full",
    "wmat_full", "wmat_high", "wmat_rest",
})

#: Resolved-callee terminal names that mint exact values.
_SOURCE_CALL_TERMINALS = frozenset({"bit_split", "rint"})
_SOURCE_CALL_PREFIXES = ("quantize",)

#: Terminal callee names that are GEMM sinks (resolution happens later;
#: the terminal match keeps fixtures independent of the repro tree).
GEMM_SINK_TERMINALS = frozenset({"pgemm", "plan_gemm"})


# --------------------------------------------------------------------------
# dtype-basis descriptors (the serializable mini-IR the flow phase reads)
# --------------------------------------------------------------------------

def lat(value: str) -> dict[str, Any]:
    """A lattice constant basis: exact-int | exact-float | unknown."""
    return {"k": "lat", "v": value}


UNKNOWN = lat("unknown")
EXACT_INT = lat("exact-int")
EXACT_FLOAT = lat("exact-float")


def taint_basis(line: int, reason: str, base: dict[str, Any]) -> dict[str, Any]:
    """A conditionally-tainted basis: tainted iff ``base`` is exact."""
    return {"k": "taint", "line": line, "reason": reason, "base": base}


def param_basis(index: int) -> dict[str, Any]:
    return {"k": "param", "i": index}


def call_basis(callee: str, line: int, args: list[dict[str, Any]]) -> dict[str, Any]:
    return {"k": "call", "callee": callee, "line": line, "args": args}


# --------------------------------------------------------------------------
# summary records
# --------------------------------------------------------------------------

@dataclass
class CallSite:
    """One resolvable call expression inside a function."""

    callee: str                    #: dotted expr as written (``self._run``)
    line: int
    locks: list[str] = field(default_factory=list)
    #: dotted expr of ``target=`` kwarg for Thread/Process factories
    target: str | None = None
    #: dotted expr of the first positional arg for ``submit``-style calls
    arg0: str | None = None
    #: dtype bases of positional args (for interprocedural taint flow)
    args: list[dict[str, Any]] = field(default_factory=list)


@dataclass
class StateWrite:
    """A write to module-level mutable state."""

    name: str                      #: the module-level variable name
    line: int
    locks: list[str] = field(default_factory=list)


@dataclass
class GemmCall:
    """A call into a GEMM sink (``pgemm`` / ``plan_gemm``)."""

    callee: str
    line: int
    args: list[dict[str, Any]] = field(default_factory=list)


@dataclass
class FunctionSummary:
    name: str                      #: module-relative qualname (``C.meth``)
    line: int
    end_line: int
    params: list[str] = field(default_factory=list)
    class_name: str | None = None
    calls: list[CallSite] = field(default_factory=list)
    writes: list[StateWrite] = field(default_factory=list)
    acquires: list[str] = field(default_factory=list)
    #: nested lock acquisitions: [outer, inner, line]
    acq_pairs: list[list[Any]] = field(default_factory=list)
    gemm_calls: list[GemmCall] = field(default_factory=list)
    #: dtype basis of the function's return value
    returns: dict[str, Any] = field(default_factory=lambda: dict(UNKNOWN))
    #: function contains an os.getpid() fork-guard probe
    has_getpid: bool = False


@dataclass
class ModuleSummary:
    module: str                    #: dotted module name
    path: str                      #: path as given to the engine
    version: int = SUMMARY_VERSION
    #: local alias -> qualified target (module or module.symbol)
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    #: class -> {"bases": [...], "methods": [...], "attr_types": {attr: cls}}
    classes: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: module-level mutable names -> definition line
    state: dict[str, int] = field(default_factory=dict)
    #: module-level lock names
    locks: list[str] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "ModuleSummary":
        out = cls(module=doc["module"], path=doc["path"],
                  version=doc.get("version", 0))
        out.imports = dict(doc.get("imports", {}))
        out.classes = {k: dict(v) for k, v in doc.get("classes", {}).items()}
        out.state = {k: int(v) for k, v in doc.get("state", {}).items()}
        out.locks = list(doc.get("locks", []))
        for name, f in doc.get("functions", {}).items():
            fs = FunctionSummary(
                name=f["name"], line=f["line"], end_line=f["end_line"],
                params=list(f.get("params", [])),
                class_name=f.get("class_name"),
                acquires=list(f.get("acquires", [])),
                acq_pairs=[list(p) for p in f.get("acq_pairs", [])],
                returns=dict(f.get("returns", UNKNOWN)),
                has_getpid=bool(f.get("has_getpid", False)),
            )
            fs.calls = [CallSite(**c) for c in f.get("calls", [])]
            fs.writes = [StateWrite(**w) for w in f.get("writes", [])]
            fs.gemm_calls = [GemmCall(**g) for g in f.get("gemm_calls", [])]
            out.functions[name] = fs
        return out


# --------------------------------------------------------------------------
# extraction
# --------------------------------------------------------------------------

def _module_mutable_state(tree: ast.Module) -> tuple[dict[str, int], list[str]]:
    """(mutable module-state names -> line, module-level lock names)."""
    state: dict[str, int] = {}
    locks: list[str] = []
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        for t in targets:
            if not isinstance(t, ast.Name):
                continue
            is_lock = "lock" in t.id.lower()
            if not is_lock and isinstance(value, ast.Call):
                ctor = astutil.terminal_name(value.func)
                is_lock = ctor in (
                    "Lock", "RLock", "Condition", "Semaphore",
                    "BoundedSemaphore",
                )
            if is_lock:
                locks.append(t.id)
                continue
            if t.id.startswith("__"):
                continue
            mutable = False
            if isinstance(value, (ast.Dict, ast.List, ast.Set,
                                  ast.ListComp, ast.DictComp, ast.SetComp)):
                mutable = True
            elif isinstance(value, ast.Call):
                callee = astutil.terminal_name(value.func)
                mutable = callee is not None and callee not in (
                    "frozenset", "tuple", "int", "float", "str", "bool",
                    "bytes", "compile", "Lock", "RLock", "Condition",
                    "Semaphore", "BoundedSemaphore", "Event", "local",
                    "get_logger", "namedtuple", "TypeVar", "getenv", "get",
                    "Path", "getLogger",
                )
            elif isinstance(value, ast.Constant):
                # Scalars (``_counter = 0``, ``_pool = None``) are shared
                # state too when a function rebinds them via ``global`` —
                # write recording still requires that declaration, so
                # never-rebound constants cost nothing.
                mutable = True
            if mutable:
                state[t.id] = stmt.lineno
    return state, locks


def _imports(tree: ast.Module, module: str) -> dict[str, str]:
    """Local alias -> absolute dotted target for top-level imports."""
    package = module.rsplit(".", 1)[0] if "." in module else ""
    aliases: dict[str, str] = {}
    for stmt in ast.walk(tree):
        if isinstance(stmt, ast.Import):
            for a in stmt.names:
                local = a.asname or a.name.split(".")[0]
                target = a.name if a.asname else a.name.split(".")[0]
                aliases[local] = target
        elif isinstance(stmt, ast.ImportFrom):
            base = stmt.module or ""
            if stmt.level:
                # Relative import: resolve against the enclosing package.
                parts = module.split(".")
                # level 1 = current package (for a module, its parent).
                anchor = parts[: len(parts) - stmt.level]
                base = ".".join(anchor + ([stmt.module] if stmt.module else []))
            for a in stmt.names:
                if a.name == "*":
                    continue
                local = a.asname or a.name
                aliases[local] = f"{base}.{a.name}" if base else a.name
    _ = package
    return aliases


def _lock_token(
    expr: ast.expr,
    module: str,
    class_name: str | None,
    func_qualname: str,
    module_locks: set[str],
) -> str:
    """Canonical token for a lock expression (see module docstring)."""
    dotted = astutil.dotted_name(expr)
    if dotted is None:
        return f"{module}.{func_qualname}.<expr@{getattr(expr, 'lineno', 0)}>"
    parts = dotted.split(".")
    if parts[0] == "self" and class_name is not None:
        return f"{module}.{class_name}." + ".".join(parts[1:])
    if parts[0] == "cls" and class_name is not None:
        return f"{module}.{class_name}." + ".".join(parts[1:])
    if parts[0] in module_locks or (len(parts) > 1 and parts[0].startswith("_")):
        # module-level lock, or ``<module-global>.lock``
        return f"{module}.{dotted}"
    if len(parts) == 1:
        # A bare name: module lock if defined there, else function-local.
        return f"{module}.{func_qualname}.{dotted}"
    return f"{module}.{func_qualname}.{dotted}"


def _is_lock_expr(expr: ast.expr, module_locks: set[str]) -> bool:
    """Lock heuristic plus the module's *declared* lock names, so
    ``with _a:`` counts when ``_a = threading.Lock()`` at module level
    even though the name itself does not contain ``lock``."""
    if astutil.is_lockish(expr):
        return True
    dotted = astutil.dotted_name(expr)
    return dotted is not None and dotted.split(".")[0] in module_locks


def _held_locks(
    node: ast.AST,
    parents: dict[ast.AST, ast.AST],
    func: ast.AST,
    module: str,
    class_name: str | None,
    func_qualname: str,
    module_locks: set[str],
) -> list[str]:
    """Canonical lockset held at ``node`` (enclosing ``with <lock>:``)."""
    held: list[str] = []
    for anc in astutil.ancestors(node, parents):
        if anc is func:
            break
        if isinstance(anc, ast.With):
            for item in anc.items:
                if _is_lock_expr(item.context_expr, module_locks):
                    tok = _lock_token(item.context_expr, module, class_name,
                                      func_qualname, module_locks)
                    if tok not in held:
                        held.append(tok)
    return held


def _iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str | None, str]]:
    """(function node, enclosing class name, module-relative qualname)."""
    for node in tree.body:
        if isinstance(node, astutil.FunctionNode):
            yield node, None, node.name
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, astutil.FunctionNode):
                    yield sub, node.name, f"{node.name}.{sub.name}"


def _class_info(tree: ast.Module) -> dict[str, dict[str, Any]]:
    classes: dict[str, dict[str, Any]] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        bases = [b for b in (astutil.dotted_name(x) for x in node.bases) if b]
        methods = [s.name for s in node.body if isinstance(s, astutil.FunctionNode)]
        attr_types: dict[str, str] = {}
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign):
                continue
            if not isinstance(sub.value, ast.Call):
                continue
            ctor = astutil.dotted_name(sub.value.func)
            if ctor is None:
                continue
            term = ctor.split(".")[-1]
            if not (term[:1].isupper()):
                continue
            for t in sub.targets:
                if (
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                ):
                    attr_types[t.attr] = ctor
        classes[node.name] = {
            "bases": bases, "methods": methods, "attr_types": attr_types,
        }
    return classes


class _DtypeEnv:
    """Flat per-function dtype environment (var name -> basis)."""

    def __init__(self, params: list[str]):
        self.vars: dict[str, dict[str, Any]] = {
            p: param_basis(i) for i, p in enumerate(params)
        }

    def get(self, name: str) -> dict[str, Any]:
        return self.vars.get(name, UNKNOWN)

    def set(self, name: str, basis: dict[str, Any]) -> None:
        self.vars[name] = basis


def _dtype_of_astype_arg(arg: ast.expr) -> str | None:
    """The dtype name an ``astype`` argument spells, if recognizable."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    name = astutil.terminal_name(arg)
    return name


def _is_integral_const(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        v = node.value
        if isinstance(v, bool):
            return True
        if isinstance(v, int):
            return True
        if isinstance(v, float):
            return float(v).is_integer()
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_integral_const(node.operand)
    return False


def _is_nonintegral_float_const(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return not float(node.value).is_integer()
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_nonintegral_float_const(node.operand)
    return False


def _basis_maybe_exact(basis: dict[str, Any]) -> bool:
    """Could this basis resolve to an exact value interprocedurally?"""
    k = basis.get("k")
    if k == "lat":
        return basis.get("v") in ("exact-int", "exact-float")
    return k in ("param", "call", "taint")


class _FunctionExtractor:
    """Single-function fact extraction (locks, calls, writes, dtype)."""

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
        qualname: str,
        module: str,
        module_state: dict[str, int],
        module_locks: set[str],
        parents: dict[ast.AST, ast.AST],
    ):
        self.func = func
        self.class_name = class_name
        self.qualname = qualname
        self.module = module
        self.module_state = module_state
        self.module_locks = module_locks
        self.parents = parents
        params = [a.arg for a in func.args.args]
        if params and params[0] in ("self", "cls") and class_name is not None:
            pass  # keep self as param 0 so indices line up with call args
        self.env = _DtypeEnv(params)
        self.out = FunctionSummary(
            name=qualname,
            line=func.lineno,
            end_line=getattr(func, "end_lineno", func.lineno) or func.lineno,
            params=params,
            class_name=class_name,
        )
        #: local var -> class name (``x = ClassName(...)``)
        self.local_types: dict[str, str] = {}

    # -- dtype basis evaluation -------------------------------------------

    def eval_expr(self, node: ast.expr) -> dict[str, Any]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            if node.attr in _SOURCE_ATTRS:
                return EXACT_FLOAT
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            return self.eval_expr(node.value)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return self.eval_expr(node.operand)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or isinstance(node.value, int):
                return EXACT_INT
            if isinstance(node.value, float) and node.value.is_integer():
                return EXACT_FLOAT
            return UNKNOWN
        return UNKNOWN

    def _eval_binop(self, node: ast.BinOp) -> dict[str, Any]:
        left = self.eval_expr(node.left)
        right = self.eval_expr(node.right)
        if isinstance(node.op, ast.Div):
            for side in (left, right):
                if _basis_maybe_exact(side):
                    return taint_basis(
                        node.lineno, "division leaves the exact-integer domain",
                        side,
                    )
            return UNKNOWN
        if isinstance(node.op, (ast.Mult, ast.Add, ast.Sub)):
            for basis, other_node in ((left, node.right), (right, node.left)):
                if _basis_maybe_exact(basis) and _is_nonintegral_float_const(other_node):
                    return taint_basis(
                        node.lineno,
                        "non-integral float constant breaks exactness",
                        basis,
                    )
            if _basis_maybe_exact(left) and _is_integral_const(node.right):
                return left
            if _basis_maybe_exact(right) and _is_integral_const(node.left):
                return right
            if _basis_maybe_exact(left) and _basis_maybe_exact(right):
                # exact op exact stays exact (integer algebra)
                return left
            return UNKNOWN
        if isinstance(node.op, (ast.LShift, ast.RShift, ast.Mod, ast.FloorDiv)):
            if _basis_maybe_exact(left):
                return left
            return UNKNOWN
        return UNKNOWN

    def _eval_call(self, node: ast.Call) -> dict[str, Any]:
        dotted = astutil.dotted_name(node.func) or ""
        terminal = astutil.terminal_name(node.func) or ""
        # astype: narrowing taints an exact value; widening to int64
        # establishes / keeps exactness; float64 keeps it.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and node.args
        ):
            base = self.eval_expr(node.func.value)
            dt = _dtype_of_astype_arg(node.args[0])
            if dt in NARROW_DTYPES:
                if _basis_maybe_exact(base):
                    return taint_basis(
                        node.lineno, f"astype({dt}) narrows below the "
                        "float64/int64 exactness contract", base,
                    )
                return UNKNOWN
            if dt in _WIDE_INT_DTYPES:
                if base.get("k") == "taint":
                    return base
                return EXACT_INT
            if dt in _WIDE_FLOAT_DTYPES:
                return base if _basis_maybe_exact(base) else UNKNOWN
            return UNKNOWN
        if terminal in _SOURCE_CALL_TERMINALS:
            return EXACT_FLOAT if terminal == "rint" else EXACT_INT
        if any(terminal.startswith(p) for p in _SOURCE_CALL_PREFIXES):
            return EXACT_INT
        if terminal in _VALUE_PRESERVING_METHODS and isinstance(
            node.func, ast.Attribute
        ):
            return self.eval_expr(node.func.value)
        if terminal in _VALUE_PRESERVING_FUNCS and node.args:
            return self.eval_expr(node.args[-1 if terminal == "where" else 0])
        if terminal in ("float32", "float16", "single", "half"):
            if node.args:
                base = self.eval_expr(node.args[0])
                if _basis_maybe_exact(base):
                    return taint_basis(
                        node.lineno, f"np.{terminal}() narrows below the "
                        "exactness contract", base,
                    )
            return UNKNOWN
        # A generic call: symbolic, resolved at the whole-program phase.
        args = [self.eval_expr(a) for a in node.args]
        return call_basis(dotted or terminal or "<call>", node.lineno, args)

    # -- statement walk ----------------------------------------------------

    def run(self) -> FunctionSummary:
        for sub in ast.walk(self.func):
            if (
                (isinstance(sub, ast.Attribute) and sub.attr == "getpid")
                or (isinstance(sub, ast.Name) and sub.id == "getpid")
            ):
                self.out.has_getpid = True
                break
        self._walk_body(self.func.body)
        return self.out

    def _walk_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, astutil.FunctionNode) or isinstance(stmt, ast.ClassDef):
            return  # nested defs are their own scope; skip conservatively
        if isinstance(stmt, ast.Assign):
            basis = self.eval_expr(stmt.value)
            for t in stmt.targets:
                if isinstance(t, ast.Name):
                    self.env.set(t.id, basis)
                    if isinstance(stmt.value, ast.Call):
                        ctor = astutil.dotted_name(stmt.value.func)
                        if ctor and ctor.split(".")[-1][:1].isupper():
                            self.local_types[t.id] = ctor
            self._record_write(stmt)
            self._scan_calls(stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._record_write(stmt)
            self._scan_calls(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and isinstance(stmt.target, ast.Name):
                self.env.set(stmt.target.id, self.eval_expr(stmt.value))
            self._scan_calls(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.out.returns = self.eval_expr(stmt.value)
            self._scan_calls(stmt)
        elif isinstance(stmt, ast.With):
            self._record_with(stmt)
            self._scan_calls_exprs([i.context_expr for i in stmt.items])
            self._walk_body(stmt.body)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._scan_calls_exprs([stmt.test])
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self._scan_calls_exprs([stmt.iter])
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self._walk_body(stmt.body)
            for h in stmt.handlers:
                self._walk_body(h.body)
            self._walk_body(stmt.orelse)
            self._walk_body(stmt.finalbody)
        else:
            self._record_write(stmt)
            self._scan_calls(stmt)

    def _locks_at(self, node: ast.AST) -> list[str]:
        return _held_locks(node, self.parents, self.func, self.module,
                           self.class_name, self.qualname, self.module_locks)

    def _record_with(self, stmt: ast.With) -> None:
        inner: list[str] = []
        for item in stmt.items:
            if _is_lock_expr(item.context_expr, self.module_locks):
                tok = _lock_token(item.context_expr, self.module,
                                  self.class_name, self.qualname,
                                  self.module_locks)
                inner.append(tok)
                if tok not in self.out.acquires:
                    self.out.acquires.append(tok)
        if inner:
            outer = self._locks_at(stmt)
            for o in outer:
                for i in inner:
                    if o != i:
                        self.out.acq_pairs.append([o, i, stmt.lineno])

    def _record_write(self, stmt: ast.stmt) -> None:
        names: list[str] = []
        if isinstance(stmt, (ast.Assign, ast.AugAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            declared = self._global_names()
            for t in targets:
                if isinstance(t, (ast.Attribute, ast.Subscript)):
                    base = t.value
                    if isinstance(base, ast.Name) and base.id in self.module_state:
                        names.append(base.id)
                elif isinstance(t, ast.Name) and t.id in self.module_state:
                    if t.id in declared:
                        names.append(t.id)
                elif isinstance(t, ast.Tuple):
                    for el in t.elts:
                        if (
                            isinstance(el, ast.Name)
                            and el.id in self.module_state
                            and el.id in declared
                        ):
                            names.append(el.id)
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            f = call.func
            if (
                isinstance(f, ast.Attribute)
                and f.attr in ("append", "extend", "add", "update", "clear",
                               "pop", "popitem", "remove", "discard",
                               "insert", "setdefault", "move_to_end")
                and isinstance(f.value, ast.Name)
                and f.value.id in self.module_state
            ):
                names.append(f.value.id)
        elif isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                if isinstance(t, (ast.Attribute, ast.Subscript)):
                    base = t.value
                    if isinstance(base, ast.Name) and base.id in self.module_state:
                        names.append(base.id)
        if not names:
            return
        locks = self._locks_at(stmt)
        for name in names:
            self.out.writes.append(
                StateWrite(name=name, line=stmt.lineno, locks=locks)
            )

    def _global_names(self) -> set[str]:
        declared: set[str] = set()
        for sub in ast.walk(self.func):
            if isinstance(sub, ast.Global):
                declared.update(sub.names)
        return declared

    def _scan_calls(self, stmt: ast.stmt) -> None:
        self._scan_calls_exprs([stmt])

    def _scan_calls_exprs(self, nodes: list[ast.AST]) -> None:
        for root in nodes:
            if root is None:
                continue
            for node in ast.walk(root):
                if isinstance(node, ast.Call):
                    self._record_call(node)

    def _record_call(self, node: ast.Call) -> None:
        dotted = astutil.dotted_name(node.func)
        if dotted is None:
            return
        terminal = dotted.split(".")[-1]
        locks = self._locks_at(node)
        site = CallSite(callee=dotted, line=node.lineno, locks=locks)
        if terminal in _SPAWN_FACTORIES:
            for kw in node.keywords:
                if kw.arg == "target":
                    site.target = astutil.dotted_name(kw.value)
        if terminal in _SUBMIT_METHODS and node.args:
            site.arg0 = astutil.dotted_name(node.args[0])
        if terminal in GEMM_SINK_TERMINALS:
            gargs = [self.eval_expr(a) for a in node.args[:2]]
            self.out.gemm_calls.append(
                GemmCall(callee=dotted, line=node.lineno, args=gargs)
            )
        else:
            site.args = [self.eval_expr(a) for a in node.args[:6]]
        self.out.calls.append(site)


def summarize(module: str, path: str, tree: ast.Module) -> ModuleSummary:
    """Extract the whole-program facts for one parsed module."""
    state, lock_names = _module_mutable_state(tree)
    parents = astutil.parent_map(tree)
    out = ModuleSummary(module=module, path=path)
    out.imports = _imports(tree, module)
    out.state = state
    out.locks = [f"{module}.{name}" for name in lock_names]
    out.classes = _class_info(tree)
    module_locks = set(lock_names)
    for func, class_name, qualname in _iter_functions(tree):
        fx = _FunctionExtractor(
            func, class_name, qualname, module, state, module_locks, parents
        )
        out.functions[qualname] = fx.run()
    return out


__all__ = [
    "SUMMARY_VERSION",
    "NARROW_DTYPES",
    "GEMM_SINK_TERMINALS",
    "CallSite",
    "StateWrite",
    "GemmCall",
    "FunctionSummary",
    "ModuleSummary",
    "summarize",
    "lat",
    "taint_basis",
    "param_basis",
    "call_basis",
    "UNKNOWN",
    "EXACT_INT",
    "EXACT_FLOAT",
]
