"""Content-addressed per-module summary cache.

Key = ``blake2b(source || analysis-version)``; value = the module's
:class:`~repro.checks.analysis.summary.ModuleSummary` as JSON under
``.repro-check-cache/``.  Because the whole-program phase runs purely
from summaries, a warm cache turns an incremental ``repro check --deep
--changed`` into: hash every file, load every summary from disk, re-run
only the (cheap) graph phases — no re-parsing, no re-extraction.

The cache is safe to delete at any time and safe to share between
branches: keys are content hashes, so a stale entry can never be served
for edited source, and :data:`~repro.checks.analysis.summary.SUMMARY_VERSION`
participates in the key so extraction changes invalidate everything.
Writes go through a temp file + ``os.replace`` so a crashed run never
leaves a torn JSON behind.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.checks.analysis.summary import SUMMARY_VERSION, ModuleSummary

#: Default cache directory, relative to the working tree.
DEFAULT_CACHE_DIR = ".repro-check-cache"


def source_digest(source: str) -> str:
    """Stable content key for one module's source."""
    h = hashlib.blake2b(digest_size=16)
    h.update(f"repro-check-summary-v{SUMMARY_VERSION}:".encode())
    h.update(source.encode("utf-8"))
    return h.hexdigest()


class SummaryCache:
    """Load/store :class:`ModuleSummary` records by source digest."""

    def __init__(self, root: str | os.PathLike[str] = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def get(self, source: str) -> ModuleSummary | None:
        path = self._path_for(source_digest(source))
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if doc.get("version") != SUMMARY_VERSION:
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_json(doc)
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(self, source: str, summary: ModuleSummary) -> None:
        digest = source_digest(source)
        path = self._path_for(digest)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".{os.getpid()}.tmp")
            tmp.write_text(
                json.dumps(summary.to_json(), separators=(",", ":")),
                encoding="utf-8",
            )
            os.replace(tmp, path)
        except OSError:
            # A read-only tree (sdist install, CI cache miss) only costs
            # the speedup, never correctness.
            pass

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}


__all__ = ["SummaryCache", "source_digest", "DEFAULT_CACHE_DIR"]
