"""``repro check`` — the CLI face of the static analyzer.

Exit codes (pinned in ``tests/checks/test_cli.py``):

* ``0`` — scan ran, zero unsuppressed findings;
* ``1`` — scan ran, at least one finding;
* ``2`` — usage error (unknown rule id, nonexistent path, bad flag).
"""

from __future__ import annotations

import argparse
import subprocess
from pathlib import Path
from typing import Sequence

from repro.checks.engine import discover, run
from repro.checks.registry import families, iter_rules
from repro.checks.report import render_json, render_text
from repro.obs.log import console


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``repro check`` argument schema (shared with ``__main__``)."""
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to scan (default: src/)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="ID[,ID...]",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format (sarif targets GitHub code scanning)",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="scan only .py files changed vs git HEAD (pre-commit mode); "
        "outside a git work-tree this falls back to a full scan",
    )
    parser.add_argument(
        "--deep", action="store_true",
        help="also run the whole-program analyses (THR210/THR211/DTY110); "
        "with --changed, shallow rules cover the changed subset while the "
        "deep pass still sees the full tree (from the summary cache)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="summary-cache directory for --deep "
        "(default: .repro-check-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the --deep summary cache",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )


def _changed_files(paths: Sequence[str]) -> list[str] | None:
    """``.py`` files changed vs HEAD (staged, unstaged, untracked).

    Returns ``None`` when git is unavailable or the working directory is
    not inside a work-tree (e.g. an exported tarball) — the caller falls
    back to a full-tree scan instead of crashing.
    """
    cmds = (
        ["git", "diff", "--name-only", "HEAD", "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    names: set[str] = set()
    for cmd in cmds:
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, check=False
            )
        except OSError:
            return None  # git binary missing
        if proc.returncode != 0:
            return None  # not a work-tree, unborn HEAD, etc.
        names.update(line.strip() for line in proc.stdout.splitlines() if line.strip())
    roots = [Path(p).resolve() for p in paths]
    out = []
    for name in sorted(names):
        p = Path(name)
        if p.suffix != ".py" or not p.exists():
            continue
        rp = p.resolve()
        if any(rp == r or r in rp.parents for r in roots):
            out.append(str(p))
    return out


def _render_rule_list() -> str:
    lines = ["repro check — registered rules", ""]
    fam_titles = {
        "dtype": "dtype-exactness",
        "threads": "thread-safety",
        "obs": "obs-discipline",
        "numeric": "numeric-safety",
    }
    for family, ids in families().items():
        lines.append(f"[{fam_titles.get(family, family)}]")
        for rule in iter_rules(ids):
            marker = " [deep]" if rule.deep else ""
            lines.append(
                f"  {rule.id}  ({rule.severity.value:<7}) {rule.summary}{marker}"
            )
        lines.append("")
    lines.append("SUP001  (error  ) `# repro: noqa[RULE]` without a justification")
    lines.append("")
    lines.append("rules marked [deep] need `repro check --deep` (whole-program)")
    lines.append("suppress with: <code>  # repro: noqa[RULE] — <why it is safe>")
    return "\n".join(lines)


def run_check(args: argparse.Namespace) -> int:
    """Execute ``repro check`` from parsed arguments."""
    if args.list_rules:
        console(_render_rule_list())
        return 0

    paths = list(args.paths or [])
    if not paths:
        default = Path("src")
        if not default.is_dir():
            console(
                "repro check: error: no paths given and ./src does not exist",
                err=True,
            )
            return 2
        paths = [str(default)]

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]

    deep = getattr(args, "deep", False)
    try:
        # Validate rule ids before touching the filesystem.
        list(iter_rules(rules))
        shallow_paths: list[str] | None = None
        if args.changed:
            changed = _changed_files(paths)
            if changed is None:
                console(
                    "repro check: warning: --changed needs a git work-tree; "
                    "falling back to a full scan",
                    err=True,
                )
            elif not changed and not deep:
                console("repro check: no changed .py files — nothing to scan")
                return 0
            else:
                # Deep mode keeps the full roots for the whole-program
                # pass; only the shallow per-file rules narrow to the
                # changed subset.
                if deep:
                    shallow_paths = changed
                else:
                    paths = changed
        scanned = len(discover(paths))
        if deep:
            result = _run_deep(args, paths, rules, shallow_paths)
            findings = result.findings
        else:
            findings = run(paths, rules=rules)
    except KeyError as exc:
        console(f"repro check: error: {exc.args[0]}", err=True)
        return 2
    except (FileNotFoundError, RuntimeError) as exc:
        console(f"repro check: error: {exc}", err=True)
        return 2

    if args.format == "json":
        console(render_json(findings, scanned))
    elif args.format == "sarif":
        from repro.checks.sarif import render_sarif

        console(render_sarif(findings, scanned))
    else:
        console(render_text(findings, scanned))
    return 1 if findings else 0


def _run_deep(
    args: argparse.Namespace,
    paths: Sequence[str],
    rules: Sequence[str] | None,
    shallow_paths: Sequence[str] | None,
):
    """Dispatch to the whole-program driver with the cache flags applied."""
    from repro.checks.analysis import DEFAULT_CACHE_DIR, run_deep

    cache_dir: str | None
    if getattr(args, "no_cache", False):
        cache_dir = None
    else:
        cache_dir = getattr(args, "cache_dir", None) or DEFAULT_CACHE_DIR
    return run_deep(
        paths, rules=rules, shallow_paths=shallow_paths, cache_dir=cache_dir
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.checks.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="project-invariant static analyzer (repro.checks)",
    )
    add_check_arguments(parser)
    try:
        args = parser.parse_args(list(argv) if argv is not None else None)
    except SystemExit as exc:  # argparse exits 2 on usage errors already
        return int(exc.code or 0)
    return run_check(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())


__all__ = ["add_check_arguments", "run_check", "main"]
