"""Observability-discipline rules (``OBS``).

Invariants (``src/repro/obs/``): all human/machine output flows through
``repro.obs.log`` (``console()`` for user-facing text, loggers for
diagnostics) so ``--log-json`` runs stay machine-parsable; tracer spans
are opened with ``with trace.span(...)`` so they always close (an
unbalanced span corrupts the thread-local stack and every nesting
depth after it); span counters are recorded while the span is open;
request-path spans in serve/cluster code run under an active
``TraceContext`` so the merged multi-process trace has no orphans.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.astutil import (
    ancestors,
    dotted_name,
    enclosing_function,
    terminal_name,
)
from repro.checks.engine import FileContext
from repro.checks.findings import Finding, Severity
from repro.checks.registry import rule

_STREAM_WRITES = frozenset({"sys.stdout", "sys.stderr"})


@rule(
    id="OBS301",
    family="obs",
    severity=Severity.ERROR,
    summary="bare print()/sys.stdout.write in src/ — use repro.obs.log",
    invariant=(
        "All output flows through repro.obs.log (console() or a logger) "
        "so --log-json runs emit only machine-parsable lines and CLI "
        "tables survive redirection; a stray print() corrupts both."
    ),
    exempt_paths=("repro/obs/log.py",),  # the console() implementation
)
def check_bare_print(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            yield ctx.finding(
                "OBS301", node,
                "bare print() — use repro.obs.log.console() (user-facing) "
                "or get_logger(...) (diagnostics)",
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "write"
            and dotted_name(node.func.value) in _STREAM_WRITES
        ):
            yield ctx.finding(
                "OBS301", node,
                f"direct {dotted_name(node.func.value)}.write() — route "
                "through repro.obs.log so JSON mode stays parsable",
            )


def _is_with_context(call: ast.Call, ctx: FileContext) -> bool:
    parent = ctx.parents.get(call)
    return isinstance(parent, ast.withitem) and parent.context_expr is call


@rule(
    id="OBS302",
    family="obs",
    severity=Severity.ERROR,
    summary="tracer span not opened via `with` (unbalanced span risk)",
    invariant=(
        "_ActiveSpan pushes onto a thread-local stack on __enter__ and "
        "pops on __exit__; a span held outside `with` can leak an entry "
        "and mis-parent every later span on that thread."
    ),
    exempt_paths=("repro/obs/trace.py",),  # the implementation itself
)
def check_span_without_with(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and terminal_name(node.func) == "span"
        ):
            continue
        if _is_with_context(node, ctx):
            continue
        yield ctx.finding(
            "OBS302", node,
            "span(...) result used outside a `with` statement — open "
            "spans as `with trace.span(...) as sp:` so they always close",
        )


def _span_bindings(
    func: ast.AST,
) -> dict[str, list[ast.With]]:
    """``with *.span(...) as NAME`` bindings inside one function."""
    bindings: dict[str, list[ast.With]] = {}
    for node in ast.walk(func):
        if not isinstance(node, ast.With):
            continue
        for item in node.items:
            if (
                isinstance(item.context_expr, ast.Call)
                and terminal_name(item.context_expr.func) == "span"
                and isinstance(item.optional_vars, ast.Name)
            ):
                bindings.setdefault(item.optional_vars.id, []).append(node)
    return bindings


@rule(
    id="OBS303",
    family="obs",
    severity=Severity.ERROR,
    summary="span counter recorded outside the span's `with` block",
    invariant=(
        "sp.add()/sp.set() after __exit__ mutates a record that was "
        "already emitted (or silently hits the shared NOOP_SPAN); "
        "counters must be recorded while the span is open."
    ),
    exempt_paths=("repro/obs/trace.py",),
)
def check_counter_outside_span(ctx: FileContext) -> Iterator[Finding]:
    funcs = [
        n for n in ast.walk(ctx.tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for func in funcs:
        bindings = _span_bindings(func)
        if not bindings:
            continue
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("add", "set")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in bindings
            ):
                continue
            # Only flag if this call belongs to *this* function (not a
            # nested one that re-walks would also visit).
            if enclosing_function(node, ctx.parents) is not func:
                continue
            withs = bindings[node.func.value.id]
            if any(anc in withs for anc in ancestors(node, ctx.parents)):
                continue
            yield ctx.finding(
                "OBS303", node,
                f"`{node.func.value.id}.{node.func.attr}(...)` outside "
                "the `with` block that opened the span — record counters "
                "before the span closes",
            )


#: Directories whose spans sit on the request path and must parent into
#: the distributed trace (see ``repro.obs.trace.TraceContext``).
_REQUEST_PATH_DIRS = ("repro/serve/", "repro/cluster/")

#: Calls that establish the active trace context in a function.
_CONTEXT_CALLS = frozenset({"activate", "request_context"})


@rule(
    id="OBS304",
    family="obs",
    severity=Severity.ERROR,
    summary="request-path span opened without an active TraceContext",
    invariant=(
        "Spans in serve/cluster request-handling code must run under the "
        "request's TraceContext — minted with request_context() at the "
        "edge or re-activated with activate(ctx) past a thread/process "
        "hop — or they surface as orphan roots in the merged trace."
    ),
    exempt_paths=(
        # Build-time spans (session construction), not request handling.
        "repro/serve/session.py",
    ),
)
def check_span_without_trace_context(ctx: FileContext) -> Iterator[Finding]:
    if not any(d in ctx.posix_path for d in _REQUEST_PATH_DIRS):
        return
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and terminal_name(node.func) == "span"
        ):
            continue
        func = enclosing_function(node, ctx.parents)
        if func is None:
            continue
        establishes = any(
            isinstance(n, ast.Call)
            and terminal_name(n.func) in _CONTEXT_CALLS
            for n in ast.walk(func)
        )
        if establishes:
            continue
        yield ctx.finding(
            "OBS304", node,
            "span(...) on the request path without an active TraceContext "
            "— mint one with trace.request_context(...) at the edge or "
            "re-activate the request's context with activate(ctx) first",
        )


__all__ = [
    "check_bare_print",
    "check_span_without_with",
    "check_counter_outside_span",
    "check_span_without_trace_context",
]
