"""Plan-discipline rules (``PLN``).

Invariant (``src/repro/core/plan.py`` + ``colcache.py``): im2col column
caches are expensive per-call state.  The compiled-plan path and the
executors obtain them through a provider — the engine's shared
``cache_provider`` (sweep reuse) or the executor's ``_fresh_cache``
factory — so cache policy lives in exactly one place.  A bare
``ColumnCache(...)`` construction anywhere else silently opts that call
site out of sweep-cache reuse *and* out of the plan's pre-bound im2col
geometry, which reads as a perf regression nobody can find.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.astutil import enclosing_function, terminal_name
from repro.checks.engine import FileContext
from repro.checks.findings import Finding, Severity
from repro.checks.registry import rule

#: Function names allowed to construct caches directly: the executor's
#: own factory hook (``ODQConvExecutor._fresh_cache`` and siblings).
_PROVIDER_FUNCS = frozenset({"_fresh_cache"})


@rule(
    id="PLN501",
    family="plan",
    severity=Severity.ERROR,
    summary="per-call ColumnCache(...) outside a plan/cache provider",
    invariant=(
        "ColumnCache objects are built only by the colcache module "
        "itself or inside a provider hook (_fresh_cache); ad-hoc "
        "construction bypasses SweepColumnCache reuse and the compiled "
        "plan's frozen im2col geometry."
    ),
    exempt_paths=("repro/core/colcache.py",),  # the implementation
)
def check_adhoc_column_cache(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and terminal_name(node.func) in ("ColumnCache", "SweepColumnCache")
        ):
            continue
        if terminal_name(node.func) == "SweepColumnCache":
            # The sweep cache *is* a provider; constructing one is fine.
            continue
        func = enclosing_function(node, ctx.parents)
        if func is not None and func.name in _PROVIDER_FUNCS:
            continue
        yield ctx.finding(
            "PLN501", node,
            "ColumnCache(...) constructed outside a cache provider — go "
            "through executor._build_cache() (honors the engine's "
            "cache_provider) or a _fresh_cache factory so sweep reuse "
            "and plan geometry stay in effect",
        )


#: Engine attributes that make up the compiled-plan state machine.
_PLAN_STATE_ATTRS = frozenset({"_plans", "_active_plan"})

#: Methods that mutate an OrderedDict (reads like .get/.values are fine).
_MUTATING_METHODS = frozenset({
    "clear", "pop", "popitem", "move_to_end", "update", "setdefault",
})

#: Modules that own the plan cache's lifecycle.
_PLAN_OWNERS = ("repro/core/pipeline.py", "repro/core/plan.py")


@rule(
    id="PLN502",
    family="plan",
    severity=Severity.ERROR,
    summary="engine plan state (_plans/_active_plan) mutated externally",
    invariant=(
        "The plan cache's LRU order, staleness bookkeeping, and "
        "_plan_stats counters are maintained by "
        "QuantizedInferenceEngine._infer_locked and InferencePlan.run "
        "alone; outside writes desynchronize the counters and can leave "
        "_active_plan dangling across inferences.  Reading the state "
        "(describe()/metrics) is fine."
    ),
    exempt_paths=_PLAN_OWNERS,
)
def check_external_plan_state_mutation(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for t in targets:
                if isinstance(t, ast.Attribute) and t.attr in _PLAN_STATE_ATTRS:
                    yield ctx.finding(
                        "PLN502", node,
                        f"assignment to `{t.attr}` outside the engine — "
                        "plan state is owned by pipeline.py/plan.py; use "
                        "engine.infer()/plan_stats() instead",
                    )
        elif isinstance(node, ast.Delete):
            for t in node.targets:
                base = t.value if isinstance(t, ast.Subscript) else t
                if isinstance(base, ast.Attribute) and base.attr in _PLAN_STATE_ATTRS:
                    yield ctx.finding(
                        "PLN502", node,
                        f"del on `{base.attr}` outside the engine — plan "
                        "eviction/invalidation is the engine's job",
                    )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr in _PLAN_STATE_ATTRS
        ):
            yield ctx.finding(
                "PLN502", node,
                f"`{node.func.value.attr}.{node.func.attr}(...)` outside "
                "the engine mutates the plan cache behind the LRU/stats "
                "bookkeeping",
            )


@rule(
    id="PLN503",
    family="plan",
    severity=Severity.ERROR,
    summary="instance-level forward shadowing outside the plan tracer",
    invariant=(
        "plan._trace_leaves instruments leaves by installing an instance "
        "`forward` (shadowing the class method) and refuses to touch "
        "modules that already carry one; any other code installing "
        "instance forwards silently opts those modules out of plan "
        "compilation and risks leaking the shadow past its scope."
    ),
    exempt_paths=("repro/core/plan.py",),  # the tracer itself
)
def check_instance_forward_shadowing(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Assign):
            continue
        for t in node.targets:
            shadowed = (
                isinstance(t, ast.Attribute) and t.attr == "forward"
            ) or (
                isinstance(t, ast.Subscript)
                and isinstance(t.value, ast.Attribute)
                and t.value.attr == "__dict__"
                and isinstance(t.slice, ast.Constant)
                and t.slice.value == "forward"
            )
            if shadowed:
                yield ctx.finding(
                    "PLN503", node,
                    "installing an instance-level `forward` — only the "
                    "plan tracer may shadow module forwards (and it "
                    "restores them); shadowed modules are skipped by "
                    "plan compilation",
                )


__all__ = [
    "check_adhoc_column_cache",
    "check_external_plan_state_mutation",
    "check_instance_forward_shadowing",
]
