"""Numeric-safety rules (``NUM``).

Invariants: reductions and percentiles raise (or return NaN) on empty
arrays — and sensitivity masks, threshold searches and metric summaries
routinely slice arrays down to *possibly nothing* (``err[sens]`` when no
output is sensitive, a reservoir before the first observation).  Every
such call needs an emptiness guard, and mask-feeding ratio comparisons
need ``np.errstate`` so a 0/0 NaN cannot silently become ``False``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.astutil import (
    call_name,
    enclosing_function,
    has_emptiness_guard,
    under_errstate,
)
from repro.checks.engine import FileContext
from repro.checks.findings import Finding, Severity
from repro.checks.registry import rule

_PERCENTILE_CALLS = frozenset({
    "np.percentile", "numpy.percentile", "np.quantile", "numpy.quantile",
    "np.nanpercentile", "numpy.nanpercentile",
})

#: Reductions that raise or return NaN on an empty operand.
_EMPTY_HOSTILE_REDUCTIONS = frozenset({"mean", "max", "min", "std", "ptp"})


@rule(
    id="NUM401",
    family="numeric",
    severity=Severity.WARNING,
    summary="percentile/reduction on a possibly-empty array without a guard",
    invariant=(
        "Masked selections (err[sens]) and calibration pools can be "
        "empty; np.percentile raises and mean()/max() warn-and-NaN on "
        "empty input — guard with .size/.any()/len() first (see "
        "repro.obs.hist for the reference edge-case contract)."
    ),
)
def check_unguarded_reduction(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        flagged: str | None = None
        name = call_name(node)
        if name in _PERCENTILE_CALLS:
            flagged = f"{name}(...)"
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _EMPTY_HOSTILE_REDUCTIONS
            and isinstance(node.func.value, ast.Subscript)
        ):
            flagged = f"<masked-selection>.{node.func.attr}()"
        if flagged is None:
            continue
        func = enclosing_function(node, ctx.parents)
        if has_emptiness_guard(func, node, ctx.parents):
            continue
        yield ctx.finding(
            "NUM401", node,
            f"{flagged} on a possibly-empty array without an emptiness "
            "guard — check .size / .any() / len() first",
        )


def _is_size_like(node: ast.AST) -> bool:
    """Denominators that are plausibly zero: ``x.sum()``, ``x.size``,
    ``len(x)``, ``x.total``, ``np.count_nonzero(x)``."""
    if isinstance(node, ast.Attribute) and node.attr in ("size", "total"):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name == "len" or (name or "").endswith("count_nonzero"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr == "sum":
            return True
    return False


@rule(
    id="NUM402",
    family="numeric",
    severity=Severity.WARNING,
    summary="division by a count/sum/len that can be zero, without a guard",
    invariant=(
        "Ratios over masked counts (sensitive fraction, bucket shares, "
        "busy fractions) divide by quantities that are zero on empty "
        "batches; guard the denominator or wrap in max(x, eps)."
    ),
)
def check_unguarded_division(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div)):
            continue
        if not _is_size_like(node.right):
            continue
        func = enclosing_function(node, ctx.parents)
        if has_emptiness_guard(func, node, ctx.parents):
            continue
        if under_errstate(node, ctx.parents):
            continue
        yield ctx.finding(
            "NUM402", node,
            "division by a count/sum that can be zero — guard the "
            "denominator (.size/.any()/len() check, ternary, or max())",
        )


@rule(
    id="NUM403",
    family="numeric",
    severity=Severity.WARNING,
    summary="mask built by comparing a division result without np.errstate",
    invariant=(
        "`a / b > t` feeds NaN into the mask when b has zeros (0/0), and "
        "NaN comparisons are silently False — wrap the ratio in "
        "`with np.errstate(divide=..., invalid=...)` and handle the NaNs, "
        "or guard the denominator."
    ),
)
def check_ratio_compare_without_errstate(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        sides = [node.left, *node.comparators]
        if not any(
            isinstance(s, ast.BinOp) and isinstance(s.op, ast.Div) for s in sides
        ):
            continue
        if under_errstate(node, ctx.parents):
            continue
        func = enclosing_function(node, ctx.parents)
        if has_emptiness_guard(func, node, ctx.parents):
            continue
        yield ctx.finding(
            "NUM403", node,
            "comparison on a division result without np.errstate — a 0/0 "
            "NaN compares False and silently drops mask entries",
        )


__all__ = [
    "check_unguarded_reduction",
    "check_unguarded_division",
    "check_ratio_compare_without_errstate",
]
