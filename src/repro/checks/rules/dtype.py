"""dtype-exactness rules (``DTY``).

Invariant (``src/repro/core/odq.py`` / ``colcache.py``): bit-plane GEMM
operands carry *exact* integers in float64, and every partial product
stays far below 2**53, so the float64 GEMM is exact regardless of
summation order.  That exactness floor is **verified in exactly one
place** — :mod:`repro.core.gemm` — which is why every GEMM must route
through :func:`repro.core.gemm.pgemm` and why nothing may silently
narrow a quantized array's dtype.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.astutil import call_name, terminal_name
from repro.checks.engine import FileContext
from repro.checks.findings import Finding, Severity
from repro.checks.registry import rule

#: Call targets that are a GEMM in disguise.
_GEMM_CALLS = frozenset({"np.matmul", "numpy.matmul", "np.dot", "numpy.dot"})

#: dtype spellings narrower than the float64/int64 exactness contract.
_NARROW_DTYPES = frozenset({
    "float32", "float16", "int32", "int16", "int8",
    "uint8", "uint16", "uint32",
})

#: Identifier prefixes that mark quantized / bit-plane arrays by the
#: project naming convention (colcache.py, odq.py, bitsplit.py).
_BITPLANE_PREFIXES = (
    "q_high", "q_low", "qw", "cols_high", "cols_low", "cols_full",
    "wmat", "hh", "acc2d", "plane",
)


def _is_bitplane_name(node: ast.AST) -> bool:
    name = terminal_name(node)
    return name is not None and name.startswith(_BITPLANE_PREFIXES)


def _narrow_dtype_arg(arg: ast.AST) -> str | None:
    """The narrow dtype named by an ``astype`` argument, if any."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value if arg.value in _NARROW_DTYPES else None
    name = terminal_name(arg)
    return name if name in _NARROW_DTYPES else None


@rule(
    id="DTY101",
    family="dtype",
    severity=Severity.ERROR,
    summary="GEMM call site not routed through repro.core.gemm.pgemm",
    invariant=(
        "repro.core.gemm is the only module whose per-block exactness "
        "floor is empirically verified against the BLAS; a raw `a @ b` "
        "or np.matmul elsewhere bypasses that verification (and the "
        "pool, and the gemm.pool spans)."
    ),
    exempt_paths=("repro/core/gemm.py",),
)
def check_unrouted_gemm(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            yield ctx.finding(
                "DTY101", node,
                "matrix multiply via `@` — route through "
                "repro.core.gemm.pgemm (lazy-import it to avoid the "
                "repro.nn<->repro.core cycle)",
            )
        elif isinstance(node, ast.Call) and call_name(node) in _GEMM_CALLS:
            yield ctx.finding(
                "DTY101", node,
                f"`{call_name(node)}` call site — route through "
                "repro.core.gemm.pgemm so the verified exactness floor "
                "and the pool apply",
            )


@rule(
    id="DTY102",
    family="dtype",
    severity=Severity.ERROR,
    summary="astype down-cast below the float64/int64 exactness contract",
    invariant=(
        "Quantized integer paths accumulate in float64/int64; casting to "
        "float32/int32 or below silently loses the >2**24 / >2**31 "
        "headroom the bit-exactness proofs rely on."
    ),
)
def check_astype_downcast(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and node.args
        ):
            continue
        narrow = _narrow_dtype_arg(node.args[0])
        if narrow is not None:
            yield ctx.finding(
                "DTY102", node,
                f"astype({narrow}) narrows below the float64/int64 "
                "contract — keep the wide dtype or justify with a noqa",
            )


@rule(
    id="DTY103",
    family="dtype",
    severity=Severity.ERROR,
    summary="non-integral float arithmetic on a bit-plane array",
    invariant=(
        "Bit-plane arrays (q_high/cols_low/wmat_*/hh*) hold exact "
        "integers in float64; multiplying or offsetting them by a "
        "non-integral float constant destroys exactness before the GEMM."
    ),
)
def check_bitplane_float_arith(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.BinOp):
            continue
        if not isinstance(node.op, (ast.Mult, ast.Add, ast.Sub, ast.Div)):
            continue
        for side, other in ((node.left, node.right), (node.right, node.left)):
            if not _is_bitplane_name(side):
                continue
            if isinstance(node.op, ast.Div):
                yield ctx.finding(
                    "DTY103", node,
                    f"division on bit-plane array "
                    f"`{terminal_name(side)}` leaves the exact-integer "
                    "domain — dequantize via an explicit scale instead",
                )
                break
            if (
                isinstance(other, ast.Constant)
                and isinstance(other.value, float)
                and not float(other.value).is_integer()
            ):
                yield ctx.finding(
                    "DTY103", node,
                    f"float constant {other.value!r} combined with "
                    f"bit-plane array `{terminal_name(side)}` — exact "
                    "integer contract broken (use integral shifts/scales)",
                )
                break


__all__ = [
    "check_unrouted_gemm",
    "check_astype_downcast",
    "check_bitplane_float_arith",
]
