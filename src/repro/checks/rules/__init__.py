"""Rule modules — importing this package registers every rule.

Four domain families, one id range each:

* ``DTY1xx`` — dtype-exactness (:mod:`repro.checks.rules.dtype`)
* ``THR2xx`` — thread-safety (:mod:`repro.checks.rules.threadsafety`)
* ``OBS3xx`` — obs-discipline (:mod:`repro.checks.rules.obs`)
* ``NUM4xx`` — numeric-safety (:mod:`repro.checks.rules.numeric`)
* ``PLN5xx`` — plan/cache discipline (:mod:`repro.checks.rules.plan`)

The whole-program (deep) successors — ``THR210``/``THR211`` lockset and
deadlock analyses, the ``DTY110`` dtype-flow lattice — register their
metadata in :mod:`repro.checks.rules.deep`; their logic runs from
:mod:`repro.checks.analysis` under ``repro check --deep``.

Plus the engine-level meta rule ``SUP001`` (suppression without a
justification), which lives in :mod:`repro.checks.engine` because it is
emitted during comment parsing, before any rule runs.
"""

from repro.checks.rules import deep, dtype, numeric, obs, plan, threadsafety

__all__ = ["dtype", "threadsafety", "obs", "numeric", "plan", "deep"]
