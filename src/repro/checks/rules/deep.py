"""Whole-program (deep) rule registrations: THR210, THR211, DTY110.

These rules need a project-wide view — a symbol table, a call graph,
interprocedural locksets, a dtype-flow lattice — so their logic lives in
:mod:`repro.checks.analysis` and runs under ``repro check --deep``.  The
registrations here are metadata only (severity, invariant text,
``--list-rules`` entries); the per-file ``check`` stubs yield nothing so
a shallow scan is unaffected.

``DTY110`` supersedes the name-heuristic ``DTY103``: when ``--deep`` is
active the engine drops DTY103 from the shallow rule set and relies on
taint provenance instead of identifier conventions.
"""

from __future__ import annotations

from typing import Iterator

from repro.checks.engine import FileContext
from repro.checks.findings import Finding, Severity
from repro.checks.registry import rule

#: Shallow rules a deep run replaces with their whole-program successor.
SUPERSEDED_BY_DEEP: dict[str, str] = {"DTY103": "DTY110"}


@rule(
    id="THR210",
    family="threads",
    severity=Severity.ERROR,
    summary="shared state written from >=2 thread roots with no common lock",
    invariant=(
        "Every module-level mutable reachable from two thread roots (or a "
        "thread root plus main) must have one lock that every write path "
        "holds — locks acquired in callers count (Eraser-style lockset "
        "intersection over the call graph)."
    ),
    deep=True,
)
def check_inconsistent_lockset(ctx: FileContext) -> Iterator[Finding]:
    """Stub — implemented in repro.checks.analysis.lockset."""
    return iter(())


@rule(
    id="THR211",
    family="threads",
    severity=Severity.ERROR,
    summary="lock-order inversion (ABBA cycle in the acquired-before graph)",
    invariant=(
        "If thread 1 takes A then B (possibly through a call chain) and "
        "thread 2 takes B then A, both can block forever; the "
        "acquired-before graph over canonical locks must stay acyclic."
    ),
    deep=True,
)
def check_lock_order_inversion(ctx: FileContext) -> Iterator[Finding]:
    """Stub — implemented in repro.checks.analysis.lockset."""
    return iter(())


@rule(
    id="DTY110",
    family="dtype",
    severity=Severity.ERROR,
    summary="tainted value reaches a GEMM operand across function boundaries",
    invariant=(
        "A value minted exact (quantize/bit-split/rint/astype(int64)) "
        "that is narrowed, divided, or combined with a non-integral float "
        "anywhere along its flow must never reach pgemm/plan_gemm — the "
        "verified exactness floor only holds for exact-integer operands.  "
        "Supersedes the DTY103 name heuristic under --deep."
    ),
    deep=True,
)
def check_dtype_flow(ctx: FileContext) -> Iterator[Finding]:
    """Stub — implemented in repro.checks.analysis.dtypeflow."""
    return iter(())


__all__ = [
    "SUPERSEDED_BY_DEEP",
    "check_inconsistent_lockset",
    "check_lock_order_inversion",
    "check_dtype_flow",
]
