"""Thread-safety rules (``THR``).

Invariants (``src/repro/core/gemm.py``, ``repro/obs/log.py``,
``repro/serve/``, ``repro/cluster/``): process-wide singletons — the
GEMM pool, the logging config, metric registries, session caches — are
shared across serving worker threads.  Every mutation of module-level
mutable state must happen under its owning lock, every manual
``acquire`` must have a guaranteed ``release``, any module-level thread
pool must rebuild itself after ``fork`` (the PID-keyed pattern the gemm
pool uses), and every ``multiprocessing.shared_memory`` segment must
have a guaranteed ``close()``/``unlink()`` path (the
``repro.cluster.shm`` ownership discipline) — leaked segments survive
the process in ``/dev/shm``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.astutil import enclosing_function, in_with_lock, is_lockish, terminal_name
from repro.checks.engine import FileContext
from repro.checks.findings import Finding, Severity
from repro.checks.registry import rule

#: Factory callees whose results are immutable (or self-synchronized) —
#: module-level bindings of these are not "mutable state".
_IMMUTABLE_FACTORIES = frozenset({
    "frozenset", "tuple", "int", "float", "str", "bool", "bytes",
    "compile",            # re.compile
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Event", "local",     # threading.* primitives / thread-local
    "get_logger",         # repro.obs.log loggers are immutable
    "namedtuple", "TypeVar", "getenv", "get", "Path", "getLogger",
})

#: Methods that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "extend", "add", "update", "clear", "pop", "popitem",
    "popleft", "appendleft", "remove", "discard", "insert", "setdefault",
    "move_to_end", "sort", "reverse",
})

_POOL_FACTORIES = ("ThreadPoolExecutor", "ProcessPoolExecutor", "ThreadPool",
                   "Pool")


def _module_mutable_names(tree: ast.Module) -> dict[str, int]:
    """Module-level names bound to mutable initializers -> def line."""
    tracked: dict[str, int] = {}
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        mutable = False
        if isinstance(value, (ast.Dict, ast.List, ast.Set,
                              ast.ListComp, ast.DictComp, ast.SetComp)):
            mutable = True
        elif isinstance(value, ast.Call):
            callee = terminal_name(value.func)
            mutable = callee is not None and callee not in _IMMUTABLE_FACTORIES
        if not mutable:
            continue
        for t in targets:
            if (
                isinstance(t, ast.Name)
                and not t.id.startswith("__")
                and "lock" not in t.id.lower()
            ):
                tracked[t.id] = stmt.lineno
    return tracked


def _mutated_name(node: ast.AST, tracked: dict[str, int]) -> str | None:
    """The tracked module-level name this node mutates, if any."""
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for t in targets:
            if isinstance(t, (ast.Attribute, ast.Subscript)):
                base = t.value
                if isinstance(base, ast.Name) and base.id in tracked:
                    return base.id
            elif (
                isinstance(node, ast.AugAssign)
                and isinstance(t, ast.Name)
                and t.id in tracked
            ):
                return t.id
    elif isinstance(node, ast.Call):
        f = node.func
        if (
            isinstance(f, ast.Attribute)
            and f.attr in _MUTATORS
            and isinstance(f.value, ast.Name)
            and f.value.id in tracked
        ):
            return f.value.id
    elif isinstance(node, ast.Delete):
        for t in node.targets:
            if isinstance(t, (ast.Attribute, ast.Subscript)):
                base = t.value
                if isinstance(base, ast.Name) and base.id in tracked:
                    return base.id
    return None


def _global_rebind(node: ast.AST, tracked: dict[str, int],
                   func: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    """A ``global``-declared rebind of a tracked name inside ``func``."""
    if not isinstance(node, ast.Assign):
        return None
    declared: set[str] = set()
    for sub in ast.walk(func):
        if isinstance(sub, ast.Global):
            declared.update(sub.names)
    for t in node.targets:
        if isinstance(t, ast.Name) and t.id in tracked and t.id in declared:
            return t.id
    # Tuple-unpack rebinds (``a, _x, _y = ..., None, None``).
    for t in node.targets:
        if isinstance(t, ast.Tuple):
            for el in t.elts:
                if isinstance(el, ast.Name) and el.id in tracked and el.id in declared:
                    return el.id
    return None


@rule(
    id="THR201",
    family="threads",
    severity=Severity.ERROR,
    summary="module-level mutable state mutated outside a `with <lock>:` block",
    invariant=(
        "Process-wide singletons (gemm pool stats, logger registry, "
        "logging config) are shared by serving worker threads; every "
        "mutation must hold the owning lock, as repro.core.gemm and "
        "repro.obs.log do."
    ),
)
def check_unlocked_module_state(ctx: FileContext) -> Iterator[Finding]:
    tracked = _module_mutable_names(ctx.tree)
    if not tracked:
        return
    for node in ast.walk(ctx.tree):
        func = enclosing_function(node, ctx.parents)
        if func is None:
            continue  # import-time initialization is single-threaded
        name = _mutated_name(node, tracked)
        if name is None:
            name = _global_rebind(node, tracked, func)
        if name is None:
            continue
        if in_with_lock(node, ctx.parents):
            continue
        yield ctx.finding(
            "THR201", node,
            f"module-level mutable `{name}` (defined at line "
            f"{tracked[name]}) mutated outside a `with <lock>:` block — "
            "guard with the owning lock or make it thread-local",
        )


def _try_releases(try_node: ast.Try) -> bool:
    for stmt in try_node.finalbody:
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "release"
            ):
                return True
    return False


def _followed_by_releasing_try(call: ast.Call, ctx: FileContext) -> bool:
    """``lock.acquire()`` immediately followed by ``try/.../finally: release``."""
    stmt = ctx.parents.get(call)
    if not isinstance(stmt, ast.Expr):
        return False
    owner = ctx.parents.get(stmt)
    for body in ("body", "orelse", "finalbody"):
        stmts = getattr(owner, body, None)
        if isinstance(stmts, list) and stmt in stmts:
            idx = stmts.index(stmt)
            if idx + 1 < len(stmts) and isinstance(stmts[idx + 1], ast.Try):
                return _try_releases(stmts[idx + 1])
    return False


@rule(
    id="THR202",
    family="threads",
    severity=Severity.ERROR,
    summary="lock.acquire() without context manager or try/finally release",
    invariant=(
        "An exception between acquire() and release() deadlocks every "
        "other serving thread; locks are taken with `with lock:` or an "
        "immediately-following try/finally."
    ),
)
def check_bare_acquire(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
            and is_lockish(node.func.value)
        ):
            continue
        # acquire() inside a try whose finally releases is also fine.
        protected = False
        cur = ctx.parents.get(node)
        while cur is not None and not isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
        ):
            if isinstance(cur, ast.Try) and _try_releases(cur):
                protected = True
                break
            cur = ctx.parents.get(cur)
        if protected or _followed_by_releasing_try(node, ctx):
            continue
        yield ctx.finding(
            "THR202", node,
            "lock.acquire() without `with lock:` or a try/finally "
            "release — an exception here deadlocks the other threads",
        )


@rule(
    id="THR203",
    family="threads",
    severity=Severity.ERROR,
    summary="module-level thread pool without the PID-keyed fork-rebuild pattern",
    invariant=(
        "Worker threads do not survive fork(); a module-global pool must "
        "detect the PID change and rebuild (see repro.core.gemm._get_pool), "
        "or forked servers hang on a dead pool."
    ),
)
def check_pool_fork_safety(ctx: FileContext) -> Iterator[Finding]:
    has_getpid = any(
        (isinstance(n, ast.Attribute) and n.attr == "getpid")
        or (isinstance(n, ast.Name) and n.id == "getpid")
        for n in ast.walk(ctx.tree)
    )
    if has_getpid:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Assign):
            continue
        if not (
            isinstance(node.value, ast.Call)
            and (terminal_name(node.value.func) or "") in _POOL_FACTORIES
        ):
            continue
        func = enclosing_function(node, ctx.parents)
        module_global = func is None
        if func is not None:
            declared: set[str] = set()
            for sub in ast.walk(func):
                if isinstance(sub, ast.Global):
                    declared.update(sub.names)
            module_global = any(
                isinstance(t, ast.Name) and t.id in declared
                for t in node.targets
            )
        if module_global:
            yield ctx.finding(
                "THR203", node,
                "module-global thread pool built without a PID-keyed "
                "fork-rebuild guard — compare os.getpid() against the "
                "pid recorded at construction (see repro.core.gemm)",
            )


def _try_closes(try_node: ast.Try) -> bool:
    """finally block calls ``.close()`` or ``.unlink()`` on something."""
    for stmt in try_node.finalbody:
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ("close", "unlink")
            ):
                return True
    return False


def _in_with_statement(node: ast.AST, ctx: FileContext) -> bool:
    """The call is a ``with`` item's context expression (possibly nested)."""
    cur = node
    parent = ctx.parents.get(cur)
    while parent is not None and not isinstance(
        parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
    ):
        if isinstance(parent, (ast.With, ast.AsyncWith)):
            for item in parent.items:
                for sub in ast.walk(item.context_expr):
                    if sub is node:
                        return True
        cur, parent = parent, ctx.parents.get(parent)
    return False


def _under_closing_try(node: ast.AST, ctx: FileContext) -> bool:
    cur = ctx.parents.get(node)
    while cur is not None and not isinstance(
        cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
    ):
        if isinstance(cur, ast.Try) and _try_closes(cur):
            return True
        cur = ctx.parents.get(cur)
    return False


def _followed_by_closing_try(call: ast.Call, ctx: FileContext) -> bool:
    """``seg = SharedMemory(...)`` immediately followed by
    ``try/.../finally: seg.close()``."""
    stmt = ctx.parents.get(call)
    if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.Expr)):
        return False
    owner = ctx.parents.get(stmt)
    for body in ("body", "orelse", "finalbody"):
        stmts = getattr(owner, body, None)
        if isinstance(stmts, list) and stmt in stmts:
            idx = stmts.index(stmt)
            if idx + 1 < len(stmts) and isinstance(stmts[idx + 1], ast.Try):
                return _try_closes(stmts[idx + 1])
    return False


def _owned_by_closing_class(call: ast.Call, ctx: FileContext) -> bool:
    """``self.<attr> = SharedMemory(...)`` inside a class defining close().

    The resource-owner pattern (``repro.cluster.shm.ShmSegment``): the
    class takes custody of the segment and its ``close()`` is the single
    cleanup point callers pair with try/finally or ``with``.
    """
    stmt = ctx.parents.get(call)
    if not isinstance(stmt, ast.Assign):
        return False
    assigns_self_attr = any(
        isinstance(t, ast.Attribute)
        and isinstance(t.value, ast.Name)
        and t.value.id == "self"
        for t in stmt.targets
    )
    if not assigns_self_attr:
        return False
    cur = ctx.parents.get(stmt)
    while cur is not None:
        if isinstance(cur, ast.ClassDef):
            return any(
                isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
                and s.name == "close"
                for s in cur.body
            )
        cur = ctx.parents.get(cur)
    return False


@rule(
    id="THR204",
    family="threads",
    severity=Severity.ERROR,
    summary="SharedMemory acquired without paired close()/unlink() cleanup",
    invariant=(
        "POSIX shared memory outlives the process: a segment that is not "
        "close()d and (by its creator) unlink()ed leaks /dev/shm until "
        "reboot.  Every SharedMemory must be wrapped in a with block, a "
        "try/finally that closes it, or owned by a class whose close() "
        "is the cleanup point (repro.cluster.shm.ShmSegment)."
    ),
)
def check_shared_memory_lifecycle(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and terminal_name(node.func) == "SharedMemory"
        ):
            continue
        if (
            _in_with_statement(node, ctx)
            or _under_closing_try(node, ctx)
            or _followed_by_closing_try(node, ctx)
            or _owned_by_closing_class(node, ctx)
        ):
            continue
        yield ctx.finding(
            "THR204", node,
            "SharedMemory segment acquired without paired cleanup — use "
            "`with`, a try/finally calling close() (creator also "
            "unlink()), or hand it to a close()-owning wrapper class "
            "like repro.cluster.shm.ShmSegment",
        )


__all__ = [
    "check_unlocked_module_state",
    "check_bare_acquire",
    "check_pool_fork_safety",
    "check_shared_memory_lifecycle",
]
