"""repro.checks — project-invariant static analysis.

The codebase's correctness rests on invariants that used to live only in
comments: bit-plane GEMMs carry exact integers in float64 and every GEMM
routes through the one module that *verifies* that exactness
(:mod:`repro.core.gemm`); process-wide singletons are lock-guarded and
fork-safe; all output flows through :mod:`repro.obs`; reductions over
masked selections guard against emptiness.  This package turns those
prose invariants into machine-checked rules.

Usage::

    from repro import checks

    findings = checks.run(["src/repro"])           # all rules
    findings = checks.run("src", rules=["DTY101"])  # one rule

or from the CLI: ``repro check [paths] [--rules ...] [--format json]``.

Suppression: ``# repro: noqa[RULE] — <justification>`` on the flagged
line.  The justification is mandatory (enforced by the ``SUP001`` meta
rule) so every suppression documents why the invariant still holds.

The analyzer is purely syntactic (stdlib ``ast`` + ``tokenize``), adds
zero runtime cost to inference/serving paths, and is wired into CI as
the ``lint`` job next to ruff and mypy.
"""

from repro.checks.engine import run, run_source
from repro.checks.findings import Finding, Severity
from repro.checks.registry import RULES, Rule, families, iter_rules
from repro.checks.report import render_json, render_text

__all__ = [
    "run",
    "run_source",
    "Finding",
    "Severity",
    "Rule",
    "RULES",
    "iter_rules",
    "families",
    "render_text",
    "render_json",
]
