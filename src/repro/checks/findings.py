"""Finding and severity types for the :mod:`repro.checks` analyzer."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How seriously a finding should be taken.

    ``ERROR`` findings break a machine-checked invariant (bit-exactness,
    locking discipline); ``WARNING`` findings are strong heuristics that
    occasionally need a justified ``# repro: noqa[...]``.  The CLI exit
    code does not distinguish: *any* unsuppressed finding fails the run,
    matching the CI gate ("fails on any new finding").
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str              #: rule id, e.g. ``DTY101``
    severity: Severity
    path: str              #: file path as given to the engine
    line: int              #: 1-based line number
    col: int               #: 0-based column offset
    message: str           #: human-readable description
    snippet: str = ""      #: the offending source line, stripped
    extra: dict = field(default_factory=dict, compare=False)

    def as_dict(self) -> dict:
        """JSON-safe representation (one row of ``--format json``)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        """``path:line:col: RULE severity message`` (one text-report row)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )


__all__ = ["Severity", "Finding"]
