"""Rule registry for :mod:`repro.checks`.

A rule is a plain callable ``check(ctx) -> Iterable[Finding]`` wrapped in
:class:`Rule` metadata (id, family, severity, what invariant it guards,
and which paths are exempt).  Rules self-register at import time via the
:func:`rule` decorator; :data:`RULES` is the id-ordered registry the
engine and the CLI ``--list-rules`` output read.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.checks.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.checks.engine import FileContext

CheckFn = Callable[["FileContext"], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered static-analysis rule."""

    id: str                      #: e.g. ``DTY101``
    family: str                  #: ``dtype`` | ``threads`` | ``obs`` | ``numeric`` | ``meta``
    severity: Severity
    summary: str                 #: one-line description for ``--list-rules``
    invariant: str               #: the project invariant the rule protects
    check: CheckFn
    #: Path suffixes (``/``-separated, POSIX style) where the rule does
    #: not apply — e.g. the module that *implements* the guarded API.
    exempt_paths: tuple = field(default=())
    #: Deep rules run in the whole-program analysis pass
    #: (:mod:`repro.checks.analysis`), not the per-file scan; their
    #: ``check`` is a stub and the engine skips them outside ``--deep``.
    deep: bool = False

    def applies_to(self, posix_path: str) -> bool:
        return not any(posix_path.endswith(sfx) for sfx in self.exempt_paths)


#: id -> Rule, populated by the :func:`rule` decorator at import time.
RULES: dict[str, Rule] = {}

#: Guards :data:`RULES`.  Registration normally happens under the import
#: lock, but re-imports from worker threads (e.g. a serving process that
#: lazily pulls in ``repro.checks``) must not interleave writes.
_REGISTRY_LOCK = threading.Lock()


def rule(
    id: str,
    family: str,
    severity: Severity,
    summary: str,
    invariant: str,
    exempt_paths: tuple = (),
    deep: bool = False,
) -> Callable[[CheckFn], CheckFn]:
    """Register ``check`` under ``id``; returns the callable unchanged."""

    def decorate(check: CheckFn) -> CheckFn:
        with _REGISTRY_LOCK:
            if id in RULES:
                raise ValueError(f"duplicate rule id {id!r}")
            RULES[id] = Rule(
                id=id,
                family=family,
                severity=severity,
                summary=summary,
                invariant=invariant,
                check=check,
                exempt_paths=tuple(exempt_paths),
                deep=deep,
            )
        return check

    return decorate


def iter_rules(ids: Iterable[str] | None = None) -> Iterator[Rule]:
    """Registered rules in id order; ``ids`` filters (unknown id raises)."""
    _ensure_loaded()
    if ids is None:
        for rid in sorted(RULES):
            yield RULES[rid]
        return
    wanted = list(ids)
    unknown = [rid for rid in wanted if rid not in RULES]
    if unknown:
        raise KeyError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(RULES))}"
        )
    for rid in sorted(set(wanted)):
        yield RULES[rid]


def families() -> dict[str, list[str]]:
    """family -> sorted rule ids (for docs and ``--list-rules``)."""
    _ensure_loaded()
    out: dict[str, list[str]] = {}
    for r in iter_rules():
        out.setdefault(r.family, []).append(r.id)
    return out


def _ensure_loaded() -> None:
    """Import the rule modules exactly once (registration side effect)."""
    import repro.checks.rules  # noqa: F401 — imported for registration side effect


__all__ = ["Rule", "RULES", "rule", "iter_rules", "families"]
