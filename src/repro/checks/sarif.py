"""SARIF 2.1.0 emission for ``repro check --format sarif``.

Targets the subset GitHub code scanning consumes: one run, one tool
driver carrying the full rule registry (so every rule — deep or shallow
— shows up in the code-scanning rule list even before it first fires),
and one ``result`` per finding with a ``physicalLocation`` anchored at
the finding's line/column.

Paths are emitted repo-relative POSIX with ``uriBaseId: %SRCROOT%`` so
the upload action can map them onto the checkout regardless of where the
scan ran.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.checks.findings import Finding, Severity
from repro.checks.registry import iter_rules

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"
TOOL_NAME = "repro-check"

_LEVEL = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_descriptor(rule) -> dict:
    summary = rule.summary
    if rule.deep:
        summary = f"{summary} [whole-program]"
    return {
        "id": rule.id,
        "name": rule.id,
        "shortDescription": {"text": summary},
        "fullDescription": {"text": rule.invariant},
        "defaultConfiguration": {
            "level": _LEVEL.get(rule.severity, "note"),
        },
        "properties": {
            "family": rule.family,
            "deep": rule.deep,
        },
    }


def _uri(path: str) -> str:
    """Repo-relative POSIX path for the artifact location."""
    p = Path(path)
    try:
        p = p.resolve().relative_to(Path.cwd())
    except ValueError:
        pass
    return p.as_posix()


def _result(f: Finding, rule_index: dict[str, int]) -> dict:
    region: dict = {"startLine": max(f.line, 1)}
    if f.col:
        region["startColumn"] = f.col + 1  # SARIF columns are 1-based
    out: dict = {
        "ruleId": f.rule,
        "level": _LEVEL.get(f.severity, "note"),
        "message": {"text": f.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _uri(f.path),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": region,
                }
            }
        ],
    }
    if f.rule in rule_index:
        out["ruleIndex"] = rule_index[f.rule]
    return out


def render_sarif(findings: Sequence[Finding], scanned: int) -> str:
    """Serialize ``findings`` as a SARIF 2.1.0 log (one run)."""
    rules = list(iter_rules())
    rule_index = {r.id: i for i, r in enumerate(rules)}
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "rules": [_rule_descriptor(r) for r in rules],
                    }
                },
                "properties": {"scannedFiles": scanned},
                "results": [_result(f, rule_index) for f in findings],
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=False)


__all__ = ["render_sarif", "SARIF_VERSION", "TOOL_NAME"]
