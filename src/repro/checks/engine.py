"""The :mod:`repro.checks` analysis engine.

Drives the registered rules over a set of Python files: parse once per
file into a :class:`FileContext` (AST + parent links + suppression
table), run every selected rule, filter suppressed findings, and emit
meta-findings for malformed suppressions.

Suppression syntax
------------------
A finding is suppressed by a same-line comment::

    risky_thing()  # repro: noqa[DTY101] — exact: operands are bool masks

* The rule id in brackets is mandatory — there is no blanket ``noqa``.
* Multiple ids: ``# repro: noqa[DTY101,THR201] — <why>``.
* The justification text after ``—`` (or ``--`` / ``:``) is **required**;
  a bare ``# repro: noqa[X]`` raises :data:`SUP001`, which cannot itself
  be suppressed.  The policy is deliberate: every suppression documents
  *why* the invariant holds anyway, so reviewers can audit them.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.checks.findings import Finding, Severity
from repro.checks.registry import Rule, iter_rules
from repro.checks import astutil

#: Meta-rule id for a suppression comment without a justification.
SUP001 = "SUP001"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<ids>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)\]"
    r"\s*(?:(?:—|--|:)\s*(?P<why>\S.*))?"
)


@dataclass
class Suppression:
    """One parsed ``# repro: noqa[...]`` comment."""

    line: int
    rule_ids: tuple
    justification: str


@dataclass
class FileContext:
    """Everything a rule needs to scan one file."""

    path: str                    #: path as reported in findings
    source: str
    tree: ast.Module
    lines: list = field(default_factory=list)
    parents: dict = field(default_factory=dict)
    suppressions: dict = field(default_factory=dict)  #: line -> Suppression
    bad_suppressions: list = field(default_factory=list)

    @property
    def posix_path(self) -> str:
        return Path(self.path).as_posix()

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, rule_id: str, node: ast.AST, message: str, **extra: object
    ) -> Finding:
        """Build a Finding at ``node``'s location for rule ``rule_id``."""
        from repro.checks.registry import RULES

        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule_id,
            severity=RULES[rule_id].severity,
            path=self.path,
            line=line,
            col=col,
            message=message,
            snippet=self.line_text(line),
            extra=dict(extra),
        )

    def is_suppressed(self, finding: Finding) -> bool:
        return suppression_covers(self.suppressions, finding)


def suppression_covers(
    suppressions: dict[int, "Suppression"], finding: Finding
) -> bool:
    """Does a parsed noqa table suppress ``finding``?

    Scope is the **physical line only**: a ``# repro: noqa[RULE]`` on a
    decorator line covers just that line, never the decorated function's
    ``def`` line or body (pinned by the decorator regression fixtures in
    ``tests/checks/test_engine.py``).  Deep (whole-program) findings go
    through this same helper, so an interprocedural THR210/DTY110 report
    is silenced only by a noqa on the exact anchored line.
    """
    sup = suppressions.get(finding.line)
    return sup is not None and finding.rule in sup.rule_ids


def _parse_suppressions(
    source: str,
) -> tuple[dict[int, Suppression], list[Suppression]]:
    """Extract ``# repro: noqa[...]`` comments via the tokenizer.

    Tokenizing (rather than regexing raw lines) keeps ``#`` characters
    inside string literals from being misread as comments.
    """
    table: dict[int, Suppression] = {}
    malformed: list[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _NOQA_RE.search(tok.string)
            if not m:
                continue
            ids = tuple(s.strip() for s in m.group("ids").split(","))
            why = (m.group("why") or "").strip()
            sup = Suppression(line=tok.start[0], rule_ids=ids, justification=why)
            if why:
                table[sup.line] = sup
            else:
                malformed.append(sup)
    except tokenize.TokenError:  # pragma: no cover - unterminated source
        pass
    return table, malformed


def make_context(source: str, path: str = "<string>") -> FileContext:
    """Parse ``source`` into a :class:`FileContext` (raises SyntaxError)."""
    tree = ast.parse(source, filename=path)
    suppressions, malformed = _parse_suppressions(source)
    return FileContext(
        path=path,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        parents=astutil.parent_map(tree),
        suppressions=suppressions,
        bad_suppressions=malformed,
    )


def _scan_context(ctx: FileContext, rules: Sequence[Rule]) -> list[Finding]:
    findings: list[Finding] = []
    # Meta-rule: suppression without justification (never suppressible).
    for sup in ctx.bad_suppressions:
        findings.append(
            Finding(
                rule=SUP001,
                severity=Severity.ERROR,
                path=ctx.path,
                line=sup.line,
                col=0,
                message=(
                    f"noqa[{','.join(sup.rule_ids)}] without a justification — "
                    "append '— <why the invariant holds anyway>'"
                ),
                snippet=ctx.line_text(sup.line),
            )
        )
    for r in rules:
        if r.deep:
            continue  # whole-program rules run in the analysis pass
        if not r.applies_to(ctx.posix_path):
            continue
        for f in r.check(ctx):
            if not ctx.is_suppressed(f):
                findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def run_source(
    source: str,
    path: str = "src/repro/_snippet.py",
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Scan a source string (the fixture-test entry point)."""
    selected = list(iter_rules(rules))
    try:
        ctx = make_context(source, path)
    except SyntaxError as exc:
        return [_syntax_finding(path, exc)]
    return _scan_context(ctx, selected)


def _syntax_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule="PARSE000",
        severity=Severity.ERROR,
        path=path,
        line=exc.lineno or 1,
        col=exc.offset or 0,
        message=f"could not parse file: {exc.msg}",
    )


def discover(paths: Sequence[str]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for p in paths:
        path = Path(p)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {p}")
        if path.is_dir():
            for f in path.rglob("*.py"):
                if "__pycache__" not in f.parts:
                    out.add(f)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def run(
    paths: Sequence[str] | str,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Scan files/directories and return all unsuppressed findings.

    This is the importable API (``repro.checks.run(paths)``); the CLI is
    a thin wrapper that renders the result and maps it to an exit code.
    """
    if isinstance(paths, str):
        paths = [paths]
    selected = list(iter_rules(rules))
    findings: list[Finding] = []
    for file in discover(paths):
        text = file.read_text(encoding="utf-8")
        try:
            ctx = make_context(text, str(file))
        except SyntaxError as exc:
            findings.append(_syntax_finding(str(file), exc))
            continue
        findings.extend(_scan_context(ctx, selected))
    return findings


__all__ = [
    "SUP001",
    "Suppression",
    "FileContext",
    "make_context",
    "suppression_covers",
    "run",
    "run_source",
    "discover",
]
