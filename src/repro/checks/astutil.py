"""Shared AST helpers for the :mod:`repro.checks` rules.

Everything here is purely syntactic — the analyzer has no type
information, so rules trade on the project's strong naming and structural
conventions (lock names contain ``lock``, bit-plane arrays are named
``q_high``/``cols_low``/``wmat_*``, spans come from ``*.span(...)``).
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator

FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """child node -> parent node for the whole tree."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def ancestors(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> Iterator[ast.AST]:
    """The chain of enclosing nodes, innermost first."""
    cur = parents.get(node)
    while cur is not None:
        yield cur
        cur = parents.get(cur)


def enclosing_function(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The innermost function containing ``node`` (None at module scope)."""
    for anc in ancestors(node, parents):
        if isinstance(anc, FunctionNode):
            return anc
    return None


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> str | None:
    """Dotted name of a call's callee (``np.matmul``), else None."""
    return dotted_name(call.func)


def terminal_name(node: ast.AST) -> str | None:
    """The last identifier of a Name/Attribute (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_lockish(node: ast.AST) -> bool:
    """Does the expression syntactically look like a lock object?

    True when any identifier along the Name/Attribute chain contains
    ``lock`` (case-insensitive): ``_state_lock``, ``self._lock``,
    ``_CONFIG.lock``, ``REGISTRY_LOCK`` all qualify.
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "lock" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "lock" in sub.attr.lower():
            return True
    return False


def in_with_lock(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> bool:
    """Is ``node`` inside a ``with <lock>:`` block?"""
    for anc in ancestors(node, parents):
        if isinstance(anc, ast.With):
            for item in anc.items:
                if is_lockish(item.context_expr):
                    return True
    return False


def mentions(node: ast.AST, pred: Callable[[ast.AST], bool]) -> bool:
    """Does any sub-node satisfy ``pred``?"""
    return any(pred(sub) for sub in ast.walk(node))


def _is_emptiness_probe(sub: ast.AST) -> bool:
    """``x.any()`` / ``x.size`` / ``len(x)`` / ``x.total``-style tests."""
    if isinstance(sub, ast.Attribute) and sub.attr in ("size", "any", "shape", "total"):
        return True
    if isinstance(sub, ast.Call):
        name = dotted_name(sub.func)
        if name == "len":
            return True
        if isinstance(sub.func, ast.Attribute) and sub.func.attr == "any":
            return True
    return False


def has_emptiness_guard(
    func: ast.FunctionDef | ast.AsyncFunctionDef | None,
    node: ast.AST,
    parents: dict[ast.AST, ast.AST],
) -> bool:
    """Is the call site plausibly guarded against empty operands?

    Accepted guards (deliberately coarse — this is a lint, not a prover):

    * the node sits inside a conditional expression (``x if t else y``);
    * any ``if``/``assert``/``while`` test in the enclosing function
      probes emptiness (``.any()``, ``.size``, ``len(...)``) — covering
      both early-return and wrapping-if patterns;
    * the node sits under ``with np.errstate(...)``.
    """
    for anc in ancestors(node, parents):
        if isinstance(anc, ast.IfExp):
            return True
        if isinstance(anc, ast.With):
            for item in anc.items:
                if (
                    isinstance(item.context_expr, ast.Call)
                    and (call_name(item.context_expr) or "").endswith("errstate")
                ):
                    return True
        if isinstance(anc, FunctionNode):
            break
    if func is None:
        return False
    for sub in ast.walk(func):
        test = None
        if isinstance(sub, (ast.If, ast.IfExp, ast.While)):
            test = sub.test
        elif isinstance(sub, ast.Assert):
            test = sub.test
        if test is not None and mentions(test, _is_emptiness_probe):
            return True
    return False


def under_errstate(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> bool:
    """Is ``node`` inside a ``with np.errstate(...):`` block?"""
    for anc in ancestors(node, parents):
        if isinstance(anc, ast.With):
            for item in anc.items:
                if (
                    isinstance(item.context_expr, ast.Call)
                    and (call_name(item.context_expr) or "").endswith("errstate")
                ):
                    return True
    return False


__all__ = [
    "FunctionNode",
    "parent_map",
    "ancestors",
    "enclosing_function",
    "dotted_name",
    "call_name",
    "terminal_name",
    "is_lockish",
    "in_with_lock",
    "mentions",
    "has_emptiness_guard",
    "under_errstate",
]
