"""Closed-loop serving throughput benchmark.

Quantifies why the serving subsystem exists, by pushing the same request
stream through three execution paths:

``naive``
    what the one-shot scripts do — rebuild the model, recalibrate, and
    re-pack weights for *every* request, then infer one image;
``cached``
    a :class:`~repro.serve.session.ModelSession` built once, requests run
    one-at-a-time through the cached engine;
``batched``
    the full serving stack — cached session + dynamic micro-batcher +
    worker pool, with all requests in flight concurrently;
``replicated`` (only when ``config.replicas > 1``)
    the multi-process tier — the same request stream through a
    :class:`~repro.cluster.router.ClusterPool` of N engine processes.

The replicated path carries a **bit-exactness gate**: every response is
compared byte-for-byte against a single-engine reference that chunks
each request exactly as the router does (deterministic fixed-size
chunks; see ``repro/cluster/router.py`` for why boundaries must not
depend on replica count).  ``result.bitexact["identical"]`` must be
True — ``repro bench-serve --replicas N`` exits nonzero otherwise.

Outputs requests/sec per path and the speedup of each path over naive.
Used by ``python -m repro bench-serve`` and
``benchmarks/bench_serve_throughput.py`` (which persists the table under
``results/``).
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.obs import trace
from repro.serve.batcher import MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.metrics import MetricsRegistry
from repro.serve.session import ModelSession, SessionManager
from repro.serve.worker import WorkerPool
from repro.utils.report import ascii_table


@dataclass
class PathResult:
    """Timing for one execution path."""

    name: str
    requests: int
    seconds: float
    #: Per-worker utilisation for pooled paths: ``[{"name", "batches",
    #: "images", "busy_seconds", "busy_fraction"}, ...]``.  The busy
    #: fraction is ``WorkerStats.busy_seconds / wall-clock`` — the share
    #: of the benchmark window the worker spent inside ``engine.infer``,
    #: which is what makes worker/GEMM-thread scaling runs interpretable
    #: (low fractions mean the pool is starved or oversubscribed, not
    #: slow).  Empty for single-threaded paths.
    worker_busy: list = field(default_factory=list)

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else float("inf")


@dataclass
class ServeBenchResult:
    """All three paths plus derived speedups."""

    config: ServeConfig
    paths: dict[str, PathResult] = field(default_factory=dict)
    #: Per-layer result-generation dispatch census from the batched
    #: pool's engines (see :meth:`repro.serve.worker.WorkerPool.exec_census`).
    exec_census: dict = field(default_factory=dict)
    #: Replicated-path bit-exactness gate: ``{"requests", "identical",
    #: "max_abs_diff"}``; empty unless ``config.replicas > 1``.
    bitexact: dict = field(default_factory=dict)
    #: :class:`~repro.obs.collector.TelemetryCollector` holding the merged
    #: multi-process trace; set only when the replicated path ran with the
    #: tracer enabled (``repro --trace bench-serve --replicas N``).
    collector: object = None

    def speedup(self, path: str, baseline: str = "naive") -> float:
        return (
            self.paths[path].requests_per_second
            / self.paths[baseline].requests_per_second
        )

    def render(self) -> str:
        rows = [
            [
                p.name,
                p.requests,
                f"{p.seconds:.3f}",
                f"{p.requests_per_second:.2f}",
                f"{self.speedup(p.name):.1f}x",
            ]
            for p in self.paths.values()
        ]
        title = (
            f"serving throughput — model={self.config.model} "
            f"scheme={self.config.scheme} exec={self.config.exec_path} "
            f"batch<= {self.config.max_batch_size} "
            f"workers={self.config.workers}"
            + (
                f" replicas={self.config.replicas}"
                if self.config.replicas > 1
                else ""
            )
            + (
                f" gemm_threads={self.config.gemm_threads}"
                if self.config.gemm_threads is not None
                else ""
            )
        )
        parts = [ascii_table(
            ["path", "requests", "seconds", "req/s", "vs naive"], rows, title=title
        )]
        busy_rows = [
            [
                w["name"],
                w["batches"],
                w["images"],
                f"{w['busy_seconds']:.3f}",
                f"{w['busy_fraction'] * 100.0:.1f}%",
            ]
            for p in self.paths.values()
            for w in p.worker_busy
        ]
        if busy_rows:
            parts.append(ascii_table(
                ["worker", "batches", "images", "busy s", "busy frac"],
                busy_rows,
                title="worker utilisation (batched path)",
            ))
        if self.bitexact:
            verdict = "PASS" if self.bitexact["identical"] else "FAIL"
            parts.append(
                f"bit-exactness vs single-engine reference over "
                f"{self.bitexact['requests']} requests: {verdict} "
                f"(max |diff| = {self.bitexact['max_abs_diff']:.3g})"
            )
        if self.exec_census:
            census_rows = [
                [
                    layer,
                    "|".join(
                        f"{p}:{n}" for p, n in sorted(c["path_calls"].items())
                    ),
                    f"{c['rows_computed']:,}/{c['rows_total']:,}",
                ]
                for layer, c in self.exec_census.items()
            ]
            parts.append(ascii_table(
                ["layer", "path calls", "rows computed"],
                census_rows,
                title="result-generation dispatch census (batched path)",
            ))
        return "\n\n".join(parts)

    def as_dict(self) -> dict:
        out = {
            name: {
                "requests": p.requests,
                "seconds": round(p.seconds, 4),
                "requests_per_second": round(p.requests_per_second, 3),
                "speedup_vs_naive": round(self.speedup(name), 2),
                **(
                    {"worker_busy": p.worker_busy}
                    if p.worker_busy
                    else {}
                ),
            }
            for name, p in self.paths.items()
        }
        if self.exec_census:
            out["exec_census"] = self.exec_census
        if self.bitexact:
            out["bitexact"] = self.bitexact
        return out


def _request_images(session: ModelSession, n: int, seed: int) -> list[np.ndarray]:
    """n single-image requests drawn from the session's sample pool."""
    rng = np.random.default_rng(seed)
    pool = session.sample_inputs
    return [pool[rng.integers(len(pool))][None] for _ in range(n)]


def run_naive(config: ServeConfig, requests: int) -> PathResult:
    """Rebuild session per request (the pre-serving status quo)."""
    probe = ModelSession(config)  # build once just to draw request images
    images = _request_images(probe, requests, config.seed + 1)
    t0 = time.perf_counter()
    for img in images:
        session = ModelSession(config)  # the whole pipeline, every time
        session.engine.infer(img)
    return PathResult("naive", requests, time.perf_counter() - t0)


def run_cached(session: ModelSession, requests: int, seed: int) -> PathResult:
    """One cached session, serial single-image inference."""
    images = _request_images(session, requests, seed + 2)
    t0 = time.perf_counter()
    for img in images:
        session.engine.infer(img)
    return PathResult("cached", requests, time.perf_counter() - t0)


def run_batched(
    session: ModelSession, config: ServeConfig, requests: int, seed: int,
    census_out: dict | None = None,
) -> PathResult:
    """Cached session + micro-batcher + worker pool, all requests in flight.

    ``census_out``, when given, receives the pool's per-layer
    result-generation dispatch census (collected before shutdown).
    """
    images = _request_images(session, requests, seed + 3)
    # The cached path above ran on session.engine, which becomes worker
    # 0; start from clean records so the census covers only this run.
    session.engine.reset_records()
    batcher = MicroBatcher(
        max_batch_size=config.max_batch_size, max_wait_ms=config.max_wait_ms
    )
    pool = WorkerPool(
        session, batcher, metrics=MetricsRegistry(), num_workers=config.workers
    )
    with pool:
        t0 = time.perf_counter()
        futures: list[Future] = [batcher.submit(img) for img in images]
        for fut in futures:
            fut.result(timeout=120)
        elapsed = time.perf_counter() - t0
        worker_busy = [
            {
                **w,
                "busy_fraction": round(
                    (w["busy_seconds"] / elapsed) if elapsed > 0 else 0.0, 4
                ),
            }
            for w in pool.stats()
        ]
        if census_out is not None:
            census_out.update(pool.exec_census())
    return PathResult("batched", requests, elapsed, worker_busy=worker_busy)


def _mixed_requests(
    session: ModelSession, n: int, seed: int, max_batch: int
) -> list[np.ndarray]:
    """n requests of mixed sizes ``1 .. max_batch + 1`` (deterministic).

    The ``max_batch + 1`` sizes force the router to split a request into
    multiple chunks, so the bit-exactness gate also covers chunk
    boundaries, not just whole-request routing.
    """
    rng = np.random.default_rng(seed)
    pool = session.sample_inputs
    out = []
    for _ in range(n):
        size = int(rng.integers(1, max_batch + 2))
        idx = rng.integers(len(pool), size=size)
        out.append(np.stack([pool[i] for i in idx]))
    return out


def _chunked_reference(engine, arr: np.ndarray, chunk_images: int) -> np.ndarray:
    """Single-engine logits with the router's deterministic chunking."""
    outs = [
        engine.infer(arr[o : o + chunk_images])
        for o in range(0, arr.shape[0], chunk_images)
    ]
    return np.concatenate(outs, axis=0)


def run_replicated(
    session: ModelSession,
    config: ServeConfig,
    requests: int,
    seed: int,
    census_out: dict | None = None,
    bitexact_out: dict | None = None,
    collector_out: list | None = None,
) -> PathResult:
    """The multi-process replica tier, all requests in flight.

    Besides throughput, this path verifies the cluster's core numerical
    contract: every response must be byte-identical to a single engine
    running the same deterministic chunks (``bitexact_out``).

    With the tracer enabled, each request is minted a
    :class:`~repro.obs.trace.TraceContext` and the pool ships replica
    telemetry to a :class:`~repro.obs.collector.TelemetryCollector`
    (appended to ``collector_out``), so one bench run yields the full
    merged multi-process trace.
    """
    from repro.cluster import ClusterPool

    collector = None
    if trace.enabled():
        from repro.obs.collector import TelemetryCollector

        collector = TelemetryCollector()
        if collector_out is not None:
            collector_out.append(collector)

    def submit(pool, arr: np.ndarray) -> Future:
        if collector is None:
            return pool.submit(arr)
        with trace.request_context(
            "bench.request", batch=int(arr.shape[0])
        ) as (_sp, ctx):
            return pool.submit(arr, ctx=ctx)

    images = _mixed_requests(session, requests, seed + 4, config.max_batch_size)
    pool = ClusterPool(
        config,
        input_shape=session.input_shape,
        num_classes=session.num_classes,
        metrics=MetricsRegistry(),
        collector=collector,
    )
    with pool:
        # Exclude replica startup (process spawn + session build) and a
        # first warm-up round from the timed window — the other paths'
        # engines are warm by this point too.
        pool.wait_ready(timeout=120)
        warmup = [submit(pool, images[0][:1]) for _ in range(2 * config.replicas)]
        for fut in warmup:
            fut.result(timeout=240)
        before = {w["name"]: w for w in pool.stats()}
        t0 = time.perf_counter()
        futures: list[Future] = [submit(pool, arr) for arr in images]
        outputs = [fut.result(timeout=240) for fut in futures]
        elapsed = time.perf_counter() - t0
        worker_busy = []
        for w in pool.stats():
            base = before.get(w["name"], {})
            busy = w["busy_seconds"] - base.get("busy_seconds", 0.0)
            worker_busy.append({
                "name": w["name"],
                "batches": w["batches"] - base.get("batches", 0),
                "images": w["images"] - base.get("images", 0),
                "busy_seconds": round(busy, 4),
                "busy_fraction": round(
                    (busy / elapsed) if elapsed > 0 else 0.0, 4
                ),
            })
        if census_out is not None:
            census_out.update(pool.exec_census())
    if bitexact_out is not None:
        max_diff = 0.0
        identical = True
        for arr, out in zip(images, outputs):
            ref = _chunked_reference(session.engine, arr, config.max_batch_size)
            if not np.array_equal(out, ref):
                identical = False
                max_diff = max(max_diff, float(np.abs(out - ref).max()))
        bitexact_out.update(
            requests=requests,
            identical=identical,
            max_abs_diff=max_diff,
        )
    return PathResult("replicated", requests, elapsed, worker_busy=worker_busy)


def run_serve_benchmark(
    config: ServeConfig | None = None,
    requests: int = 64,
    naive_requests: int = 4,
    sessions: SessionManager | None = None,
) -> ServeBenchResult:
    """Run all paths and return the comparison.

    ``naive_requests`` is smaller because the naive path pays a full
    session build per request; its requests/sec rate is what's compared.
    With ``config.replicas > 1`` the replicated path (and its
    bit-exactness gate) is included.
    """
    config = config or ServeConfig()
    result = ServeBenchResult(config=config)
    result.paths["naive"] = run_naive(config, naive_requests)

    manager = sessions or SessionManager()
    session = manager.get_or_create(config)
    result.paths["cached"] = run_cached(session, requests, config.seed)
    result.paths["batched"] = run_batched(
        session, config, requests, config.seed, census_out=result.exec_census
    )
    if config.replicas > 1:
        collectors: list = []
        result.paths["replicated"] = run_replicated(
            session, config, requests, config.seed,
            bitexact_out=result.bitexact,
            collector_out=collectors,
        )
        if collectors:
            result.collector = collectors[0]
    return result


__all__ = [
    "PathResult",
    "ServeBenchResult",
    "run_naive",
    "run_cached",
    "run_batched",
    "run_replicated",
    "run_serve_benchmark",
]
