"""Serving metrics: thread-safe counters, gauges, and histograms.

A tiny dependency-free registry in the spirit of Prometheus client
libraries.  Histograms keep a bounded reservoir of recent observations so
percentiles (p50/p95/p99) stay cheap and memory-bounded under sustained
traffic; counts/sums are exact over the full lifetime.

The registry renders two ways:

* :meth:`MetricsRegistry.as_dict` — JSON-safe dict for the ``/metrics``
  HTTP endpoint and programmatic scraping;
* :meth:`MetricsRegistry.render` — ASCII tables (via
  :func:`repro.utils.report.ascii_table`) for ``/stats`` and the CLI.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque

from repro.utils.report import ascii_table

#: Default reservoir size for histogram percentile estimation.
DEFAULT_RESERVOIR = 8192


class Counter:
    """Monotonic counter."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Last-write-wins scalar (e.g. per-layer mask density)."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Observation stream with exact count/sum and reservoir percentiles."""

    def __init__(self, name: str, help: str = "", reservoir: int = DEFAULT_RESERVOIR):
        self.name = name
        self.help = help
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._values: deque[float] = deque(maxlen=reservoir)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            self._count += 1
            self._sum += v
            self._min = min(self._min, v)
            self._max = max(self._max, v)
            self._values.append(v)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile over the reservoir (p in [0,100])."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            data = sorted(self._values)
        if not data:
            return 0.0
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(data) - 1)
        frac = rank - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def summary(self) -> dict:
        with self._lock:
            count, total = self._count, self._sum
            vmin = self._min if self._count else 0.0
            vmax = self._max if self._count else 0.0
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": vmin,
            "max": vmax,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named collection of counters/gauges/histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create, so call sites
    never race on registration; creation is idempotent per name.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: "OrderedDict[str, Counter]" = OrderedDict()
        self._gauges: "OrderedDict[str, Gauge]" = OrderedDict()
        self._histograms: "OrderedDict[str, Histogram]" = OrderedDict()

    # -- get-or-create ------------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name, help)
            return self._counters[name]

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name, help)
            return self._gauges[name]

    def histogram(
        self, name: str, help: str = "", reservoir: int = DEFAULT_RESERVOIR
    ) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, help, reservoir)
            return self._histograms[name]

    # -- export -------------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-safe snapshot: ``{counters:{}, gauges:{}, histograms:{}}``."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "counters": {c.name: c.value for c in counters},
            "gauges": {g.name: g.value for g in gauges},
            "histograms": {h.name: h.summary() for h in histograms},
        }

    def render(self, title: str = "serving metrics") -> str:
        """ASCII tables of the whole registry (the ``/stats`` body)."""
        snap = self.as_dict()
        parts = []
        scalar_rows = [[k, f"{v:,}"] for k, v in snap["counters"].items()]
        scalar_rows += [[k, f"{v:.4f}"] for k, v in snap["gauges"].items()]
        if scalar_rows:
            parts.append(ascii_table(["metric", "value"], scalar_rows, title=title))
        hist_rows = [
            [
                name,
                f"{s['count']:,}",
                f"{s['mean']:.3f}",
                f"{s['p50']:.3f}",
                f"{s['p95']:.3f}",
                f"{s['p99']:.3f}",
                f"{s['max']:.3f}",
            ]
            for name, s in snap["histograms"].items()
        ]
        if hist_rows:
            parts.append(
                ascii_table(
                    ["histogram", "count", "mean", "p50", "p95", "p99", "max"],
                    hist_rows,
                )
            )
        return "\n\n".join(parts) if parts else "(no metrics recorded)"


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_RESERVOIR",
]
