"""Serving metrics: thread-safe counters, gauges, and histograms.

A tiny dependency-free registry in the spirit of Prometheus client
libraries.  Histograms keep a bounded reservoir of recent observations so
percentiles (p50/p95/p99) stay cheap and memory-bounded under sustained
traffic; counts/sums are exact over the full lifetime.  The
:class:`Histogram` type itself lives in :mod:`repro.obs.hist` (the
profiler reuses it) and is re-exported here for back-compat.

The registry renders three ways:

* :meth:`MetricsRegistry.as_dict` — JSON-safe dict for the ``/metrics``
  HTTP endpoint and programmatic scraping;
* :meth:`MetricsRegistry.prometheus` — Prometheus text exposition
  (``/metrics?format=prom`` or ``Accept: text/plain``);
* :meth:`MetricsRegistry.render` — ASCII tables (via
  :func:`repro.utils.report.ascii_table`) for ``/stats`` and the CLI.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.obs.hist import DEFAULT_RESERVOIR, Histogram
from repro.utils.report import ascii_table


class Counter:
    """Monotonic counter."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Last-write-wins scalar (e.g. per-layer mask density)."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class MetricsRegistry:
    """Named collection of counters/gauges/histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create, so call sites
    never race on registration; creation is idempotent per name.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: "OrderedDict[str, Counter]" = OrderedDict()
        self._gauges: "OrderedDict[str, Gauge]" = OrderedDict()
        self._histograms: "OrderedDict[str, Histogram]" = OrderedDict()

    # -- get-or-create ------------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name, help)
            return self._counters[name]

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name, help)
            return self._gauges[name]

    def histogram(
        self, name: str, help: str = "", reservoir: int = DEFAULT_RESERVOIR
    ) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, help, reservoir)
            return self._histograms[name]

    # -- export -------------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-safe snapshot: ``{counters:{}, gauges:{}, histograms:{}}``."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "counters": {c.name: c.value for c in counters},
            "gauges": {g.name: g.value for g in gauges},
            "histograms": {h.name: h.summary() for h in histograms},
        }

    def help_texts(self) -> dict:
        """``{raw metric name: help string}`` for every named metric.

        Keys keep their embedded labels (``requests_total@replica=0``);
        the Prometheus exporter resolves them per family when emitting
        ``# HELP`` metadata.
        """
        with self._lock:
            metrics = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
            )
        return {m.name: m.help for m in metrics if m.help}

    def prometheus(self, namespace: str = "repro") -> str:
        """Prometheus text exposition of the whole registry.

        Counters render as ``counter`` (``_total`` suffix enforced),
        gauges as ``gauge``, histograms as ``summary`` with
        p50/p95/p99 quantile series.  Colon-labeled names such as
        ``sensitive_ratio:<layer>`` become a ``layer`` label.  Each
        family carries ``# HELP``/``# TYPE`` metadata from the help
        strings given at metric creation.
        """
        from repro.obs.exporters import prometheus_text

        return prometheus_text(
            self.as_dict(), namespace=namespace, help_texts=self.help_texts()
        )

    def render(self, title: str = "serving metrics") -> str:
        """ASCII tables of the whole registry (the ``/stats`` body)."""
        snap = self.as_dict()
        parts = []
        scalar_rows = [[k, f"{v:,}"] for k, v in snap["counters"].items()]
        scalar_rows += [[k, f"{v:.4f}"] for k, v in snap["gauges"].items()]
        if scalar_rows:
            parts.append(ascii_table(["metric", "value"], scalar_rows, title=title))
        hist_rows = [
            [
                name,
                f"{s['count']:,}",
                f"{s['mean']:.3f}",
                f"{s['p50']:.3f}",
                f"{s['p95']:.3f}",
                f"{s['p99']:.3f}",
                f"{s['max']:.3f}",
            ]
            for name, s in snap["histograms"].items()
        ]
        if hist_rows:
            parts.append(
                ascii_table(
                    ["histogram", "count", "mean", "p50", "p95", "p99", "max"],
                    hist_rows,
                )
            )
        return "\n\n".join(parts) if parts else "(no metrics recorded)"


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_RESERVOIR",
]
