"""The serving composition root: session cache → batcher → workers → HTTP.

:class:`InferenceServer` wires the pieces of ``repro.serve`` together and
owns their lifecycles.  With ``replicas=1`` (the default) requests flow
through the in-process thread pool:

.. code-block:: text

    HTTP /predict ─┐
    HTTP /predict ─┼─> MicroBatcher ──> WorkerPool (N × engine clone)
    HTTP /predict ─┘        │                  │
                            └── futures <─ split outputs

With ``replicas > 1`` the same front end drives the multi-process tier
(:mod:`repro.cluster`) instead — N replica processes fed over
shared-memory arenas, with consistent-hash session affinity and
crash-respawn supervision:

.. code-block:: text

    HTTP /predict ──> ClusterPool ──> replica process 0 (engine)
                        │  router ──> replica process 1 (engine)
                        └─ futures <── shared-memory logits

Use it embedded (tests, benchmarks)::

    with InferenceServer(ServeConfig(model="lenet", port=0)) as server:
        url = server.url  # actual bound port
        ...

or from the CLI: ``python -m repro serve --model lenet --scheme odq
--replicas 4``.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.obs.collector import TelemetryCollector
from repro.obs.drift import DriftMonitor, baseline_from_engine
from repro.serve.batcher import MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.http import ServingHTTPServer
from repro.serve.metrics import MetricsRegistry
from repro.serve.session import ModelSession, SessionManager
from repro.serve.worker import WorkerPool
from repro.utils.report import ascii_table


class InferenceServer:
    """A long-lived batched quantized-inference server.

    Construction builds (or fetches from ``sessions``) the model session —
    the expensive, amortized-once part — and prepares the batcher and
    worker pool (or, for ``config.replicas > 1``, the replica cluster).
    :meth:`start` spawns the workers and the HTTP listener;
    :meth:`shutdown` reverses everything and joins all threads.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        sessions: SessionManager | None = None,
        verbose: bool = False,
    ):
        self.config = config or ServeConfig()
        self.sessions = sessions or SessionManager()
        self.verbose = verbose
        self.metrics = MetricsRegistry()

        # The front-end session validates request shapes and describes
        # itself on /healthz; in cluster mode the replicas build their
        # own (bit-identical) sessions and this one never infers.
        self.session: ModelSession = self.sessions.get_or_create(self.config)
        # Drift monitor baseline: the front-end session calibrated at
        # build, so its engine records hold the calibration-set per-layer
        # sensitive ratios the paper's scheme anchored on.
        self.drift = DriftMonitor(
            baseline=baseline_from_engine(self.session.engine),
            band=self.config.drift_band,
            metrics=self.metrics,
        )
        self.collector: TelemetryCollector | None = None
        self.cluster = None
        self.batcher: MicroBatcher | None = None
        self.pool: WorkerPool | None = None
        if self.config.replicas > 1:
            from repro.cluster import ClusterPool

            self.collector = TelemetryCollector(
                metrics=self.metrics,
                drift=self.drift,
                spool_path=self.config.telemetry_spool,
            )
            self.cluster = ClusterPool(
                self.config,
                input_shape=self.session.input_shape,
                num_classes=self.session.num_classes,
                metrics=self.metrics,
                collector=self.collector,
            )
        else:
            self.batcher = MicroBatcher(
                max_batch_size=self.config.max_batch_size,
                max_wait_ms=self.config.max_wait_ms,
            )
            self.pool = WorkerPool(
                self.session,
                self.batcher,
                metrics=self.metrics,
                num_workers=self.config.workers,
                drift=self.drift,
            )
        self._httpd: ServingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None
        self._started = False
        self._stopped = False
        self._draining = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "InferenceServer":
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        if self.cluster is not None:
            self.cluster.start()
        else:
            self.pool.start()
        self._httpd = ServingHTTPServer((self.config.host, self.config.port), self)
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="serve-http",
            daemon=True,
        )
        self._http_thread.start()
        return self

    def shutdown(self, timeout: float = 5.0) -> None:
        """Graceful stop: refuse new work, close HTTP, then drain workers.

        Order matters.  ``_draining`` flips first so handler threads
        still in flight answer 503 instead of racing a closing pool;
        the listening socket closes next (no new connections); only
        then is the worker tier drained — requests the pool already
        accepted finish before their engines exit.  Idempotent.
        """
        if self._stopped:
            return
        self._stopped = True
        self._draining = True
        if self._httpd is not None:
            self._httpd.shutdown()       # stop serve_forever loop
            self._httpd.server_close()   # release the socket
        if self._http_thread is not None:
            self._http_thread.join(timeout)
        if self.cluster is not None:
            self.cluster.shutdown(timeout)
        else:
            self.pool.shutdown(timeout)
        if self.collector is not None:
            self.collector.close()

    @property
    def draining(self) -> bool:
        """True once shutdown began: /predict answers 503 from here on."""
        return self._draining

    def wait(self, poll_seconds: float = 1.0) -> None:
        """Block the calling thread until the HTTP listener exits."""
        if self._http_thread is None:
            raise RuntimeError("server not started")
        while self._http_thread.is_alive():
            self._http_thread.join(poll_seconds)

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- addressing ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually-bound port (resolves ``port=0`` to the OS choice)."""
        if self._httpd is None:
            raise RuntimeError("server not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    # -- request dispatch ---------------------------------------------------

    def submit(self, arr: np.ndarray, affinity: str | None = None, ctx=None):
        """Route a request batch to the active backend; returns a Future.

        ``affinity`` (an opaque client session key) only matters in
        cluster mode, where it pins the request to its consistent-hash
        replica so per-session cache state stays warm; the thread pool
        shares one engine set and ignores it.  ``ctx`` is the request's
        :class:`~repro.obs.trace.TraceContext` (or ``None``), threaded
        through so backend spans parent under the HTTP request span.
        """
        if self.cluster is not None:
            return self.cluster.submit(arr, affinity=affinity, ctx=ctx)
        return self.batcher.submit(arr, ctx=ctx)

    def refresh_metrics(self) -> None:
        """Pull backend-side counters into the registry (scrape-time)."""
        if self.cluster is not None:
            self.cluster.refresh_metrics()

    # -- endpoint bodies ----------------------------------------------------

    def health(self) -> dict:
        body = {
            "status": "draining" if self._draining else "ok",
            "session": self.session.describe(),
        }
        if self.cluster is not None:
            body["replicas"] = self.cluster.liveness()
            body["replicas_alive"] = self.cluster.alive_replicas
            body["requests_submitted"] = self.cluster.submitted
            body["batches_dispatched"] = self.cluster.dispatched
        else:
            body["workers_alive"] = self.pool.alive_workers
            body["queue_depth"] = len(self.batcher)
            body["requests_submitted"] = self.batcher.submitted
            body["batches_dispatched"] = self.batcher.dispatched
        return body

    def render_stats(self) -> str:
        """Plain-text operator view: metrics tables + workers + session."""
        self.refresh_metrics()
        parts = [self.metrics.render(title=f"repro.serve — {self.session.key}")]
        backend = self.cluster if self.cluster is not None else self.pool
        worker_rows = [
            [s["name"], s["batches"], s["images"], s["errors"], s["busy_seconds"]]
            for s in backend.stats()
        ]
        parts.append(
            ascii_table(
                ["worker", "batches", "images", "errors", "busy_s"], worker_rows
            )
        )
        session_rows = [[k, v] for k, v in self.session.describe().items()]
        parts.append(ascii_table(["session", "value"], session_rows))
        return "\n\n".join(parts) + "\n"


__all__ = ["InferenceServer"]
