"""The serving composition root: session cache → batcher → workers → HTTP.

:class:`InferenceServer` wires the pieces of ``repro.serve`` together and
owns their lifecycles:

.. code-block:: text

    HTTP /predict ─┐
    HTTP /predict ─┼─> MicroBatcher ──> WorkerPool (N × engine clone)
    HTTP /predict ─┘        │                  │
                            └── futures <─ split outputs

Use it embedded (tests, benchmarks)::

    with InferenceServer(ServeConfig(model="lenet", port=0)) as server:
        url = server.url  # actual bound port
        ...

or from the CLI: ``python -m repro serve --model lenet --scheme odq``.
"""

from __future__ import annotations

import threading

from repro.serve.batcher import MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.http import ServingHTTPServer
from repro.serve.metrics import MetricsRegistry
from repro.serve.session import ModelSession, SessionManager
from repro.serve.worker import WorkerPool
from repro.utils.report import ascii_table


class InferenceServer:
    """A long-lived batched quantized-inference server.

    Construction builds (or fetches from ``sessions``) the model session —
    the expensive, amortized-once part — and prepares the batcher and
    worker pool.  :meth:`start` spawns the worker threads and the HTTP
    listener; :meth:`shutdown` reverses everything and joins all threads.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        sessions: SessionManager | None = None,
        verbose: bool = False,
    ):
        self.config = config or ServeConfig()
        self.sessions = sessions or SessionManager()
        self.verbose = verbose
        self.metrics = MetricsRegistry()

        self.session: ModelSession = self.sessions.get_or_create(self.config)
        self.batcher = MicroBatcher(
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
        )
        self.pool = WorkerPool(
            self.session,
            self.batcher,
            metrics=self.metrics,
            num_workers=self.config.workers,
        )
        self._httpd: ServingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None
        self._started = False
        self._stopped = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "InferenceServer":
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self.pool.start()
        self._httpd = ServingHTTPServer((self.config.host, self.config.port), self)
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="serve-http",
            daemon=True,
        )
        self._http_thread.start()
        return self

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop HTTP, drain/fail the queue, join workers. Idempotent."""
        if self._stopped:
            return
        self._stopped = True
        if self._httpd is not None:
            self._httpd.shutdown()       # stop serve_forever loop
            self._httpd.server_close()   # release the socket
        if self._http_thread is not None:
            self._http_thread.join(timeout)
        self.pool.shutdown(timeout)

    def wait(self, poll_seconds: float = 1.0) -> None:
        """Block the calling thread until the HTTP listener exits."""
        if self._http_thread is None:
            raise RuntimeError("server not started")
        while self._http_thread.is_alive():
            self._http_thread.join(poll_seconds)

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- addressing ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually-bound port (resolves ``port=0`` to the OS choice)."""
        if self._httpd is None:
            raise RuntimeError("server not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    # -- endpoint bodies ----------------------------------------------------

    def health(self) -> dict:
        return {
            "status": "ok",
            "session": self.session.describe(),
            "workers_alive": self.pool.alive_workers,
            "queue_depth": len(self.batcher),
            "requests_submitted": self.batcher.submitted,
            "batches_dispatched": self.batcher.dispatched,
        }

    def render_stats(self) -> str:
        """Plain-text operator view: metrics tables + workers + session."""
        parts = [self.metrics.render(title=f"repro.serve — {self.session.key}")]
        worker_rows = [
            [s["name"], s["batches"], s["images"], s["errors"], s["busy_seconds"]]
            for s in self.pool.stats()
        ]
        parts.append(
            ascii_table(
                ["worker", "batches", "images", "errors", "busy_s"], worker_rows
            )
        )
        session_rows = [[k, v] for k, v in self.session.describe().items()]
        parts.append(ascii_table(["session", "value"], session_rows))
        return "\n\n".join(parts) + "\n"


__all__ = ["InferenceServer"]
