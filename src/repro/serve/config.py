"""Serving configuration.

One dataclass gathers every tuning knob of the serving stack (session
build, micro-batching policy, worker pool size, HTTP front end) so the
CLI, tests, and benchmarks construct servers from the same vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import DEFAULT_SEED


@dataclass(frozen=True)
class ServeConfig:
    """Knobs for the ``repro.serve`` stack.

    Session
    -------
    model:
        Model registry name (``lenet``, ``resnet20``, ``vgg16`` …).
    scheme:
        Scheme registry name (``odq``, ``int8``, ``drq84`` …; see
        :func:`repro.core.schemes.available_schemes`).
    threshold:
        Sensitivity threshold for thresholded schemes; ``None`` picks
        :data:`repro.core.schemes.DEFAULT_SERVE_THRESHOLD`.
    dataset:
        Synthetic dataset used for (optional) training and calibration.
    train_epochs:
        Epochs of warm-up training at session build.  ``0`` skips
        training entirely (random-init weights) — the right choice for
        latency/throughput tests where accuracy is irrelevant.
    calib_images:
        Number of calibration images sampled from the dataset.
    exec_path:
        ODQ result-generation path (``auto | dense | sparse``; see
        :mod:`repro.core.odq`).  Ignored by non-ODQ schemes.
    use_plan:
        Compile shape-specialized inference plans
        (:mod:`repro.core.plan`) at session warm-up and reuse them per
        batch shape.  ``False`` (the ``--no-plan`` escape hatch) keeps
        the legacy per-call path.  Like ``gemm_threads``, this changes
        speed, never results (planned execution is bit-identical), so
        it is not part of the session identity key.

    Batching
    --------
    max_batch_size:
        Upper bound on coalesced micro-batch size.
    max_wait_ms:
        How long the batcher holds an open batch waiting for more
        requests before dispatching it anyway.

    Workers / HTTP
    --------------
    workers:
        Engine worker threads; each confines its own engine clone.
        Ignored when ``replicas > 1`` (the replica processes are the
        workers then).
    replicas:
        Engine replica *processes* (:mod:`repro.cluster`).  ``1`` (the
        default) keeps the in-process thread pool; ``> 1`` runs that
        many spawn-started replica processes behind a shared-memory
        router — true core parallelism, unconstrained by the GIL.
    gemm_threads:
        Width of the process-wide GEMM pool (:mod:`repro.core.gemm`)
        applied at session build.  ``None`` keeps the ambient setting
        (``REPRO_GEMM_THREADS`` or ``min(cpu, 8)``); ``1`` disables
        intra-op parallelism.  Note the pool is shared by all workers
        (and inherited by every replica process): effective concurrency
        is ``workers x gemm_threads`` — or ``replicas x gemm_threads``
        — so keep the product near the core count (a warning is logged
        when it oversubscribes the affinity mask; see
        ``docs/serving.md``).
    host / port:
        Bind address.  ``port=0`` asks the OS for a free port (tests).

    Observability
    -------------
    drift_band:
        Alert band for the sensitivity drift monitor
        (:mod:`repro.obs.drift`): a layer whose EWMA sensitive ratio
        moves more than this from its calibration baseline flips its
        ``drift_alert`` gauge and logs a warning.
    telemetry_spool:
        Optional path of a JSONL spool the telemetry collector appends
        merged records to live (``repro trace-tail`` follows it).
    """

    model: str = "lenet"
    scheme: str = "odq"
    threshold: float | None = None
    dataset: str = "mnist"
    train_epochs: int = 0
    calib_images: int = 64
    exec_path: str = "auto"
    use_plan: bool = True
    seed: int = DEFAULT_SEED

    max_batch_size: int = 8
    max_wait_ms: float = 2.0

    workers: int = 2
    replicas: int = 1
    gemm_threads: int | None = None
    host: str = "127.0.0.1"
    port: int = 8321

    drift_band: float = 0.15
    telemetry_spool: str | None = None

    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0 (milliseconds to hold an open "
                f"batch), got {self.max_wait_ms}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.replicas < 1:
            raise ValueError(
                f"replicas must be >= 1 (1 = in-process thread pool, "
                f"N > 1 = N replica processes), got {self.replicas}"
            )
        if self.gemm_threads is not None and self.gemm_threads < 1:
            raise ValueError(
                f"gemm_threads must be >= 1 when set, got {self.gemm_threads}"
            )
        if self.train_epochs < 0:
            raise ValueError(f"train_epochs must be >= 0, got {self.train_epochs}")
        if self.calib_images < 1:
            raise ValueError(f"calib_images must be >= 1, got {self.calib_images}")
        if self.exec_path not in ("auto", "dense", "sparse"):
            raise ValueError(
                f"exec_path must be auto|dense|sparse, got {self.exec_path!r}"
            )
        if self.drift_band <= 0:
            raise ValueError(
                f"drift_band must be positive, got {self.drift_band}"
            )
        self._warn_if_oversubscribed()

    def _warn_if_oversubscribed(self) -> None:
        """Log when the lane count exceeds the affinity mask.

        Effective compute lanes are ``replicas x gemm_threads`` (process
        parallelism times intra-op threads) or ``workers x gemm_threads``
        on the thread path.  Exceeding the usable cores silently
        timeshares — legal, but it erases the scaling the knobs promise,
        so surface it once at config build instead of letting users
        discover it in a flat benchmark curve.
        """
        if self.gemm_threads is None:
            return  # ambient setting: sized from the affinity mask already
        from repro.cluster.sizing import usable_cores

        cores = usable_cores()
        parallel = self.replicas if self.replicas > 1 else self.workers
        lanes = parallel * self.gemm_threads
        if lanes > cores:
            from repro.obs.log import get_logger

            get_logger("repro.serve.config").warning(
                "compute_lanes_oversubscribed",
                lanes=lanes,
                usable_cores=cores,
                replicas=self.replicas,
                workers=self.workers,
                gemm_threads=self.gemm_threads,
            )


__all__ = ["ServeConfig"]
