"""Serving configuration.

One dataclass gathers every tuning knob of the serving stack (session
build, micro-batching policy, worker pool size, HTTP front end) so the
CLI, tests, and benchmarks construct servers from the same vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import DEFAULT_SEED


@dataclass(frozen=True)
class ServeConfig:
    """Knobs for the ``repro.serve`` stack.

    Session
    -------
    model:
        Model registry name (``lenet``, ``resnet20``, ``vgg16`` …).
    scheme:
        Scheme registry name (``odq``, ``int8``, ``drq84`` …; see
        :func:`repro.core.schemes.available_schemes`).
    threshold:
        Sensitivity threshold for thresholded schemes; ``None`` picks
        :data:`repro.core.schemes.DEFAULT_SERVE_THRESHOLD`.
    dataset:
        Synthetic dataset used for (optional) training and calibration.
    train_epochs:
        Epochs of warm-up training at session build.  ``0`` skips
        training entirely (random-init weights) — the right choice for
        latency/throughput tests where accuracy is irrelevant.
    calib_images:
        Number of calibration images sampled from the dataset.
    exec_path:
        ODQ result-generation path (``auto | dense | sparse``; see
        :mod:`repro.core.odq`).  Ignored by non-ODQ schemes.

    Batching
    --------
    max_batch_size:
        Upper bound on coalesced micro-batch size.
    max_wait_ms:
        How long the batcher holds an open batch waiting for more
        requests before dispatching it anyway.

    Workers / HTTP
    --------------
    workers:
        Engine worker threads; each confines its own engine clone.
    gemm_threads:
        Width of the process-wide GEMM pool (:mod:`repro.core.gemm`)
        applied at session build.  ``None`` keeps the ambient setting
        (``REPRO_GEMM_THREADS`` or ``min(cpu, 8)``); ``1`` disables
        intra-op parallelism.  Note the pool is shared by all workers:
        effective concurrency is ``workers x gemm_threads``, so keep
        the product near the core count (see ``docs/serving.md``).
    host / port:
        Bind address.  ``port=0`` asks the OS for a free port (tests).
    """

    model: str = "lenet"
    scheme: str = "odq"
    threshold: float | None = None
    dataset: str = "mnist"
    train_epochs: int = 0
    calib_images: int = 64
    exec_path: str = "auto"
    seed: int = DEFAULT_SEED

    max_batch_size: int = 8
    max_wait_ms: float = 2.0

    workers: int = 2
    gemm_threads: int | None = None
    host: str = "127.0.0.1"
    port: int = 8321

    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.gemm_threads is not None and self.gemm_threads < 1:
            raise ValueError("gemm_threads must be >= 1 when set")
        if self.train_epochs < 0:
            raise ValueError("train_epochs must be >= 0")
        if self.calib_images < 1:
            raise ValueError("calib_images must be >= 1")
        if self.exec_path not in ("auto", "dense", "sparse"):
            raise ValueError(
                f"exec_path must be auto|dense|sparse, got {self.exec_path!r}"
            )


__all__ = ["ServeConfig"]
