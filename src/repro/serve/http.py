"""Dependency-free HTTP front end (stdlib ``http.server``).

JSON-over-POST inference plus operational endpoints:

=============  ======  ====================================================
``/predict``   POST    ``{"inputs": [...]}`` → ``{"predictions": [...]}``
``/healthz``   GET     liveness + session summary
``/metrics``   GET     JSON metrics snapshot (counters/gauges/histograms);
                       ``?format=prom`` or ``Accept: text/plain`` returns
                       Prometheus text exposition instead
``/stats``     GET     plain-text ASCII tables (metrics + worker stats)
=============  ======  ====================================================

``/predict`` accepts a single image (``C×H×W`` nested lists) under
``"input"`` or one-or-more images under ``"inputs"`` (``N×C×H×W``), plus
an optional ``"session"`` string — a replica-affinity key that pins the
request to its consistent-hash replica when the server runs with
``--replicas N`` (ignored by the single-process thread pool).  Each
request is submitted to the active backend and the handler thread blocks
on its future — ``ThreadingHTTPServer`` gives us one thread per in-flight
request, which is exactly the producer model the backends expect.

During shutdown the server *drains*: ``/predict`` (and ``/healthz``)
answer **503** while requests already accepted finish on the workers.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlparse

import numpy as np

from repro.obs import trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.server import InferenceServer

#: Seconds a /predict handler waits on its future before giving up.
PREDICT_TIMEOUT_SECONDS = 60.0


class ServingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying a reference to the serving app."""

    daemon_threads = True  # in-flight handlers must not block shutdown
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], app: "InferenceServer"):
        super().__init__(address, ServeRequestHandler)
        self.app = app


class ServeRequestHandler(BaseHTTPRequestHandler):
    server: ServingHTTPServer  # narrowed type

    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, fmt: str, *args) -> None:  # noqa: D102 — quiet by default
        if self.server.app.verbose:
            super().log_message(fmt, *args)

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, status: int = 200) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- GET ----------------------------------------------------------------

    def _wants_prometheus(self, query: dict) -> bool:
        """Content negotiation for ``/metrics``: JSON unless asked otherwise.

        Prometheus text exposition is selected by ``?format=prom`` (or
        ``prometheus``/``text``) or by an ``Accept`` header preferring
        ``text/plain`` (what Prometheus scrapers send) without also
        accepting JSON.  ``?format=json`` always forces JSON.
        """
        fmt = (query.get("format", [""])[0] or "").lower()
        if fmt in ("prom", "prometheus", "text"):
            return True
        if fmt:  # explicit json or unknown → JSON default
            return False
        accept = self.headers.get("Accept", "")
        return "text/plain" in accept and "application/json" not in accept

    def do_GET(self) -> None:  # noqa: N802 — stdlib API
        app = self.server.app
        parsed = urlparse(self.path)
        route = parsed.path
        if route == "/healthz":
            self._send_json(app.health(), 503 if app.draining else 200)
        elif route == "/metrics":
            app.refresh_metrics()
            if self._wants_prometheus(parse_qs(parsed.query)):
                self._send_text(app.metrics.prometheus())
            else:
                self._send_json(app.metrics.as_dict())
        elif route == "/stats":
            self._send_text(app.render_stats())
        else:
            self._send_json({"error": f"no such endpoint {self.path!r}"}, 404)

    # -- POST ---------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 — stdlib API
        if self.path != "/predict":
            self._send_json({"error": f"no such endpoint {self.path!r}"}, 404)
            return
        if self.server.app.draining:
            # Shutdown in progress: refuse before touching the pool so
            # clients get a clean retry signal instead of a mid-drain
            # connection error.
            self._send_json({"error": "server is draining"}, 503)
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json({"error": f"bad JSON body: {exc}"}, 400)
            return
        try:
            response = self._predict(payload)
        except _ClientError as exc:
            self._send_json({"error": str(exc)}, 400)
        except Exception as exc:  # noqa: BLE001 — surfaced as HTTP 500
            self._send_json({"error": f"{type(exc).__name__}: {exc}"}, 500)
        else:
            self._send_json(response)

    def _predict(self, payload: dict) -> dict:
        app = self.server.app
        if not isinstance(payload, dict):
            raise _ClientError("request body must be a JSON object")
        raw = payload.get("inputs", payload.get("input"))
        if raw is None:
            raise _ClientError('missing "inputs" (N×C×H×W) or "input" (C×H×W)')
        try:
            arr = np.asarray(raw, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise _ClientError(f"inputs are not a numeric array: {exc}") from None
        if arr.ndim == 3:
            arr = arr[None]
        expected = app.session.input_shape
        if arr.ndim != 4 or arr.shape[1:] != expected:
            raise _ClientError(
                f"expected images of shape {tuple(expected)} "
                f"(got array of shape {arr.shape})"
            )

        affinity = payload.get("session")
        if affinity is not None and not isinstance(affinity, str):
            raise _ClientError('"session" (replica affinity key) must be a string')

        t0 = time.perf_counter()
        # Mint the request's trace context here — the outermost point
        # that knows the request — and hand it to the backend so worker
        # threads and replica processes parent under this span.
        with trace.request_context(
            "serve.predict", key=affinity, batch=int(arr.shape[0])
        ) as (_sp, ctx):
            future = app.submit(arr, affinity=affinity, ctx=ctx)
            logits = future.result(timeout=PREDICT_TIMEOUT_SECONDS)
        elapsed_ms = (time.perf_counter() - t0) * 1000.0
        app.metrics.histogram("e2e_ms", "end-to-end /predict latency").observe(
            elapsed_ms
        )

        response = {
            "predictions": [int(i) for i in logits.argmax(axis=1)],
            "batch": int(arr.shape[0]),
            "latency_ms": round(elapsed_ms, 3),
        }
        if payload.get("return_logits"):
            response["logits"] = logits.tolist()
        return response


class _ClientError(ValueError):
    """A 400-class request problem."""


__all__ = ["ServingHTTPServer", "ServeRequestHandler", "PREDICT_TIMEOUT_SECONDS"]
