"""Dynamic micro-batching: coalesce single requests into engine batches.

The quantized engine's cost is dominated by per-call fixed overhead
(im2col set-up, bit-plane GEMM dispatch), so running one image at a time
wastes most of the hardware.  The :class:`MicroBatcher` implements the
classic serving trade-off: hold an open batch for at most ``max_wait_ms``
while more requests arrive, dispatch as soon as ``max_batch_size`` images
are queued, and split the stacked output rows back to per-request
futures.

Thread model: any number of producer threads call :meth:`submit`; worker
threads call :meth:`next_batch` which blocks on a condition variable.
Shutdown wakes all waiters; queued requests are failed with
:class:`BatcherClosed` so no future is ever left dangling.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np


class BatcherClosed(RuntimeError):
    """Raised into futures whose requests were queued at shutdown."""


@dataclass
class _Request:
    """One in-flight request: ``n`` stacked images and their future."""

    inputs: np.ndarray  # (n, C, H, W)
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.perf_counter)
    #: The submitting request's trace context (or None) — carried so the
    #: worker's batch span can parent under the HTTP request span.
    ctx: object | None = None

    @property
    def n(self) -> int:
        return self.inputs.shape[0]


@dataclass
class MicroBatch:
    """A coalesced batch handed to one worker."""

    requests: list[_Request]
    created_at: float = field(default_factory=time.perf_counter)

    @property
    def size(self) -> int:
        """Total images across the coalesced requests."""
        return sum(r.n for r in self.requests)

    def stack(self) -> np.ndarray:
        """Concatenate request inputs into one NCHW engine batch."""
        return np.concatenate([r.inputs for r in self.requests], axis=0)

    def queue_waits(self) -> list[float]:
        """Seconds each request spent queued before dispatch."""
        return [self.created_at - r.enqueued_at for r in self.requests]

    def trace_contexts(self) -> list:
        """Distinct non-None request trace contexts, in submit order."""
        out: list = []
        for r in self.requests:
            if r.ctx is not None and r.ctx not in out:
                out.append(r.ctx)
        return out

    def complete(self, outputs: np.ndarray) -> None:
        """Split stacked engine outputs back to per-request futures."""
        if outputs.shape[0] != self.size:
            self.fail(
                ValueError(
                    f"engine returned {outputs.shape[0]} rows for a "
                    f"batch of {self.size} images"
                )
            )
            return
        offset = 0
        for req in self.requests:
            rows = outputs[offset : offset + req.n]
            offset += req.n
            if not req.future.cancelled():
                req.future.set_result(rows)

    def fail(self, exc: BaseException) -> None:
        for req in self.requests:
            if not req.future.cancelled():
                req.future.set_exception(exc)


class MicroBatcher:
    """Thread-safe request queue with time/size-bounded coalescing.

    Parameters
    ----------
    max_batch_size:
        Dispatch as soon as this many images are queued.
    max_wait_ms:
        A worker that already holds at least one request waits at most
        this long for the batch to fill before dispatching it.
    """

    def __init__(self, max_batch_size: int = 8, max_wait_ms: float = 2.0):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self._queue: deque[_Request] = deque()
        self._queued_images = 0
        self._cond = threading.Condition()
        self._closed = False
        self.submitted = 0   #: total requests accepted
        self.dispatched = 0  #: total batches handed to workers

    # -- producer side ------------------------------------------------------

    def submit(self, inputs: np.ndarray, ctx=None) -> Future:
        """Enqueue one request; returns a Future of its output rows.

        ``inputs`` may be a single image ``(C, H, W)`` or a small batch
        ``(n, C, H, W)``; the future resolves to the matching ``(n,
        num_classes)`` logits rows.  ``ctx`` is the request's optional
        :class:`~repro.obs.trace.TraceContext`, handed to the consuming
        worker for span parentage.
        """
        arr = np.asarray(inputs, dtype=np.float64)
        if arr.ndim == 3:
            arr = arr[None]
        if arr.ndim != 4:
            raise ValueError(
                f"expected (C,H,W) or (N,C,H,W) input, got shape {arr.shape}"
            )
        req = _Request(arr, ctx=ctx)
        with self._cond:
            if self._closed:
                raise BatcherClosed("batcher is shut down")
            self._queue.append(req)
            self._queued_images += req.n
            self.submitted += 1
            self._cond.notify()
        return req.future

    # -- consumer side ------------------------------------------------------

    def next_batch(self, timeout: float | None = None) -> MicroBatch | None:
        """Block until a micro-batch is ready; ``None`` on shutdown/timeout.

        Coalescing policy: wait (up to ``timeout``) for the first request;
        then keep the batch open for at most ``max_wait_ms`` or until
        ``max_batch_size`` images are queued, whichever comes first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._queue:
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)

            hold_until = time.monotonic() + self.max_wait_ms / 1000.0
            while (
                self._queued_images < self.max_batch_size
                and not self._closed
            ):
                remaining = hold_until - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)

            if not self._queue:
                # A concurrent shutdown() drained the queue while we were
                # holding the batch open — nothing left to serve.
                return None

            requests: list[_Request] = []
            images = 0
            while self._queue and images < self.max_batch_size:
                # Never split one request across batches; oversize requests
                # ride alone (the engine caps nothing, only coalescing does).
                nxt = self._queue[0]
                if requests and images + nxt.n > self.max_batch_size:
                    break
                requests.append(self._queue.popleft())
                images += nxt.n
            self._queued_images -= images
            self.dispatched += 1
            if self._queue:
                self._cond.notify()  # leftovers: wake another worker
            return MicroBatch(requests)

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self) -> None:
        """Close the queue; fail queued requests; wake all waiters."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            pending = list(self._queue)
            self._queue.clear()
            self._queued_images = 0
            self._cond.notify_all()
        exc = BatcherClosed("batcher shut down with requests still queued")
        for req in pending:
            if not req.future.cancelled():
                req.future.set_exception(exc)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __len__(self) -> int:
        """Requests currently queued (not yet dispatched)."""
        with self._cond:
            return len(self._queue)


__all__ = ["MicroBatcher", "MicroBatch", "BatcherClosed"]
