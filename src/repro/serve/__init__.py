"""``repro.serve`` — batched quantized-inference serving.

The production-facing layer of the ODQ reproduction: long-lived model
sessions (train/calibrate/pack once), dynamic micro-batching, a
thread-confined engine worker pool, live metrics, and a dependency-free
HTTP front end.  See ``docs/serving.md`` for the architecture tour and
``python -m repro serve --help`` for the CLI.
"""

from repro.serve.batcher import BatcherClosed, MicroBatch, MicroBatcher
from repro.serve.bench import ServeBenchResult, run_serve_benchmark
from repro.serve.config import ServeConfig
from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serve.server import InferenceServer
from repro.serve.session import ModelSession, SessionKey, SessionManager
from repro.serve.worker import WorkerPool, WorkerStats

__all__ = [
    "BatcherClosed",
    "MicroBatch",
    "MicroBatcher",
    "ServeBenchResult",
    "run_serve_benchmark",
    "ServeConfig",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "InferenceServer",
    "ModelSession",
    "SessionKey",
    "SessionManager",
    "WorkerPool",
    "WorkerStats",
]
