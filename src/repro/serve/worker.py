"""Engine worker pool: N threads, one thread-confined engine each.

Each worker owns a clone of the session's calibrated
:class:`~repro.core.pipeline.QuantizedInferenceEngine` (engines are
reusable but deliberately not thread-parallel — see the engine docstring)
and loops: pull a coalesced :class:`~repro.serve.batcher.MicroBatch`,
run ``engine.infer``, split results back to the request futures, and
record metrics (batch size, queue wait, inference latency, per-layer
sensitivity densities).

Shutdown is graceful: the pool closes the batcher (failing queued
requests), then joins every thread with a bounded timeout.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.core.pipeline import QuantizedInferenceEngine
from repro.obs import trace
from repro.obs.log import get_logger
from repro.serve.batcher import MicroBatcher
from repro.serve.metrics import MetricsRegistry
from repro.serve.session import ModelSession

_log = get_logger("repro.serve.worker")


@dataclass
class WorkerStats:
    """Per-worker counters (updated only by the owning thread)."""

    name: str
    batches: int = 0
    images: int = 0
    errors: int = 0
    busy_seconds: float = 0.0
    last_batch_at: float | None = None

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "batches": self.batches,
            "images": self.images,
            "errors": self.errors,
            "busy_seconds": round(self.busy_seconds, 4),
        }


@dataclass
class _Worker:
    thread: threading.Thread
    engine: QuantizedInferenceEngine
    stats: WorkerStats = field(init=False)

    def __post_init__(self):
        self.stats = WorkerStats(name=self.thread.name)


class WorkerPool:
    """Runs N engine workers against one micro-batcher.

    Parameters
    ----------
    session:
        The built :class:`~repro.serve.session.ModelSession`; provides the
        primary engine and per-worker clones.
    batcher:
        The shared request queue.
    metrics:
        Registry receiving ``requests_total`` / ``images_total`` /
        ``batch_size`` / ``queue_wait_ms`` / ``infer_ms`` and the
        per-layer ``sensitive_ratio:<layer>`` gauges.
    num_workers:
        Worker thread count (each confines its own engine clone).
    drift:
        Optional :class:`~repro.obs.drift.DriftMonitor` fed the same
        per-layer samples the gauges publish (the thread-pool analogue
        of the cluster telemetry channel).
    """

    POLL_SECONDS = 0.05  #: batcher poll period, bounds shutdown latency

    def __init__(
        self,
        session: ModelSession,
        batcher: MicroBatcher,
        metrics: MetricsRegistry | None = None,
        num_workers: int = 2,
        drift=None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.session = session
        self.batcher = batcher
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.drift = drift
        self._stop = threading.Event()
        self._started = False
        engines = session.engines_for_workers(num_workers)
        self._workers = [
            _Worker(
                thread=threading.Thread(
                    target=self._run, args=(i,), name=f"serve-worker-{i}", daemon=True
                ),
                engine=engines[i],
            )
            for i in range(num_workers)
        ]

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "WorkerPool":
        if self._started:
            raise RuntimeError("worker pool already started")
        self._started = True
        for w in self._workers:
            w.thread.start()
        return self

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop accepting work, fail queued requests, join all threads."""
        self._stop.set()
        self.batcher.shutdown()
        for w in self._workers:
            if w.thread.is_alive():
                w.thread.join(timeout)

    @property
    def alive_workers(self) -> int:
        return sum(1 for w in self._workers if w.thread.is_alive())

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- the worker loop ----------------------------------------------------

    def _run(self, index: int) -> None:
        worker = self._workers[index]
        engine, stats = worker.engine, worker.stats
        m = self.metrics
        requests_total = m.counter("requests_total", "requests completed")
        images_total = m.counter("images_total", "images inferred")
        errors_total = m.counter("errors_total", "failed batches")
        batch_hist = m.histogram("batch_size", "images per dispatched micro-batch")
        wait_hist = m.histogram("queue_wait_ms", "request time in queue")
        infer_hist = m.histogram("infer_ms", "engine latency per micro-batch")

        while not self._stop.is_set():
            batch = self.batcher.next_batch(timeout=self.POLL_SECONDS)
            if batch is None:
                if self.batcher.closed:
                    break
                continue
            t0 = time.perf_counter()
            ctxs = batch.trace_contexts()
            try:
                # Span nesting (same thread): serve.batch → engine.infer
                # → engine.layer → odq.* phases.  A coalesced batch can
                # carry several request contexts: the span parents under
                # the first and lists the rest by trace id.
                with trace.get_tracer().activate(
                    ctxs[0] if ctxs else None
                ), trace.span(
                    "serve.batch", worker=stats.name, batch=batch.size
                ) as sp:
                    if len(ctxs) > 1:
                        sp.set(
                            extra_trace_ids=[c.trace_id for c in ctxs[1:]]
                        )
                    outputs = engine.infer(batch.stack())
                    sp.add("requests", len(batch.requests))
            except BaseException as exc:  # noqa: BLE001 — forwarded to futures
                stats.errors += 1
                errors_total.inc()
                batch.fail(exc)
                _log.warning(
                    "batch_failed",
                    worker=stats.name,
                    batch=batch.size,
                    error=f"{type(exc).__name__}: {exc}",
                )
                continue
            elapsed = time.perf_counter() - t0
            batch.complete(outputs)

            stats.batches += 1
            stats.images += batch.size
            stats.busy_seconds += elapsed
            stats.last_batch_at = time.time()
            requests_total.inc(len(batch.requests))
            images_total.inc(batch.size)
            batch_hist.observe(batch.size)
            infer_hist.observe(elapsed * 1000.0)
            for wait in batch.queue_waits():
                wait_hist.observe(wait * 1000.0)
            self._publish_layer_densities(m)

    def _publish_layer_densities(self, m: MetricsRegistry) -> None:
        """Aggregate sensitivity-mask density across worker engines."""
        densities = self.layer_densities()
        exec_census = self.exec_census()
        for name, density in densities.items():
            m.gauge(
                f"sensitive_ratio:{name}",
                "per-layer sensitive-output ratio across worker engines",
            ).set(density)
        for name, census in exec_census.items():
            m.gauge(
                f"exec_rows_total:{name}",
                "rows seen by the layer's result-generation dispatch",
            ).set(census["rows_total"])
            m.gauge(
                f"exec_rows_computed:{name}",
                "rows actually computed by the chosen exec path",
            ).set(census["rows_computed"])
            for path, calls in census["path_calls"].items():
                m.gauge(
                    f"exec_path_calls_{path}:{name}",
                    f"dispatches of the {path} result-generation path",
                ).set(calls)
        if self.drift is not None:
            samples: dict[str, dict] = {
                name: {"sensitive_ratio": d} for name, d in densities.items()
            }
            for name, census in exec_census.items():
                samples.setdefault(name, {}).update(
                    rows_total=census["rows_total"],
                    rows_computed=census["rows_computed"],
                    path_calls=census["path_calls"],
                )
            self.drift.observe(samples)

    # -- introspection ------------------------------------------------------

    def layer_densities(self) -> dict[str, float]:
        """Per-layer sensitive-output ratio summed over all worker engines."""
        sens: dict[str, int] = {}
        total: dict[str, int] = {}
        for w in self._workers:
            for name, rec in w.engine.records.items():
                sens[name] = sens.get(name, 0) + rec.sensitive_total
                total[name] = total.get(name, 0) + rec.outputs_total
        return {
            name: (sens[name] / total[name] if total[name] else 0.0)
            for name in sens
        }

    def exec_census(self) -> dict[str, dict]:
        """Per-layer result-generation dispatch census over all workers.

        Sums the ``exec_*`` extras the ODQ executors record (see
        :meth:`repro.core.odq.ODQConvExecutor._note_exec_path`): rows
        seen vs rows actually computed by the chosen path, and how often
        each path (``dense``/``sparse``) was dispatched.  Layers that
        never ran an instrumented full-result step (non-ODQ schemes) are
        absent.
        """
        census: dict[str, dict] = {}
        for w in self._workers:
            for name, rec in w.engine.records.items():
                extra = getattr(rec, "extra", None) or {}
                if "exec_path_calls" not in extra:
                    continue
                c = census.setdefault(
                    name,
                    {"rows_total": 0, "rows_computed": 0, "path_calls": {}},
                )
                c["rows_total"] += int(extra.get("exec_rows_total", 0))
                c["rows_computed"] += int(extra.get("exec_rows_computed", 0))
                for path, calls in extra["exec_path_calls"].items():
                    c["path_calls"][path] = (
                        c["path_calls"].get(path, 0) + int(calls)
                    )
        return census

    def stats(self) -> list[dict]:
        return [w.stats.as_dict() for w in self._workers]


__all__ = ["WorkerPool", "WorkerStats"]
