"""Model sessions: build once, serve forever.

The one-shot scripts rebuild a model, recalibrate, and re-quantize on
every invocation.  A :class:`ModelSession` does that expensive work once
— synthesize data, (optionally) train, install a
:class:`~repro.core.pipeline.QuantizedInferenceEngine`, calibrate it, and
freeze/pre-pack the DoReFa bit-plane weights — and then hands out
ready-to-run engines for the lifetime of the process.

:class:`SessionManager` caches sessions keyed by
``(model, scheme, threshold)`` so a server hosting several configurations
pays each build exactly once, even under concurrent first requests
(per-key build locks).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.workbench import scale_from_env
from repro.core import gemm
from repro.core.pipeline import QuantizedInferenceEngine
from repro.core.schemes import DEFAULT_SERVE_THRESHOLD, Scheme, build_scheme
from repro.data.synthetic import (
    Dataset,
    synthetic_cifar10,
    synthetic_cifar100,
    synthetic_mnist,
)
from repro.models.registry import build_model
from repro.nn.optim import SGD
from repro.nn.trainer import Trainer
from repro.obs import trace
from repro.obs.log import get_logger
from repro.serve.config import ServeConfig

_log = get_logger("repro.serve.session")


@dataclass(frozen=True)
class SessionKey:
    """Cache key: one session per (model, scheme, threshold, exec_path)."""

    model: str
    scheme: str
    threshold: float
    exec_path: str = "auto"

    @classmethod
    def from_config(cls, config: ServeConfig) -> "SessionKey":
        theta = (
            DEFAULT_SERVE_THRESHOLD
            if config.threshold is None
            else float(config.threshold)
        )
        return cls(
            config.model.lower(),
            config.scheme.lower(),
            theta,
            getattr(config, "exec_path", "auto"),
        )


def _build_dataset(config: ServeConfig) -> Dataset:
    scale = scale_from_env()
    kwargs = dict(
        num_train=max(config.calib_images, 64 if config.train_epochs == 0 else scale.num_train),
        num_test=64,
        seed=config.seed,
        max_shift=scale.max_shift,
    )
    name = config.dataset.lower()
    if name == "mnist":
        return synthetic_mnist(**kwargs)
    kwargs.update(image_size=scale.image_size, noise=scale.noise)
    if name == "cifar10":
        return synthetic_cifar10(**kwargs)
    if name == "cifar100":
        return synthetic_cifar100(**kwargs)
    raise KeyError(f"unknown dataset {config.dataset!r} (mnist|cifar10|cifar100)")


@dataclass
class SessionStats:
    """Provenance and cost of one session build."""

    build_seconds: float = 0.0
    train_epochs: int = 0
    calib_images: int = 0
    packed_layers: int = 0
    engines_cloned: int = 0
    plan_warmed: bool = False
    created_at: float = field(default_factory=time.time)


class ModelSession:
    """A fully-built, calibrated, ready-to-run model + engine pair.

    Construction performs the entire amortizable pipeline:

    1. synthesize the dataset and build the model (optionally training it
       for ``config.train_epochs`` epochs);
    2. install the quantization scheme's instrumented executors;
    3. calibrate on ``config.calib_images`` images and freeze — freezing
       pre-quantizes the weights and pre-packs their DoReFa bit planes
       (``W_HBS``) so serving never touches FP weights again.

    After that, :meth:`clone_engine` yields independent engines for
    thread-confined workers, and :attr:`engine` is the primary instance.
    """

    def __init__(self, config: ServeConfig, scheme: Scheme | None = None):
        t0 = time.perf_counter()
        self.config = config
        self.key = SessionKey.from_config(config)
        self.scheme = scheme or build_scheme(
            config.scheme, self.key.threshold, exec_path=self.key.exec_path
        )
        with trace.span(
            "serve.session_build", model=self.key.model, scheme=self.key.scheme
        ):
            self._build(config, t0)
        _log.info(
            "session_built",
            model=self.key.model,
            scheme=self.key.scheme,
            threshold=self.key.threshold,
            build_seconds=round(self.stats.build_seconds, 3),
            layers=len(self.engine.executors),
        )

    def _build(self, config: ServeConfig, t0: float) -> None:
        """The expensive part of construction (traced as one span)."""

        if config.gemm_threads is not None:
            # Process-wide intra-op parallelism knob; deliberately NOT
            # part of SessionKey (it changes speed, never results).
            gemm.configure(threads=config.gemm_threads)

        dataset = _build_dataset(config)
        self.input_shape: tuple[int, int, int] = dataset.image_shape
        self.num_classes: int = dataset.num_classes

        rng = np.random.default_rng(config.seed)
        scale = scale_from_env()
        self.model = build_model(
            config.model,
            num_classes=dataset.num_classes,
            scale=scale.width_multiplier,
            rng=rng,
            in_channels=dataset.image_shape[0],
            image_size=dataset.image_shape[1],
        )
        if config.train_epochs > 0:
            trainer = Trainer(
                self.model,
                SGD(self.model.parameters(), lr=0.05, momentum=0.9),
                batch_size=scale.batch_size,
                rng=np.random.default_rng(config.seed),
            )
            trainer.fit(
                dataset.x_train,
                dataset.y_train,
                dataset.x_test,
                dataset.y_test,
                epochs=config.train_epochs,
            )
        self.model.eval()

        calib = dataset.x_train[: config.calib_images]
        #: A held-out batch kept around for benchmarks and smoke tests.
        self.sample_inputs: np.ndarray = dataset.x_test[: min(16, len(dataset.x_test))]

        self.engine = QuantizedInferenceEngine(self.model, self.scheme)
        self.engine.calibrate(calib)
        self.engine.use_plan = config.use_plan
        plan_warmed = False
        if config.use_plan:
            self._warm_plan(config)
            plan_warmed = True

        self.stats = SessionStats(
            build_seconds=time.perf_counter() - t0,
            train_epochs=config.train_epochs,
            calib_images=len(calib),
            packed_layers=sum(1 for ex in self.engine.executors.values() if ex.frozen),
            plan_warmed=plan_warmed,
        )
        self._clone_lock = threading.Lock()

    def _warm_plan(self, config: ServeConfig) -> None:
        """Compile the steady-state inference plan before serving starts.

        Specializes on the batcher's full coalesced batch shape
        (``max_batch_size``), so the first loaded request doesn't pay the
        compile.  The warm inference runs against scratch layer records:
        the session's real records stay exactly as calibration left them
        (they seed the drift-monitor baseline).
        """
        reps = -(-config.max_batch_size // len(self.sample_inputs))
        warm = np.concatenate([self.sample_inputs] * reps)[: config.max_batch_size]
        engine = self.engine
        saved = {name: ex.record for name, ex in engine.executors.items()}
        try:
            engine.reset_records()
            with trace.span("serve.plan_warm", batch=int(warm.shape[0])):
                engine.infer(warm)
        finally:
            for name, ex in engine.executors.items():
                ex.record = saved[name]

    # -- engines ------------------------------------------------------------

    def clone_engine(self) -> QuantizedInferenceEngine:
        """An independent calibrated engine for one worker thread."""
        clone = self.engine.clone()
        with self._clone_lock:
            self.stats.engines_cloned += 1
        return clone

    def engines_for_workers(self, n: int) -> list[QuantizedInferenceEngine]:
        """Primary engine + (n-1) clones: one thread-confined engine each."""
        if n < 1:
            raise ValueError("need at least one worker")
        return [self.engine] + [self.clone_engine() for _ in range(n - 1)]

    # -- introspection ------------------------------------------------------

    def describe(self) -> dict:
        """JSON-safe session summary (surfaced by ``/healthz``)."""
        return {
            "model": self.key.model,
            "scheme": self.key.scheme,
            "threshold": self.key.threshold,
            "input_shape": list(self.input_shape),
            "num_classes": self.num_classes,
            "quantized_layers": len(self.engine.executors),
            "build_seconds": round(self.stats.build_seconds, 4),
            "train_epochs": self.stats.train_epochs,
            "calib_images": self.stats.calib_images,
            "packed_layers": self.stats.packed_layers,
            "engines_cloned": self.stats.engines_cloned,
            "gemm_threads": gemm.gemm_threads(),
            "plan": {
                "warmed": self.stats.plan_warmed,
                **self.engine.plan_stats(),
            },
        }


class SessionManager:
    """Process-wide cache of :class:`ModelSession` objects.

    ``get_or_create`` is safe under concurrent first requests: a per-key
    build lock ensures exactly one thread pays the build while others for
    the same key wait, and builds for *different* keys proceed in
    parallel.
    """

    def __init__(self):
        self._sessions: dict[SessionKey, ModelSession] = {}
        self._registry_lock = threading.Lock()
        self._build_locks: dict[SessionKey, threading.Lock] = {}
        self.builds = 0  #: number of actual (non-cached) builds performed
        self.hits = 0    #: number of cache hits served

    def _lock_for(self, key: SessionKey) -> threading.Lock:
        with self._registry_lock:
            if key not in self._build_locks:
                self._build_locks[key] = threading.Lock()
            return self._build_locks[key]

    def get_or_create(self, config: ServeConfig) -> ModelSession:
        key = SessionKey.from_config(config)
        with self._registry_lock:
            session = self._sessions.get(key)
            if session is not None:
                self.hits += 1
                return session
        with self._lock_for(key):
            # Double-checked: another thread may have built while we waited.
            with self._registry_lock:
                session = self._sessions.get(key)
                if session is not None:
                    self.hits += 1
                    return session
            session = ModelSession(config)
            with self._registry_lock:
                self._sessions[key] = session
                self.builds += 1
            return session

    def get(self, key: SessionKey) -> ModelSession | None:
        with self._registry_lock:
            return self._sessions.get(key)

    def __len__(self) -> int:
        with self._registry_lock:
            return len(self._sessions)

    def keys(self) -> list[SessionKey]:
        with self._registry_lock:
            return list(self._sessions)

    def clear(self) -> None:
        with self._registry_lock:
            self._sessions.clear()


__all__ = ["SessionKey", "SessionStats", "ModelSession", "SessionManager"]
