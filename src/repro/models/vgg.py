"""VGG-16 adapted for CIFAR-size inputs (conv layers + BN, compact head).

This is the standard "VGG-16 on CIFAR" variant used throughout the
quantization literature (13 conv layers in five max-pooled stages, one
fully-connected classifier head after global pooling).  ``scale``
multiplies channel widths for laptop-scale runs of the same topology.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from repro.utils.rng import new_rng

#: Channel plan of VGG-16's 13 conv layers; "M" marks a 2x2 max pool.
VGG16_PLAN = [64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M", 512, 512, 512, "M"]


class VGG(Module):
    def __init__(
        self,
        plan: list,
        num_classes: int = 10,
        in_channels: int = 3,
        scale: float = 1.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = new_rng(rng)
        layers: list[Module] = []
        c_in = in_channels
        last_width = c_in
        for item in plan:
            if item == "M":
                layers.append(MaxPool2d(2))
                continue
            width = max(4, int(round(item * scale)))
            layers.append(Conv2d(c_in, width, 3, padding=1, bias=False, rng=rng))
            layers.append(BatchNorm2d(width))
            layers.append(ReLU())
            c_in = width
            last_width = width
        self.features = Sequential(*layers)
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(last_width, num_classes, rng=rng)

    def forward(self, x):
        return self.classifier(self.pool(self.features(x)))


def vgg16(num_classes: int = 10, scale: float = 1.0, rng=None, in_channels: int = 3) -> VGG:
    """VGG-16 (13 conv layers), one of the paper's four evaluation DNNs."""
    return VGG(VGG16_PLAN, num_classes, in_channels, scale, rng)


def vgg11(num_classes: int = 10, scale: float = 1.0, rng=None, in_channels: int = 3) -> VGG:
    """Lighter VGG variant, handy for quick experiments."""
    plan = [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"]
    return VGG(plan, num_classes, in_channels, scale, rng)


__all__ = ["VGG", "VGG16_PLAN", "vgg16", "vgg11"]
