"""LeNet-5, the paper's Fig.-1 illustration network."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from repro.utils.rng import new_rng


class LeNet5(Module):
    """Classic LeNet-5 (conv6-pool-conv16-pool-fc120-fc84-fc10).

    Defaults match a 28x28 single-channel input (the MNIST geometry used in
    the paper's Figure 1); ``image_size`` and ``in_channels`` generalise it.
    """

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 1,
        image_size: int = 28,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = new_rng(rng)
        self.features = Sequential(
            Conv2d(in_channels, 6, 5, padding=2, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(6, 16, 5, rng=rng),
            ReLU(),
            MaxPool2d(2),
        )
        feat = (image_size // 2 - 4) // 2
        self.classifier = Sequential(
            Flatten(),
            Linear(16 * feat * feat, 120, rng=rng),
            ReLU(),
            Linear(120, 84, rng=rng),
            ReLU(),
            Linear(84, num_classes, rng=rng),
        )

    def forward(self, x):
        return self.classifier(self.features(x))


__all__ = ["LeNet5"]
