"""DenseNet for CIFAR-size inputs (Huang et al. 2017).

The fourth evaluation network of the paper.  This is the original
(non-bottleneck) CIFAR DenseNet: three dense blocks of ``n`` 3x3 conv
layers with growth rate ``k``, joined by 1x1-conv + 2x2-avg-pool
transitions.  Depth = 3n + 4.  The default (depth 22, k = 12) matches the
smallest configuration in the DenseNet paper's CIFAR table; ``scale``
shrinks the growth rate for test-size instances of the same topology.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import AvgPool2d, BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear, Module, Sequential
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng


class DenseLayer(Module):
    """BN-ReLU-Conv3x3 producing ``growth`` channels, concatenated onto input."""

    def __init__(self, in_channels: int, growth: int, rng):
        super().__init__()
        self.bn = BatchNorm2d(in_channels)
        self.conv = Conv2d(in_channels, growth, 3, padding=1, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        new = self.conv(self.bn(x).relu())
        return Tensor.concat([x, new], axis=1)


class Transition(Module):
    """BN-ReLU-Conv1x1 + 2x2 average pool between dense blocks."""

    def __init__(self, in_channels: int, out_channels: int, rng):
        super().__init__()
        self.bn = BatchNorm2d(in_channels)
        self.conv = Conv2d(in_channels, out_channels, 1, bias=False, rng=rng)
        self.pool = AvgPool2d(2)

    def forward(self, x: Tensor) -> Tensor:
        return self.pool(self.conv(self.bn(x).relu()))


class DenseNet(Module):
    def __init__(
        self,
        depth: int = 22,
        growth: int = 12,
        num_classes: int = 10,
        in_channels: int = 3,
        scale: float = 1.0,
        compression: float = 1.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if (depth - 4) % 3 != 0:
            raise ValueError("DenseNet depth must be 3n + 4")
        rng = new_rng(rng)
        growth = max(2, int(round(growth * scale)))
        n = (depth - 4) // 3

        channels = max(4, 2 * growth)
        self.conv1 = Conv2d(in_channels, channels, 3, padding=1, bias=False, rng=rng)

        blocks: list[Module] = []
        for block_idx in range(3):
            layers = []
            for _ in range(n):
                layers.append(DenseLayer(channels, growth, rng))
                channels += growth
            blocks.append(Sequential(*layers))
            if block_idx < 2:
                out_c = max(4, int(channels * compression))
                blocks.append(Transition(channels, out_c, rng))
                channels = out_c
        self.blocks = Sequential(*blocks)
        self.bn_final = BatchNorm2d(channels)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(channels, num_classes, rng=rng)
        self.depth = depth
        self.growth = growth

    def forward(self, x: Tensor) -> Tensor:
        out = self.blocks(self.conv1(x))
        out = self.bn_final(out).relu()
        return self.fc(self.pool(out))


def densenet(num_classes: int = 10, scale: float = 1.0, rng=None, in_channels: int = 3, depth: int = 22) -> DenseNet:
    """CIFAR DenseNet (depth 3n+4, growth 12)."""
    return DenseNet(depth=depth, growth=12, num_classes=num_classes, in_channels=in_channels, scale=scale, rng=rng)


__all__ = ["DenseLayer", "Transition", "DenseNet", "densenet"]
