"""Model registry: build any of the paper's evaluation networks by name."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.models.densenet import densenet
from repro.models.lenet import LeNet5
from repro.models.resnet import resnet20, resnet56
from repro.models.vgg import vgg11, vgg16
from repro.nn.layers import Module

_BUILDERS: dict[str, Callable] = {
    "resnet20": resnet20,
    "resnet56": resnet56,
    "vgg16": vgg16,
    "vgg11": vgg11,
    "densenet": densenet,
}

#: The four networks of the paper's evaluation (Figs 18, 19, 21).
PAPER_MODELS: tuple[str, ...] = ("resnet56", "resnet20", "vgg16", "densenet")


def available_models() -> list[str]:
    return sorted(_BUILDERS) + ["lenet5"]


def build_model(
    name: str,
    num_classes: int = 10,
    scale: float = 1.0,
    rng: np.random.Generator | None = None,
    in_channels: int = 3,
    image_size: int = 32,
) -> Module:
    """Instantiate a model by registry name.

    ``scale`` multiplies channel widths (topology unchanged); see DESIGN.md
    section 2 for why scaled instances preserve the evaluation's shape.
    """
    name = name.lower()
    if name == "lenet":  # common shorthand (the serve CLI accepts both)
        name = "lenet5"
    if name == "lenet5":
        return LeNet5(num_classes, in_channels, image_size, rng)
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}") from None
    return builder(num_classes=num_classes, scale=scale, rng=rng, in_channels=in_channels)


__all__ = ["available_models", "build_model", "PAPER_MODELS"]
