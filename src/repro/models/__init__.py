"""The paper's evaluation networks: ResNet-20/56, VGG-16, DenseNet, LeNet-5."""

from repro.models.lenet import LeNet5
from repro.models.resnet import BasicBlock, CifarResNet, resnet20, resnet56
from repro.models.vgg import VGG, vgg11, vgg16
from repro.models.densenet import DenseNet, densenet
from repro.models.registry import available_models, build_model, PAPER_MODELS

__all__ = [
    "LeNet5",
    "BasicBlock",
    "CifarResNet",
    "resnet20",
    "resnet56",
    "VGG",
    "vgg11",
    "vgg16",
    "DenseNet",
    "densenet",
    "available_models",
    "build_model",
    "PAPER_MODELS",
]
