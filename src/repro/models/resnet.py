"""CIFAR-style ResNets (He et al. 2016, section 4.2 variant).

ResNet-20 and ResNet-56 — two of the paper's four evaluation networks —
are the 6n+2 CIFAR residual nets with three stages of n basic blocks at
16/32/64 channels and option-A (parameter-free) shortcuts.  ``scale``
multiplies the channel widths so tests can run tiny instances of the
*same topology*; the per-layer structure (which drives the per-layer
sensitivity figures 2-5, 9-11) is unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear, Module, Sequential
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng


class BasicBlock(Module):
    """Two 3x3 convs with identity (option-A) shortcut."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = new_rng(rng)
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        self.stride = stride
        self.in_channels = in_channels
        self.out_channels = out_channels

    def _shortcut(self, x: Tensor) -> Tensor:
        if self.stride == 1 and self.in_channels == self.out_channels:
            return x
        # Option A: subsample spatially, zero-pad channels (no parameters).
        s = x[:, :, :: self.stride, :: self.stride]
        return s.pad_channels(self.out_channels - self.in_channels)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + self._shortcut(x)).relu()


class CifarResNet(Module):
    """6n+2-layer CIFAR ResNet (n blocks per stage)."""

    def __init__(
        self,
        num_blocks_per_stage: int,
        num_classes: int = 10,
        in_channels: int = 3,
        scale: float = 1.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = new_rng(rng)
        widths = [max(4, int(round(w * scale))) for w in (16, 32, 64)]
        self.conv1 = Conv2d(in_channels, widths[0], 3, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(widths[0])
        self.stage1 = self._make_stage(widths[0], widths[0], num_blocks_per_stage, 1, rng)
        self.stage2 = self._make_stage(widths[0], widths[1], num_blocks_per_stage, 2, rng)
        self.stage3 = self._make_stage(widths[1], widths[2], num_blocks_per_stage, 2, rng)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(widths[2], num_classes, rng=rng)
        self.depth = 6 * num_blocks_per_stage + 2

    @staticmethod
    def _make_stage(in_c: int, out_c: int, blocks: int, stride: int, rng) -> Sequential:
        layers = [BasicBlock(in_c, out_c, stride, rng)]
        layers.extend(BasicBlock(out_c, out_c, 1, rng) for _ in range(blocks - 1))
        return Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.stage3(self.stage2(self.stage1(out)))
        return self.fc(self.pool(out))


def resnet20(num_classes: int = 10, scale: float = 1.0, rng=None, in_channels: int = 3) -> CifarResNet:
    """ResNet-20: 3 blocks per stage (the paper's per-layer study network)."""
    return CifarResNet(3, num_classes, in_channels, scale, rng)


def resnet56(num_classes: int = 10, scale: float = 1.0, rng=None, in_channels: int = 3) -> CifarResNet:
    """ResNet-56: 9 blocks per stage."""
    return CifarResNet(9, num_classes, in_channels, scale, rng)


__all__ = ["BasicBlock", "CifarResNet", "resnet20", "resnet56"]
