"""Multi-process replica tier for the ODQ serving stack.

``repro.cluster`` scales :mod:`repro.serve` past the GIL: *N* replica
processes each run a full engine (:mod:`~repro.cluster.worker`), fed
through shared-memory arenas (:mod:`~repro.cluster.shm`) and routed by
a consistent-hash ring plus mask-aware placement
(:mod:`~repro.cluster.hashring`, :mod:`~repro.cluster.sizing`).  The
:class:`~repro.cluster.router.ClusterPool` facade mirrors the
in-process ``WorkerPool`` (submit a batch, get a future), and the
:class:`~repro.cluster.supervisor.Supervisor` keeps the replica
processes alive with bounded-backoff respawn.

Front-end integration lives in :mod:`repro.serve`: ``ServeConfig.replicas``
selects this tier, and ``repro serve --replicas N`` exposes it.
"""

from repro.cluster.hashring import DEFAULT_VNODES, HashRing, stable_hash
from repro.cluster.router import (
    ClusterClosed,
    ClusterPool,
    ReplicaError,
)
from repro.cluster.shm import STATS_FIELDS, ShmArena, ShmSegment, ShmStatsBlock
from repro.cluster.sizing import (
    autoscale_hint,
    place_chunks,
    predicted_chunk_cost,
    recommended_gemm_threads,
    recommended_replicas,
    usable_cores,
)
from repro.cluster.supervisor import ReplicaHandle, Supervisor, slot_floats_for
from repro.cluster.worker import CRASH_EXIT_CODE, ReplicaSpec, replica_main

__all__ = [
    "ClusterPool",
    "ClusterClosed",
    "ReplicaError",
    "HashRing",
    "stable_hash",
    "DEFAULT_VNODES",
    "ShmSegment",
    "ShmArena",
    "ShmStatsBlock",
    "STATS_FIELDS",
    "Supervisor",
    "ReplicaHandle",
    "ReplicaSpec",
    "replica_main",
    "CRASH_EXIT_CODE",
    "slot_floats_for",
    "usable_cores",
    "recommended_replicas",
    "recommended_gemm_threads",
    "autoscale_hint",
    "place_chunks",
    "predicted_chunk_cost",
]
