"""Replica process lifecycle: spawn, monitor, respawn-with-backoff.

The :class:`Supervisor` owns everything whose lifetime matches the
*cluster* rather than any single replica generation: the spawn context,
the per-replica request/response :class:`~repro.cluster.shm.ShmArena`
pair, the shared :class:`~repro.cluster.shm.ShmStatsBlock`, and the
process handles.  Replicas are started with the ``spawn`` start method
— ``fork`` would duplicate the router's threads, locks, and the GEMM
pool mid-flight (the THR203 class of bugs); spawn gives each replica a
clean interpreter that rebuilds its session deterministically.

A monitor thread watches process liveness.  A replica that exits
without being drained is respawned after an exponential backoff
(``backoff_base * 2**respawns``, capped at ``backoff_cap``); after
``max_respawns`` unexpected exits the replica is marked *failed* and
left down.  The router observes generation changes through the
``on_death`` / ``on_respawn`` / ``on_failed`` callbacks (called from
the monitor thread) and re-queues the dead generation's in-flight work.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.shm import ShmArena, ShmStatsBlock
from repro.cluster.worker import ReplicaSpec, replica_main
from repro.obs import log as obs_log
from repro.obs import trace
from repro.obs.log import get_logger
from repro.serve.config import ServeConfig

_log = get_logger("repro.cluster.supervisor")

#: How often the monitor thread checks process liveness.
MONITOR_POLL_SECONDS = 0.05


@dataclass
class ReplicaHandle:
    """One live generation of one replica slot."""

    replica_id: int
    generation: int
    process: mp.process.BaseProcess
    conn: object                      #: parent end of the control pipe
    started_at: float = field(default_factory=time.monotonic)
    state: str = "up"                 #: up | draining | stopped | failed

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def exitcode(self) -> int | None:
        return self.process.exitcode


class Supervisor:
    """Spawns and keeps alive ``replicas`` engine processes.

    Parameters
    ----------
    config:
        The :class:`~repro.serve.config.ServeConfig` each replica builds
        its session from (pickled into the child).
    replicas:
        Replica slot count (fixed for the supervisor's lifetime; slots
        can be *failed* but not added — membership churn is the hash
        ring's job, one level up).
    slots / req_slot_floats / res_slot_floats:
        Shared-memory geometry: transport slots per replica and the
        float64 capacity of one request / response slot.
    backoff_base / backoff_cap / max_respawns:
        Respawn policy: sleep ``min(cap, base * 2**respawns)`` before
        generation ``respawns + 1``, give up after ``max_respawns``.
    on_death / on_respawn / on_failed:
        Router callbacks, invoked from the monitor thread with the
        replica id (and the new handle, for ``on_respawn``).
    """

    def __init__(
        self,
        config: ServeConfig,
        replicas: int,
        slots: int,
        req_slot_floats: int,
        res_slot_floats: int,
        backoff_base: float = 0.25,
        backoff_cap: float = 4.0,
        max_respawns: int = 8,
        on_death=None,
        on_respawn=None,
        on_failed=None,
    ):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.config = config
        self.replicas = replicas
        self.slots = slots
        self.req_slot_floats = req_slot_floats
        self.res_slot_floats = res_slot_floats
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_respawns = max_respawns
        self.on_death = on_death
        self.on_respawn = on_respawn
        self.on_failed = on_failed

        self._ctx = mp.get_context("spawn")
        self._lock = threading.Lock()
        self._handles: dict[int, ReplicaHandle] = {}
        self._respawns: dict[int, int] = {}
        self._draining: set[int] = set()
        self._stopping = False
        self._started = False
        self._monitor: threading.Thread | None = None

        self.req_arenas: list[ShmArena] = []
        self.res_arenas: list[ShmArena] = []
        self.stats: ShmStatsBlock | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Supervisor":
        if self._started:
            raise RuntimeError("supervisor already started")
        self._started = True
        try:
            self.stats = ShmStatsBlock(self.replicas)
            for _ in range(self.replicas):
                self.req_arenas.append(ShmArena(self.slots, self.req_slot_floats))
                self.res_arenas.append(ShmArena(self.slots, self.res_slot_floats))
            for rid in range(self.replicas):
                self._spawn(rid, generation=0)
        except BaseException:
            self._release_shared_memory()
            raise
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="cluster-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop monitoring, end every replica, release shared memory.

        The router must have stopped its per-replica I/O threads first:
        ``stop`` sends a final ``drain`` on each control pipe and that
        is only safe while no other thread reads it.  Idempotent.
        """
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
            handles = list(self._handles.values())
        if self._monitor is not None:
            self._monitor.join(timeout)
        deadline = time.monotonic() + timeout
        for h in handles:
            if h.alive:
                try:
                    h.conn.send(("drain",))
                except (BrokenPipeError, OSError):
                    pass
        for h in handles:
            h.process.join(max(0.1, deadline - time.monotonic()))
            if h.alive:
                h.process.terminate()
                h.process.join(1.0)
            if h.alive:  # pragma: no cover - terminate() refused
                h.process.kill()
                h.process.join(1.0)
            h.state = "stopped"
            try:
                h.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._release_shared_memory()

    def _release_shared_memory(self) -> None:
        for arena in self.req_arenas + self.res_arenas:
            arena.close()
            arena.unlink()
        self.req_arenas = []
        self.res_arenas = []
        if self.stats is not None:
            self.stats.close()
            self.stats.unlink()
            self.stats = None

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- spawning -----------------------------------------------------------

    def _spawn(self, replica_id: int, generation: int) -> ReplicaHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        # Snapshot the parent's *effective* observability config into
        # the spec: the spawned child re-reads only the environment,
        # which misses CLI/programmatic --log-level/--log-json/--trace.
        level_no = obs_log.get_level()
        level_name = {v: k for k, v in obs_log.LEVELS.items()}.get(level_no)
        spec = ReplicaSpec(
            replica_id=replica_id,
            config=self.config,
            req_arena_name=self.req_arenas[replica_id].name,
            res_arena_name=self.res_arenas[replica_id].name,
            stats_name=self.stats.name,
            slots=self.slots,
            req_slot_floats=self.req_slot_floats,
            res_slot_floats=self.res_slot_floats,
            replicas=self.replicas,
            log_level=level_name,
            log_json=obs_log.json_mode(),
            trace_enabled=trace.enabled(),
        )
        process = self._ctx.Process(
            target=replica_main,
            args=(spec, child_conn),
            name=f"repro-replica-{replica_id}.{generation}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only its own end
        handle = ReplicaHandle(
            replica_id=replica_id,
            generation=generation,
            process=process,
            conn=parent_conn,
        )
        with self._lock:
            self._handles[replica_id] = handle
        _log.info(
            "replica_spawned",
            replica=replica_id,
            generation=generation,
            pid=process.pid,
        )
        return handle

    # -- monitoring / respawn -----------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stopping:
            time.sleep(MONITOR_POLL_SECONDS)
            with self._lock:
                dead = [
                    h
                    for h in self._handles.values()
                    if h.state == "up"
                    and not h.alive
                    and h.replica_id not in self._draining
                ]
            for h in dead:
                if self._stopping:
                    return
                self._handle_death(h)

    def _handle_death(self, handle: ReplicaHandle) -> None:
        rid = handle.replica_id
        respawns = self._respawns.get(rid, 0)
        _log.warning(
            "replica_died",
            replica=rid,
            generation=handle.generation,
            exitcode=handle.exitcode,
            respawns=respawns,
        )
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.on_death is not None:
            self.on_death(rid)
        if respawns >= self.max_respawns:
            handle.state = "failed"
            _log.error("replica_failed", replica=rid, respawns=respawns)
            if self.on_failed is not None:
                self.on_failed(rid)
            return
        delay = self.backoff_delay(respawns)
        self._respawns[rid] = respawns + 1
        # Interruptible backoff sleep: a concurrent stop() must not wait
        # out the full delay.
        deadline = time.monotonic() + delay
        while time.monotonic() < deadline and not self._stopping:
            time.sleep(min(MONITOR_POLL_SECONDS, deadline - time.monotonic()))
        if self._stopping:
            return
        new_handle = self._spawn(rid, generation=handle.generation + 1)
        if self.on_respawn is not None:
            self.on_respawn(rid, new_handle)

    def backoff_delay(self, respawns: int) -> float:
        """Delay before respawn number ``respawns + 1`` (bounded)."""
        return float(min(self.backoff_cap, self.backoff_base * (2.0 ** respawns)))

    # -- introspection / coordination ---------------------------------------

    def handle(self, replica_id: int) -> ReplicaHandle:
        with self._lock:
            return self._handles[replica_id]

    def handles(self) -> list[ReplicaHandle]:
        with self._lock:
            return [self._handles[rid] for rid in sorted(self._handles)]

    def respawn_count(self, replica_id: int) -> int:
        with self._lock:
            return self._respawns.get(replica_id, 0)

    def mark_draining(self, replica_id: int) -> None:
        """Suppress respawn for an intentional drain (router-driven)."""
        with self._lock:
            self._draining.add(replica_id)
            self._handles[replica_id].state = "draining"

    def clear_draining(self, replica_id: int) -> None:
        with self._lock:
            self._draining.discard(replica_id)

    def restart(self, replica_id: int) -> ReplicaHandle:
        """Spawn the next generation of a drained/stopped replica."""
        with self._lock:
            old = self._handles[replica_id]
            if old.alive:
                raise RuntimeError(
                    f"replica {replica_id} still alive; drain it first"
                )
            self._draining.discard(replica_id)
        return self._spawn(replica_id, generation=old.generation + 1)

    def liveness(self) -> list[dict]:
        """Per-replica liveness for ``/healthz`` (JSON-safe)."""
        stats = self.stats
        now = time.time()
        out = []
        for h in self.handles():
            row: dict = {
                "replica": h.replica_id,
                "generation": h.generation,
                "state": h.state if not h.alive or h.state != "up" else "up",
                "alive": bool(h.alive),
                "pid": h.process.pid,
                "respawns": self.respawn_count(h.replica_id),
            }
            if stats is not None:
                snap = stats.snapshot(h.replica_id)
                hb = snap["heartbeat"]
                row["heartbeat_age_s"] = (
                    round(max(0.0, now - hb), 3) if hb > 0 else None
                )
                row["batches"] = int(snap["batches"])
                row["images"] = int(snap["images"])
            out.append(row)
        return out


def slot_floats_for(shape: tuple, max_batch: int) -> int:
    """Float64 capacity one slot needs for ``max_batch`` items of ``shape``."""
    return int(max_batch) * int(np.prod(shape, dtype=np.int64))


__all__ = ["Supervisor", "ReplicaHandle", "slot_floats_for", "MONITOR_POLL_SECONDS"]
