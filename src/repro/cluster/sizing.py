"""Replica sizing and mask-aware chunk placement (pure functions).

Two decisions live here, both deliberately free of I/O so they are unit
testable and auditable:

* **How many replicas / GEMM threads should this box run?**
  :func:`recommended_replicas` derives the default from
  ``os.sched_getaffinity`` (the *usable* cores — containers routinely
  restrict the affinity mask well below ``os.cpu_count()``), and
  :func:`autoscale_hint` nudges it using the observed per-replica busy
  fractions the shared stats block exposes.
* **Which replica should run this chunk?**  :func:`place_chunks`
  balances *predicted sensitive-row work*, not request counts: ODQ's
  cost per image is dominated by the executor phase, which only
  computes the sensitive output rows, so a chunk's predicted cost is
  ``images * (PREDICT_COST + sensitive_ratio)`` — the INT2 prediction
  pass everyone pays plus the census-measured sensitive fraction
  (:func:`predicted_chunk_cost`).  Placement is greedy
  longest-processing-time onto the least-loaded replica, seeded with
  each replica's current outstanding work.

Chunk *boundaries* are none of this module's business: the router cuts
deterministic fixed-size chunks (see ``router.py`` — ODQ quantization
ranges are computed per inference batch, so batch composition is part
of the numerical contract and must not depend on replica count or
load).  Only *placement* is load-dependent.
"""

from __future__ import annotations

import os

#: Relative cost of the always-paid prediction phase (INT2 partials over
#: every output) per image, in units of "full-result rows per output".
#: The executor phase then costs ``sensitive_ratio`` on top: a 0.3-dense
#: layer costs ~0.55 of a dense layer, matching the BENCH_odq_sparse
#: crossover region.
PREDICT_COST = 0.25

#: Cap on the derived replica default — past this the per-replica
#: session builds and shared-memory arenas cost more than the extra
#: processes return on the GEMM sizes this repo serves.
MAX_DEFAULT_REPLICAS = 8


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def recommended_replicas(cores: int | None = None) -> int:
    """Default replica count for ``--replicas auto``: one per usable core.

    Engine replicas are process-parallel (no GIL sharing), so the right
    default is the affinity-mask size, capped at
    :data:`MAX_DEFAULT_REPLICAS`; a 1-core box gets 1 replica (the
    in-process thread pool path) rather than paying transport overhead
    for no parallelism.
    """
    cores = usable_cores() if cores is None else int(cores)
    return max(1, min(cores, MAX_DEFAULT_REPLICAS))


def recommended_gemm_threads(replicas: int, cores: int | None = None) -> int:
    """GEMM pool width per replica keeping ``replicas x threads <= cores``."""
    cores = usable_cores() if cores is None else int(cores)
    return max(1, cores // max(1, replicas))


def autoscale_hint(busy_fractions: list[float], replicas: int,
                   cores: int | None = None) -> int:
    """Suggested replica count given observed worker-busy fractions.

    Saturated replicas (mean busy fraction above 0.75) suggest growing
    while cores remain; mostly-idle ones (below 0.25) suggest shrinking.
    Returns a count in ``[1, usable_cores]`` — advisory only, surfaced
    by the bench and ``/healthz``, never applied automatically.
    """
    cores = usable_cores() if cores is None else int(cores)
    if not busy_fractions:
        return replicas
    mean_busy = sum(busy_fractions) / max(1, len(busy_fractions))
    if mean_busy > 0.75 and replicas < cores:
        return min(cores, replicas + 1)
    if mean_busy < 0.25 and replicas > 1:
        return replicas - 1
    return replicas


def predicted_chunk_cost(images: int, sensitive_ratio: float) -> float:
    """Predicted relative cost of inferring ``images`` on one replica.

    ``sensitive_ratio`` is the census-measured fraction of output rows
    the executor actually computes (``sens_rows_computed /
    sens_rows_total``); 1.0 (dense) when no census exists yet.
    """
    ratio = sensitive_ratio if 0.0 <= sensitive_ratio <= 1.0 else 1.0
    return float(images) * (PREDICT_COST + ratio)


def place_chunks(
    chunk_images: list[int],
    replica_loads: list[float],
    sensitive_ratio: float = 1.0,
) -> list[int]:
    """Assign each chunk to a replica, equalizing predicted work.

    ``chunk_images[i]`` is the image count of chunk *i*;
    ``replica_loads[r]`` the replica's current outstanding predicted
    work (queued + in-flight chunk costs, plus any busy-fraction bias
    the router folds in).  Greedy LPT: place chunks largest-first onto
    the currently least-loaded replica; ties break on the lower replica
    id so placement is deterministic.  Returns the replica index per
    chunk, in the original chunk order.
    """
    if not replica_loads:
        raise ValueError("no replicas to place onto")
    loads = [float(x) for x in replica_loads]
    order = sorted(
        range(len(chunk_images)), key=lambda i: (-chunk_images[i], i)
    )
    assignment = [0] * len(chunk_images)
    for i in order:
        target = min(range(len(loads)), key=lambda r: (loads[r], r))
        assignment[i] = target
        loads[target] += predicted_chunk_cost(chunk_images[i], sensitive_ratio)
    return assignment


__all__ = [
    "PREDICT_COST",
    "MAX_DEFAULT_REPLICAS",
    "usable_cores",
    "recommended_replicas",
    "recommended_gemm_threads",
    "autoscale_hint",
    "predicted_chunk_cost",
    "place_chunks",
]
