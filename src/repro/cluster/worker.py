"""The replica process: one engine, one control pipe, two arenas.

:func:`replica_main` is the ``multiprocessing`` (spawn) target.  Each
replica process builds its *own* :class:`~repro.serve.session.ModelSession`
from the pickled :class:`~repro.serve.config.ServeConfig` — engines hold
packed bit-plane arrays and per-layer caches that are cheaper to rebuild
deterministically (same config ⇒ bit-identical weights) than to ship —
then loops on the control connection:

* ``("req", rid, slot, shape, ctx)`` — a request chunk sits in
  request-arena slot ``slot``; infer it under the wire-form
  :class:`~repro.obs.trace.TraceContext` ``ctx`` (may be ``None``),
  write the logits into the *same* slot index of the response arena,
  answer ``("res", rid, slot, out_shape)``.  Failures answer
  ``("err", rid, message)`` and are confined to that request.
* ``("census",)`` — answer ``("census", densities, exec_census)`` with
  the per-layer sensitivity densities and result-generation dispatch
  census of this replica's engine.
* ``("drain",)`` — finish (the router already stopped sending work),
  mark the stats row dead, answer ``("drained", replica_id)``, exit 0.

Between messages the loop polls with a short timeout and refreshes its
heartbeat field in the shared stats block, which is how the supervisor
distinguishes a busy replica from a dead one.

When tracing is on, the replica also runs a **telemetry channel**: it
re-applies the parent's observability config (spawned children inherit
the environment but not in-process CLI overrides), names its trace lane
``replica-<id>``, and periodically ships batches of finished spans,
buffered log records, and per-layer sensitivity samples back over the
control pipe as ``("telemetry", payload)`` for
:class:`repro.obs.collector.TelemetryCollector` to merge.

Test hooks (``config.extra``): ``cluster_echo`` replaces the engine
with a deterministic array transform (no session build — transport and
supervision tests run in milliseconds); ``cluster_exit_after=N`` makes
the replica ``os._exit`` after N batches (crash-recovery tests);
``cluster_exit_on_start`` exits immediately (backoff tests);
``cluster_raise_on_start`` raises on startup (crash-log tests).
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass

import numpy as np

from repro.obs import log as obs_log
from repro.obs import trace
from repro.obs.log import get_logger
from repro.serve.config import ServeConfig
from repro.cluster.shm import ShmArena, ShmStatsBlock

_log = get_logger("repro.cluster.worker")

#: Seconds the worker loop blocks in ``conn.poll`` before refreshing its
#: heartbeat; bounds both heartbeat staleness and drain latency.
POLL_SECONDS = 0.1

#: Exit code of a ``cluster_exit_after`` injected crash (distinguishable
#: from real failures in supervisor logs and tests).
CRASH_EXIT_CODE = 23

#: Telemetry ship cadence: at most every this many seconds …
TELEMETRY_INTERVAL_SECONDS = 1.0

#: … unless this many finished spans accumulate first.
TELEMETRY_SPAN_HIGH_WATER = 256


@dataclass(frozen=True)
class ReplicaSpec:
    """Everything a replica process needs, in picklable form."""

    replica_id: int
    config: ServeConfig
    req_arena_name: str
    res_arena_name: str
    stats_name: str
    slots: int
    req_slot_floats: int
    res_slot_floats: int
    replicas: int
    #: Observability snapshot of the parent at spawn time (spawned
    #: children re-read the env, which misses CLI/programmatic config).
    log_level: str | None = None
    log_json: bool | None = None
    trace_enabled: bool = False


def _echo_transform(chunk: np.ndarray, classes: int) -> np.ndarray:
    """Deterministic engine stand-in for transport tests.

    Returns the first ``classes`` features of each flattened image
    (padded by repetition when the image is smaller), so tests can
    predict exact output bytes without building a model.
    """
    flat = chunk.reshape(chunk.shape[0], -1)
    if flat.shape[1] >= classes:
        return flat[:, :classes].copy()
    reps = int(np.ceil(classes / flat.shape[1]))
    return np.tile(flat, (1, reps))[:, :classes].copy()


def _engine_census(engine) -> tuple[dict, dict]:
    """(layer densities, exec census) of one engine — the per-process
    analogue of :meth:`repro.serve.worker.WorkerPool.exec_census`."""
    densities: dict[str, float] = {}
    census: dict[str, dict] = {}
    for name, rec in engine.records.items():
        if rec.outputs_total:
            densities[name] = rec.sensitive_total / rec.outputs_total
        extra = getattr(rec, "extra", None) or {}
        if "exec_path_calls" not in extra:
            continue
        census[name] = {
            "rows_total": int(extra.get("exec_rows_total", 0)),
            "rows_computed": int(extra.get("exec_rows_computed", 0)),
            "path_calls": {
                p: int(c) for p, c in extra["exec_path_calls"].items()
            },
        }
    return densities, census


def _census_totals(census: dict) -> tuple[int, int]:
    total = sum(c["rows_total"] for c in census.values())
    computed = sum(c["rows_computed"] for c in census.values())
    return total, computed


def _apply_observability(spec: ReplicaSpec) -> "obs_log.RecordBuffer | None":
    """Re-apply the parent's obs config in this replica process.

    Spawned children re-read ``REPRO_LOG_LEVEL``/``REPRO_LOG_JSON``/
    ``REPRO_TRACE`` at import, which silently drops any ``--log-level``
    / ``--log-json`` / ``--trace`` the parent applied in-process — so
    the spec carries an explicit snapshot and we re-apply it here.
    Returns the installed log-record buffer when telemetry is on.
    """
    obs_log.configure(level=spec.log_level, json_mode=spec.log_json)
    trace.set_process_lane(f"replica-{spec.replica_id}")
    if not spec.trace_enabled:
        return None
    trace.enable()
    return obs_log.install_buffer()


def replica_main(spec: ReplicaSpec, conn) -> None:
    """Entry point of one replica process (spawn target)."""
    # A foreground Ctrl-C reaches the whole process group; shutdown is
    # the supervisor's job (drain message, then terminate), so replicas
    # must not die — or spew tracebacks — on the terminal's SIGINT.
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    buffer = _apply_observability(spec)
    extra = spec.config.extra or {}
    if extra.get("cluster_exit_on_start"):
        os._exit(int(extra.get("cluster_exit_code", CRASH_EXIT_CODE)))

    try:
        _attach_and_serve(spec, conn, buffer)
    except Exception as exc:
        # Structured last words: the supervisor only sees the exit code,
        # so record what killed this replica before the process dies.
        _log.error(
            "replica_crash",
            replica=spec.replica_id,
            pid=os.getpid(),
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
        )
        raise


def _attach_and_serve(spec: ReplicaSpec, conn, buffer) -> None:
    req_arena = ShmArena(
        spec.slots, spec.req_slot_floats, name=spec.req_arena_name
    )
    try:
        res_arena = ShmArena(
            spec.slots, spec.res_slot_floats, name=spec.res_arena_name
        )
        try:
            stats = ShmStatsBlock(spec.replicas, name=spec.stats_name)
            try:
                _serve(spec, conn, req_arena, res_arena, stats, buffer)
            finally:
                stats.close()
        finally:
            res_arena.close()
    finally:
        req_arena.close()
        conn.close()


def _sensitivity_samples(engine) -> dict[str, dict]:
    """Per-layer drift samples in the shape ``DriftMonitor.observe`` eats."""
    if engine is None:
        return {}
    densities, census = _engine_census(engine)
    samples: dict[str, dict] = {
        name: {"sensitive_ratio": ratio} for name, ratio in densities.items()
    }
    for name, c in census.items():
        samples.setdefault(name, {}).update(
            rows_total=c["rows_total"],
            rows_computed=c["rows_computed"],
            path_calls=c["path_calls"],
        )
    return samples


def _ship_telemetry(spec: ReplicaSpec, conn, engine, buffer) -> None:
    """Drain finished spans + buffered logs + samples down the pipe."""
    tracer = trace.get_tracer()
    spans = tracer.drain()
    logs = buffer.drain() if buffer is not None else []
    samples = _sensitivity_samples(engine)
    if not spans and not logs and not samples:
        return
    conn.send(("telemetry", {
        "lane": trace.process_lane(),
        "pid": os.getpid(),
        "epoch_wall": tracer.epoch_wall,
        "spans": [s.as_dict() for s in spans],
        "logs": logs,
        "samples": samples,
    }))


def _serve(
    spec: ReplicaSpec,
    conn,
    req_arena: ShmArena,
    res_arena: ShmArena,
    stats: ShmStatsBlock,
    buffer=None,
) -> None:
    extra = spec.config.extra or {}
    if extra.get("cluster_raise_on_start"):
        raise RuntimeError("injected replica start failure")
    echo_classes = int(extra.get("cluster_echo_classes", 10))
    crash_after = extra.get("cluster_exit_after")
    engine = None
    if not extra.get("cluster_echo"):
        from repro.serve.session import ModelSession

        session = ModelSession(spec.config)
        engine = session.engine

    rid_row = stats.row(spec.replica_id)
    rid_row[:] = 0.0
    stats.set(spec.replica_id, "pid", float(os.getpid()))
    stats.set(spec.replica_id, "alive", 1.0)
    stats.set(spec.replica_id, "heartbeat", time.time())
    conn.send(("ready", spec.replica_id, os.getpid()))
    # Each replica compiles its own inference plans (ModelSession warms
    # the steady-state shape at build); planned execution is bit-identical
    # to the unplanned path, so N replicas match --replicas 1 exactly.
    plan_modes = sorted(
        {p.mode for p in engine._plans.values()}
    ) if engine is not None and engine.use_plan else []
    _log.info(
        "replica_up",
        replica=spec.replica_id,
        pid=os.getpid(),
        mode="echo" if engine is None else "engine",
        plan=",".join(plan_modes) if plan_modes else "off",
    )

    tracer = trace.get_tracer()
    telemetry_on = tracer.enabled
    last_ship = time.perf_counter()

    def maybe_ship(force: bool = False) -> None:
        nonlocal last_ship
        if not telemetry_on:
            return
        now = time.perf_counter()
        if (not force and now - last_ship < TELEMETRY_INTERVAL_SECONDS
                and len(tracer) < TELEMETRY_SPAN_HIGH_WATER):
            return
        last_ship = now
        _ship_telemetry(spec, conn, engine, buffer)

    batches = 0
    while True:
        if not conn.poll(POLL_SECONDS):
            stats.set(spec.replica_id, "heartbeat", time.time())
            maybe_ship()
            continue
        try:
            msg = conn.recv()
        except EOFError:
            # Router vanished; nothing to drain into.
            break
        kind = msg[0]
        if kind == "req":
            rid, slot, shape = msg[1], msg[2], msg[3]
            ctx = trace.TraceContext.from_wire(msg[4]) if len(msg) > 4 else None
            chunk = req_arena.view(slot, tuple(shape))
            t0 = time.perf_counter()
            try:
                with tracer.activate(ctx), trace.span(
                    "replica.chunk",
                    replica=spec.replica_id,
                    batch=int(chunk.shape[0]),
                    seq=rid,
                ):
                    if engine is None:
                        out = _echo_transform(chunk, echo_classes)
                    else:
                        out = engine.infer(chunk)
            except Exception as exc:  # noqa: BLE001 — confined to the request
                stats.add(spec.replica_id, "errors", 1.0)
                conn.send(("err", rid, f"{type(exc).__name__}: {exc}"))
                continue
            out_shape = res_arena.write(slot, out)
            conn.send(("res", rid, slot, out_shape))
            busy = time.perf_counter() - t0
            batches += 1
            stats.add(spec.replica_id, "batches", 1.0)
            stats.add(spec.replica_id, "requests", 1.0)
            stats.add(spec.replica_id, "images", float(chunk.shape[0]))
            stats.add(spec.replica_id, "busy_seconds", busy)
            if engine is not None:
                _, census = _engine_census(engine)
                total, computed = _census_totals(census)
                stats.set(spec.replica_id, "sens_rows_total", float(total))
                stats.set(spec.replica_id, "sens_rows_computed", float(computed))
            stats.set(spec.replica_id, "heartbeat", time.time())
            maybe_ship()
            if crash_after is not None and batches >= int(crash_after):
                _log.warning(
                    "replica_injected_crash",
                    replica=spec.replica_id,
                    after_batches=batches,
                )
                os._exit(CRASH_EXIT_CODE)
        elif kind == "census":
            densities, census = (
                ({}, {}) if engine is None else _engine_census(engine)
            )
            conn.send(("census", densities, census))
        elif kind in ("drain", "stop"):
            stats.set(spec.replica_id, "alive", 0.0)
            # Final telemetry ship *before* the drained ack: the router's
            # drain loop keeps routing messages until it sees the ack, so
            # spans from the last batches are not lost at shutdown.
            maybe_ship(force=True)
            conn.send(("drained", spec.replica_id))
            _log.info("replica_drained", replica=spec.replica_id, batches=batches)
            break
        else:  # pragma: no cover - protocol error
            conn.send(("err", None, f"unknown control message {kind!r}"))


__all__ = [
    "ReplicaSpec",
    "replica_main",
    "POLL_SECONDS",
    "CRASH_EXIT_CODE",
    "TELEMETRY_INTERVAL_SECONDS",
    "TELEMETRY_SPAN_HIGH_WATER",
]
