"""The replica process: one engine, one control pipe, two arenas.

:func:`replica_main` is the ``multiprocessing`` (spawn) target.  Each
replica process builds its *own* :class:`~repro.serve.session.ModelSession`
from the pickled :class:`~repro.serve.config.ServeConfig` — engines hold
packed bit-plane arrays and per-layer caches that are cheaper to rebuild
deterministically (same config ⇒ bit-identical weights) than to ship —
then loops on the control connection:

* ``("req", rid, slot, shape)`` — a request chunk sits in request-arena
  slot ``slot``; infer it, write the logits into the *same* slot index
  of the response arena, answer ``("res", rid, slot, out_shape)``.
  Failures answer ``("err", rid, message)`` and are confined to that
  request.
* ``("census",)`` — answer ``("census", densities, exec_census)`` with
  the per-layer sensitivity densities and result-generation dispatch
  census of this replica's engine.
* ``("drain",)`` — finish (the router already stopped sending work),
  mark the stats row dead, answer ``("drained", replica_id)``, exit 0.

Between messages the loop polls with a short timeout and refreshes its
heartbeat field in the shared stats block, which is how the supervisor
distinguishes a busy replica from a dead one.

Test hooks (``config.extra``): ``cluster_echo`` replaces the engine
with a deterministic array transform (no session build — transport and
supervision tests run in milliseconds); ``cluster_exit_after=N`` makes
the replica ``os._exit`` after N batches (crash-recovery tests);
``cluster_exit_on_start`` exits immediately (backoff tests).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.obs.log import get_logger
from repro.serve.config import ServeConfig
from repro.cluster.shm import ShmArena, ShmStatsBlock

_log = get_logger("repro.cluster.worker")

#: Seconds the worker loop blocks in ``conn.poll`` before refreshing its
#: heartbeat; bounds both heartbeat staleness and drain latency.
POLL_SECONDS = 0.1

#: Exit code of a ``cluster_exit_after`` injected crash (distinguishable
#: from real failures in supervisor logs and tests).
CRASH_EXIT_CODE = 23


@dataclass(frozen=True)
class ReplicaSpec:
    """Everything a replica process needs, in picklable form."""

    replica_id: int
    config: ServeConfig
    req_arena_name: str
    res_arena_name: str
    stats_name: str
    slots: int
    req_slot_floats: int
    res_slot_floats: int
    replicas: int


def _echo_transform(chunk: np.ndarray, classes: int) -> np.ndarray:
    """Deterministic engine stand-in for transport tests.

    Returns the first ``classes`` features of each flattened image
    (padded by repetition when the image is smaller), so tests can
    predict exact output bytes without building a model.
    """
    flat = chunk.reshape(chunk.shape[0], -1)
    if flat.shape[1] >= classes:
        return flat[:, :classes].copy()
    reps = int(np.ceil(classes / flat.shape[1]))
    return np.tile(flat, (1, reps))[:, :classes].copy()


def _engine_census(engine) -> tuple[dict, dict]:
    """(layer densities, exec census) of one engine — the per-process
    analogue of :meth:`repro.serve.worker.WorkerPool.exec_census`."""
    densities: dict[str, float] = {}
    census: dict[str, dict] = {}
    for name, rec in engine.records.items():
        if rec.outputs_total:
            densities[name] = rec.sensitive_total / rec.outputs_total
        extra = getattr(rec, "extra", None) or {}
        if "exec_path_calls" not in extra:
            continue
        census[name] = {
            "rows_total": int(extra.get("exec_rows_total", 0)),
            "rows_computed": int(extra.get("exec_rows_computed", 0)),
            "path_calls": {
                p: int(c) for p, c in extra["exec_path_calls"].items()
            },
        }
    return densities, census


def _census_totals(census: dict) -> tuple[int, int]:
    total = sum(c["rows_total"] for c in census.values())
    computed = sum(c["rows_computed"] for c in census.values())
    return total, computed


def replica_main(spec: ReplicaSpec, conn) -> None:
    """Entry point of one replica process (spawn target)."""
    # A foreground Ctrl-C reaches the whole process group; shutdown is
    # the supervisor's job (drain message, then terminate), so replicas
    # must not die — or spew tracebacks — on the terminal's SIGINT.
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    extra = spec.config.extra or {}
    if extra.get("cluster_exit_on_start"):
        os._exit(int(extra.get("cluster_exit_code", CRASH_EXIT_CODE)))

    req_arena = ShmArena(
        spec.slots, spec.req_slot_floats, name=spec.req_arena_name
    )
    try:
        res_arena = ShmArena(
            spec.slots, spec.res_slot_floats, name=spec.res_arena_name
        )
        try:
            stats = ShmStatsBlock(spec.replicas, name=spec.stats_name)
            try:
                _serve(spec, conn, req_arena, res_arena, stats)
            finally:
                stats.close()
        finally:
            res_arena.close()
    finally:
        req_arena.close()
        conn.close()


def _serve(
    spec: ReplicaSpec,
    conn,
    req_arena: ShmArena,
    res_arena: ShmArena,
    stats: ShmStatsBlock,
) -> None:
    extra = spec.config.extra or {}
    echo_classes = int(extra.get("cluster_echo_classes", 10))
    crash_after = extra.get("cluster_exit_after")
    engine = None
    if not extra.get("cluster_echo"):
        from repro.serve.session import ModelSession

        session = ModelSession(spec.config)
        engine = session.engine

    rid_row = stats.row(spec.replica_id)
    rid_row[:] = 0.0
    stats.set(spec.replica_id, "pid", float(os.getpid()))
    stats.set(spec.replica_id, "alive", 1.0)
    stats.set(spec.replica_id, "heartbeat", time.time())
    conn.send(("ready", spec.replica_id, os.getpid()))
    _log.info(
        "replica_up",
        replica=spec.replica_id,
        pid=os.getpid(),
        mode="echo" if engine is None else "engine",
    )

    batches = 0
    while True:
        if not conn.poll(POLL_SECONDS):
            stats.set(spec.replica_id, "heartbeat", time.time())
            continue
        try:
            msg = conn.recv()
        except EOFError:
            # Router vanished; nothing to drain into.
            break
        kind = msg[0]
        if kind == "req":
            _, rid, slot, shape = msg
            chunk = req_arena.view(slot, tuple(shape))
            t0 = time.perf_counter()
            try:
                if engine is None:
                    out = _echo_transform(chunk, echo_classes)
                else:
                    out = engine.infer(chunk)
            except Exception as exc:  # noqa: BLE001 — confined to the request
                stats.add(spec.replica_id, "errors", 1.0)
                conn.send(("err", rid, f"{type(exc).__name__}: {exc}"))
                continue
            out_shape = res_arena.write(slot, out)
            conn.send(("res", rid, slot, out_shape))
            busy = time.perf_counter() - t0
            batches += 1
            stats.add(spec.replica_id, "batches", 1.0)
            stats.add(spec.replica_id, "requests", 1.0)
            stats.add(spec.replica_id, "images", float(chunk.shape[0]))
            stats.add(spec.replica_id, "busy_seconds", busy)
            if engine is not None:
                _, census = _engine_census(engine)
                total, computed = _census_totals(census)
                stats.set(spec.replica_id, "sens_rows_total", float(total))
                stats.set(spec.replica_id, "sens_rows_computed", float(computed))
            stats.set(spec.replica_id, "heartbeat", time.time())
            if crash_after is not None and batches >= int(crash_after):
                _log.warning(
                    "replica_injected_crash",
                    replica=spec.replica_id,
                    after_batches=batches,
                )
                os._exit(CRASH_EXIT_CODE)
        elif kind == "census":
            densities, census = (
                ({}, {}) if engine is None else _engine_census(engine)
            )
            conn.send(("census", densities, census))
        elif kind in ("drain", "stop"):
            stats.set(spec.replica_id, "alive", 0.0)
            conn.send(("drained", spec.replica_id))
            _log.info("replica_drained", replica=spec.replica_id, batches=batches)
            break
        else:  # pragma: no cover - protocol error
            conn.send(("err", None, f"unknown control message {kind!r}"))


__all__ = ["ReplicaSpec", "replica_main", "POLL_SECONDS", "CRASH_EXIT_CODE"]
