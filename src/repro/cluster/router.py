"""The cluster router: deterministic sharding, work-aware placement.

:class:`ClusterPool` is the process-parallel sibling of
:class:`repro.serve.worker.WorkerPool`: the front end submits NumPy
batches and gets back a future of the stacked logits, but the work runs
on ``N`` replica *processes* (see :mod:`repro.cluster.worker`) instead
of GIL-bound threads.

Correctness contract — **bit-exact scaling**
    ODQ computes quantization ranges per inference batch, so *batch
    composition is part of the numerical contract*: the same image in a
    different batch yields (deterministically) different low-order
    bits.  The router therefore cuts every submission into fixed-size
    chunks of at most ``config.max_batch_size`` images — boundaries
    depend only on the submission itself, never on replica count, load,
    or timing — and replicas never coalesce chunks.  Any replica
    produces byte-identical logits for a given chunk (sessions rebuild
    deterministically from the same config), so ``--replicas 8`` equals
    ``--replicas 1`` byte for byte.  ``repro bench-serve`` gates on it.

Scheduling — **mask-aware placement**
    *Which* replica runs a chunk is load-dependent: placement equalizes
    predicted sensitive-row work (:func:`repro.cluster.sizing.place_chunks`),
    using the executor census the replicas publish through the shared
    stats block.  Submissions carrying an ``affinity`` key instead pin
    to the consistent-hash ring owner (session caches stay warm on one
    replica), falling over along the ring's preference order when the
    owner is draining or down.

Fault tolerance
    Each replica has exactly one router I/O thread that owns its control
    pipe.  When a replica dies, the thread re-queues that generation's
    in-flight chunks (the request arrays are still owned by the router,
    so nothing is lost), the supervisor respawns the process with
    bounded backoff, and the new generation re-runs them — identical
    chunks, identical bytes.  A replica that exhausts its respawn budget
    is marked failed and its queue is redistributed (or failed, if it
    was the last one).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.hashring import HashRing
from repro.cluster.shm import STATS_FIELDS
from repro.cluster.sizing import place_chunks, predicted_chunk_cost
from repro.cluster.supervisor import ReplicaHandle, Supervisor, slot_floats_for
from repro.obs import trace
from repro.obs.log import get_logger
from repro.serve.config import ServeConfig
from repro.serve.metrics import MetricsRegistry

_log = get_logger("repro.cluster.router")

#: Transport slots per replica: bounds how many chunks can be in flight
#: to one replica at once (back-pressure: further chunks queue in the
#: router, where they can still be re-placed on crash or drain).
DEFAULT_SLOTS = 4

#: I/O thread poll period on the control pipe (also the latency floor
#: for noticing new queued work while idle).
IO_POLL_SECONDS = 0.02

#: Counter fields mirrored from the shared stats block into /metrics.
_COUNTER_FIELDS = ("requests", "images", "batches", "errors")


class ClusterClosed(RuntimeError):
    """Raised into futures whose work could not complete at shutdown."""


class ReplicaError(RuntimeError):
    """An engine-side failure, confined to one submission."""


class _Submission:
    """One ``submit()`` call: output assembly + completion counting."""

    def __init__(self, total_images: int, chunk_count: int):
        self.total = total_images
        self.future: Future = Future()
        self._out: np.ndarray | None = None
        self._remaining = chunk_count
        self._failed = False
        self._lock = threading.Lock()

    def complete_chunk(self, offset: int, rows: np.ndarray) -> None:
        with self._lock:
            if self._failed:
                return
            if self._out is None:
                self._out = np.empty((self.total, rows.shape[1]), dtype=rows.dtype)
            self._out[offset : offset + rows.shape[0]] = rows
            self._remaining -= 1
            done = self._remaining == 0
            out = self._out
        if done and not self.future.cancelled():
            self.future.set_result(out)

    def fail(self, exc: BaseException) -> None:
        with self._lock:
            if self._failed:
                return
            self._failed = True
        if not self.future.cancelled():
            self.future.set_exception(exc)


@dataclass
class _Chunk:
    """One fixed-boundary slice of a submission, placed on one replica."""

    submission: _Submission
    arr: np.ndarray      #: (n, C, H, W) float64, router-owned
    offset: int          #: row offset inside the submission output
    #: Request trace context; rides the chunk through requeues so the
    #: trace id survives crash-respawn re-dispatch.
    ctx: "trace.TraceContext | None" = None

    @property
    def images(self) -> int:
        return self.arr.shape[0]


@dataclass
class _CensusProbe:
    """An in-band control request answered by the replica."""

    future: Future = field(default_factory=Future)


@dataclass
class _ReplicaIO:
    """Router-side state for one replica slot (lock-guarded)."""

    replica_id: int
    slots: int
    lock: threading.Lock = field(default_factory=threading.Lock)
    queue: deque = field(default_factory=deque)       #: _Chunk | _CensusProbe
    inflight: dict = field(default_factory=dict)      #: seq -> (_Chunk, slot)
    probes: deque = field(default_factory=deque)      #: outstanding _CensusProbe
    free_slots: list = field(default_factory=list)
    seq: int = 0
    state: str = "up"            #: up | draining | drained | failed | stopped
    restart_after_drain: bool = False
    drained: threading.Event = field(default_factory=threading.Event)
    thread: threading.Thread | None = None

    def __post_init__(self):
        self.free_slots = list(range(self.slots))

    def outstanding_cost(self, sensitive_ratio: float) -> float:
        """Predicted work queued + in flight (caller holds no lock)."""
        with self.lock:
            counts = [c.images for c in self.queue if isinstance(c, _Chunk)]
            counts += [c.images for c, _slot in self.inflight.values()]
        return sum(predicted_chunk_cost(n, sensitive_ratio) for n in counts)


class ClusterPool:
    """N replica processes behind a submit/future facade.

    Parameters
    ----------
    config:
        Serving configuration; ``config.replicas`` is the replica count
        and ``config.max_batch_size`` the deterministic chunk size.
    input_shape / num_classes:
        Per-image array geometry, used to size the shared-memory slots.
    metrics:
        Optional :class:`~repro.serve.metrics.MetricsRegistry`;
        :meth:`refresh_metrics` publishes per-replica labeled counters
        and busy-fraction gauges into it.
    collector:
        Optional :class:`~repro.obs.collector.TelemetryCollector`;
        replica ``("telemetry", payload)`` messages are ingested into it
        by the I/O threads as they arrive.
    """

    def __init__(
        self,
        config: ServeConfig,
        input_shape: tuple,
        num_classes: int,
        metrics: MetricsRegistry | None = None,
        collector=None,
        slots: int = DEFAULT_SLOTS,
        backoff_base: float = 0.25,
        backoff_cap: float = 4.0,
        max_respawns: int = 8,
    ):
        self.config = config
        self.replicas = config.replicas
        self.chunk_images = config.max_batch_size
        self.input_shape = tuple(input_shape)
        self.num_classes = int(num_classes)
        self.metrics = metrics
        self.collector = collector
        self.slots = slots
        self.supervisor = Supervisor(
            config,
            replicas=self.replicas,
            slots=slots,
            req_slot_floats=slot_floats_for(self.input_shape, self.chunk_images),
            res_slot_floats=self.chunk_images * self.num_classes,
            backoff_base=backoff_base,
            backoff_cap=backoff_cap,
            max_respawns=max_respawns,
            on_death=self._on_replica_death,
            on_failed=self._on_replica_failed,
        )
        self.ring = HashRing(range(self.replicas))
        self._replicas: dict[int, _ReplicaIO] = {
            rid: _ReplicaIO(replica_id=rid, slots=slots)
            for rid in range(self.replicas)
        }
        self._state_lock = threading.Lock()
        self._closed = False
        self._started = False
        self._started_at: float | None = None
        self.submitted = 0   #: submissions accepted
        self.dispatched = 0  #: chunks sent to replicas
        self.requeued = 0    #: chunks re-queued after a replica death
        # Metrics bookkeeping: totals folded in from dead generations,
        # last published cumulative values, last busy-fraction window.
        self._folded: dict[int, dict[str, float]] = {}
        self._published: dict[tuple, float] = {}
        self._busy_window: dict[int, tuple] = {}

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ClusterPool":
        if self._started:
            raise RuntimeError("cluster pool already started")
        self._started = True
        self._started_at = time.monotonic()
        self.supervisor.start()
        for rid, st in self._replicas.items():
            st.thread = threading.Thread(
                target=self._io_loop, args=(rid,), name=f"cluster-io-{rid}",
                daemon=True,
            )
            st.thread.start()
        return self

    def shutdown(self, timeout: float = 10.0) -> None:
        """Drain every replica, stop the processes, release the arenas."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        for st in self._replicas.values():
            if st.thread is not None:
                st.thread.join(timeout)
        self.supervisor.stop(timeout=max(1.0, timeout / 2))
        # Anything still queued (a replica failed mid-shutdown) fails
        # loudly rather than dangling.
        exc = ClusterClosed("cluster pool shut down with work still queued")
        for st in self._replicas.values():
            with st.lock:
                leftovers = [c for c in st.queue if isinstance(c, _Chunk)]
                leftovers += [c for c, _slot in st.inflight.values()]
                probes = [p for p in st.queue if isinstance(p, _CensusProbe)]
                probes += list(st.probes)
                st.queue.clear()
                st.inflight.clear()
                st.probes.clear()
            for chunk in leftovers:
                chunk.submission.fail(exc)
            for probe in probes:
                if not probe.future.done():
                    probe.future.set_exception(exc)

    def __enter__(self) -> "ClusterPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    @property
    def closed(self) -> bool:
        with self._state_lock:
            return self._closed

    def wait_ready(self, timeout: float = 60.0) -> bool:
        """Block until every replica's engine is built and serving.

        Readiness is the replica's ``alive`` flag in the shared stats
        block, set right before it starts consuming requests.  Returns
        False on timeout (some replica still building or crash-looping).
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            stats = self.supervisor.stats
            if stats is not None and all(
                row["alive"] >= 1.0 for row in stats.snapshot()
            ):
                return True
            time.sleep(0.05)
        return False

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        inputs: np.ndarray,
        affinity: str | None = None,
        ctx: "trace.TraceContext | None" = None,
    ) -> Future:
        """Enqueue a batch; returns a Future of its ``(n, classes)`` logits.

        The batch is cut into deterministic chunks of at most
        ``config.max_batch_size`` images (see the module docstring for
        why boundaries must not depend on load) which are placed onto
        replicas to equalize predicted sensitive-row work — or pinned to
        ``affinity``'s ring owner when given.  ``ctx`` (the request's
        :class:`~repro.obs.trace.TraceContext`) rides along on every
        chunk so replica-side spans parent under the request.
        """
        arr = np.ascontiguousarray(np.asarray(inputs, dtype=np.float64))
        if arr.ndim == 3:
            arr = arr[None]
        if arr.ndim != 4 or arr.shape[1:] != self.input_shape:
            raise ValueError(
                f"expected (n, {', '.join(map(str, self.input_shape))}) input, "
                f"got shape {arr.shape}"
            )
        if self.closed:
            raise ClusterClosed("cluster pool is shut down")

        n = arr.shape[0]
        offsets = list(range(0, n, self.chunk_images))
        submission = _Submission(n, len(offsets))
        chunks = [
            _Chunk(
                submission=submission,
                arr=arr[o : o + self.chunk_images],
                offset=o,
                ctx=ctx,
            )
            for o in offsets
        ]
        targets = self._place(chunks, affinity)
        with self._state_lock:
            self.submitted += 1
        for chunk, rid in zip(chunks, targets):
            st = self._replicas[rid]
            with st.lock:
                st.queue.append(chunk)
        return submission.future

    def _placeable(self) -> list[int]:
        """Replicas that can accept new work.

        Router state ``up`` covers both healthy replicas and crashed
        ones the supervisor is respawning (their queue survives the
        generation change); draining/drained/failed replicas accept
        nothing new.
        """
        return [
            rid for rid, st in self._replicas.items() if st.state == "up"
        ]

    def _place(self, chunks: list[_Chunk], affinity: str | None) -> list[int]:
        candidates = self._placeable()
        if not candidates:
            raise ClusterClosed("no live replicas")
        if affinity is not None:
            for rid in self.ring.preference(affinity):
                if rid in candidates:
                    return [rid] * len(chunks)
            return [candidates[0]] * len(chunks)
        ratio = self.sensitive_ratio()
        loads = [
            self._replicas[rid].outstanding_cost(ratio) for rid in candidates
        ]
        local = place_chunks([c.images for c in chunks], loads, ratio)
        return [candidates[i] for i in local]

    def sensitive_ratio(self) -> float:
        """Cluster-wide census ratio: rows computed / rows seen (1.0 cold)."""
        stats = self.supervisor.stats
        if stats is None:
            return 1.0
        total = computed = 0.0
        for row in stats.snapshot():
            total += row["sens_rows_total"]
            computed += row["sens_rows_computed"]
        return computed / total if total > 0 else 1.0

    # -- the per-replica I/O thread -----------------------------------------

    def _io_loop(self, rid: int) -> None:
        st = self._replicas[rid]
        while True:
            handle = self.supervisor.handle(rid)
            outcome = "crashed"
            try:
                outcome = self._pump(st, handle)
            except (EOFError, BrokenPipeError, ConnectionResetError, OSError):
                pass
            if outcome == "restart":
                # Graceful drain with restart: spawn the next generation
                # and keep pumping on this same thread.
                self._restart_after_drain(st)
                continue
            if st.state in ("drained", "stopped") or self.closed:
                return
            if not self._recover(st, handle):
                return

    def _pump(self, st: _ReplicaIO, handle: ReplicaHandle) -> str:
        """Drive one replica generation until drain, death, or shutdown.

        Returns ``"drained"`` after a terminal drain or ``"restart"``
        when the drain should be followed by the next generation; raises
        a pipe/EOF error when the replica died underneath us.
        """
        conn = handle.conn
        while True:
            if self.closed and st.state == "up":
                st.state = "draining"
            self._send_ready(st, conn)
            if st.state == "draining" and self._drain_idle(st):
                self._finish_drain(st, handle)
                return "restart" if st.restart_after_drain else "drained"
            if conn.poll(IO_POLL_SECONDS):
                self._on_message(st, conn.recv())
            elif not handle.process.is_alive():
                raise EOFError(f"replica {st.replica_id} died")

    def _send_ready(self, st: _ReplicaIO, conn) -> None:
        while True:
            with st.lock:
                if not st.queue:
                    return
                item = st.queue[0]
                if isinstance(item, _CensusProbe):
                    st.queue.popleft()
                    st.probes.append(item)
                    probe = item
                    chunk = slot = None
                else:
                    if not st.free_slots or st.state not in ("up", "draining"):
                        return
                    st.queue.popleft()
                    slot = st.free_slots.pop()
                    st.seq += 1
                    seq = st.seq
                    st.inflight[seq] = (item, slot)
                    chunk, probe = item, None
            if probe is not None:
                conn.send(("census",))
                continue
            ctx = chunk.ctx
            if ctx is not None and trace.enabled():
                # Dispatch hop: span under the request's context, then
                # rebase the wire context onto this span so replica-side
                # spans parent under the dispatch instead of skipping it.
                with trace.get_tracer().activate(ctx), trace.span(
                    "cluster.dispatch",
                    replica=st.replica_id,
                    batch=chunk.images,
                ) as sp:
                    shape = self.supervisor.req_arenas[st.replica_id].write(
                        slot, chunk.arr
                    )
                    wire = ctx.rebased(
                        sp.span_id, trace.process_lane()
                    ).to_wire()
                    conn.send(("req", seq, slot, shape, wire))
            else:
                shape = self.supervisor.req_arenas[st.replica_id].write(
                    slot, chunk.arr
                )
                conn.send(("req", seq, slot, shape, None))
            with self._state_lock:
                self.dispatched += 1

    def _on_message(self, st: _ReplicaIO, msg: tuple) -> None:
        kind = msg[0]
        if kind == "res":
            _, seq, slot, shape = msg
            rows = self.supervisor.res_arenas[st.replica_id].read(
                slot, tuple(shape)
            )
            with st.lock:
                chunk, _slot = st.inflight.pop(seq)
                st.free_slots.append(slot)
            chunk.submission.complete_chunk(chunk.offset, rows)
        elif kind == "err":
            _, seq, message = msg
            with st.lock:
                entry = st.inflight.pop(seq, None)
                if entry is not None:
                    st.free_slots.append(entry[1])
            if entry is not None:
                entry[0].submission.fail(ReplicaError(message))
        elif kind == "census":
            _, densities, census = msg
            with st.lock:
                probe = st.probes.popleft() if st.probes else None
            if probe is not None and not probe.future.done():
                probe.future.set_result((densities, census))
        elif kind == "telemetry":
            if self.collector is not None:
                self.collector.ingest(f"replica-{st.replica_id}", msg[1])
        elif kind == "ready":
            _log.debug("replica_ready", replica=st.replica_id, pid=msg[2])
        # ("drained", ...) is consumed inside _finish_drain.

    def _drain_idle(self, st: _ReplicaIO) -> bool:
        with st.lock:
            return not st.queue and not st.inflight and not st.probes

    def _finish_drain(self, st: _ReplicaIO, handle: ReplicaHandle) -> None:
        """All work done: ask the replica to exit and wait for its ack."""
        self.supervisor.mark_draining(st.replica_id)
        conn = handle.conn
        try:
            conn.send(("drain",))
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if conn.poll(0.05):
                    msg = conn.recv()
                    if msg[0] == "drained":
                        break
                    # The replica ships its final telemetry batch (and
                    # possibly late results) before the drained ack —
                    # route them instead of dropping them on the floor.
                    self._on_message(st, msg)
                elif not handle.process.is_alive():
                    break
        except (EOFError, BrokenPipeError, OSError):  # pragma: no cover
            pass
        handle.process.join(2.0)
        st.state = "drained"
        st.drained.set()

    def _restart_after_drain(self, st: _ReplicaIO) -> None:
        st.restart_after_drain = False
        self.supervisor.restart(st.replica_id)
        with st.lock:
            st.free_slots = list(range(st.slots))
            st.inflight.clear()
            st.state = "up"
        st.drained.clear()

    def _recover(self, st: _ReplicaIO, dead_handle: ReplicaHandle) -> bool:
        """After a crash: requeue this generation's work, await respawn.

        Returns True when a new generation is up (the I/O loop should
        continue), False when the replica is failed/stopped for good.
        """
        with st.lock:
            pending = [chunk for chunk, _slot in st.inflight.values()]
            st.inflight.clear()
            for chunk in reversed(pending):
                st.queue.appendleft(chunk)
            st.free_slots = list(range(st.slots))
            probes = list(st.probes)
            st.probes.clear()
        for probe in probes:
            if not probe.future.done():
                probe.future.set_exception(
                    ReplicaError(f"replica {st.replica_id} died mid-census")
                )
        if pending:
            with self._state_lock:
                self.requeued += len(pending)
            _log.warning(
                "chunks_requeued",
                replica=st.replica_id,
                chunks=len(pending),
            )
        while not self.closed:
            if st.state == "failed":
                self._redistribute(st)
                return False
            current = self.supervisor.handle(st.replica_id)
            if current is not dead_handle and current.alive:
                return True
            time.sleep(IO_POLL_SECONDS)
        return False

    def _redistribute(self, st: _ReplicaIO) -> None:
        """Move a failed replica's queue to survivors (or fail it)."""
        with st.lock:
            chunks = [c for c in st.queue if isinstance(c, _Chunk)]
            st.queue.clear()
        survivors = [
            rid for rid in self._placeable() if rid != st.replica_id
        ]
        if not survivors:
            exc = ClusterClosed(
                f"replica {st.replica_id} failed with no survivors"
            )
            for chunk in chunks:
                chunk.submission.fail(exc)
            return
        ratio = self.sensitive_ratio()
        loads = [self._replicas[r].outstanding_cost(ratio) for r in survivors]
        placement = place_chunks([c.images for c in chunks], loads, ratio)
        for chunk, local in zip(chunks, placement):
            target = self._replicas[survivors[local]]
            with target.lock:
                target.queue.append(chunk)
        if chunks:
            _log.warning(
                "chunks_redistributed",
                from_replica=st.replica_id,
                chunks=len(chunks),
                survivors=survivors,
            )

    # -- supervisor callbacks (monitor thread) -------------------------------

    def _on_replica_death(self, rid: int) -> None:
        """Fold the dead generation's counters before the row resets."""
        stats = self.supervisor.stats
        if stats is None:
            return
        snap = stats.snapshot(rid)
        folded = self._folded.setdefault(rid, dict.fromkeys(STATS_FIELDS, 0.0))
        for f in (*_COUNTER_FIELDS, "busy_seconds"):
            folded[f] += snap[f]

    def _on_replica_failed(self, rid: int) -> None:
        self._replicas[rid].state = "failed"
        try:
            self.ring.remove(rid)
        except KeyError:  # pragma: no cover - already removed
            pass

    # -- drain / restart API -------------------------------------------------

    def drain_replica(
        self, rid: int, restart: bool = False, timeout: float = 30.0
    ) -> bool:
        """Gracefully drain one replica (finish its queue, exit cleanly).

        With ``restart=True`` the replica's next generation is spawned
        after the drain and the replica returns to service (a rolling
        restart).  Returns True when the drain completed in time.
        """
        st = self._replicas[rid]
        with st.lock:
            if st.state != "up":
                raise RuntimeError(f"replica {rid} is {st.state}, cannot drain")
            st.restart_after_drain = restart
            st.state = "draining"
        ok = st.drained.wait(timeout)
        if restart and ok:
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline and st.state != "up":
                time.sleep(IO_POLL_SECONDS)
            return st.state == "up"
        return ok

    # -- introspection -------------------------------------------------------

    @property
    def alive_replicas(self) -> int:
        return sum(1 for h in self.supervisor.handles() if h.alive)

    def liveness(self) -> list[dict]:
        """Supervisor liveness augmented with router-side queue state."""
        rows = self.supervisor.liveness()
        for row in rows:
            st = self._replicas[row["replica"]]
            with st.lock:
                row["queued_chunks"] = sum(
                    1 for c in st.queue if isinstance(c, _Chunk)
                )
                row["inflight_chunks"] = len(st.inflight)
            row["router_state"] = st.state
        return rows

    def stats(self) -> list[dict]:
        """Per-replica cumulative stats rows (dead generations folded in)."""
        block = self.supervisor.stats
        if block is None:
            return []
        uptime = (
            time.monotonic() - self._started_at if self._started_at else 0.0
        )
        out = []
        for rid in range(self.replicas):
            row = block.snapshot(rid)
            folded = self._folded.get(rid, {})
            merged = {
                f: row[f] + folded.get(f, 0.0)
                for f in (*_COUNTER_FIELDS, "busy_seconds")
            }
            out.append({
                "name": f"replica-{rid}",
                "batches": int(merged["batches"]),
                "images": int(merged["images"]),
                "errors": int(merged["errors"]),
                "busy_seconds": round(merged["busy_seconds"], 4),
                "busy_fraction": round(
                    min(1.0, merged["busy_seconds"] / uptime) if uptime > 0
                    else 0.0,
                    4,
                ),
            })
        return out

    def refresh_metrics(self) -> None:
        """Publish per-replica labeled counters/gauges into the registry.

        Counter values are *deltas* against the last publish (so the
        registry counters stay monotonic across replica respawns, whose
        stats rows restart from zero — dead generations are folded into
        ``_folded`` by the supervisor's death callback).
        """
        if self.metrics is None or self.supervisor.stats is None:
            return
        m = self.metrics
        now = time.monotonic()
        for rid in range(self.replicas):
            row = self.supervisor.stats.snapshot(rid)
            folded = self._folded.get(rid, {})
            for f in _COUNTER_FIELDS:
                cum = row[f] + folded.get(f, 0.0)
                key = (rid, f)
                delta = cum - self._published.get(key, 0.0)
                if delta > 0:
                    m.counter(
                        f"replica_{f}_total@replica={rid}",
                        f"{f} completed by replica {rid} (all generations)",
                    ).inc(int(round(delta)))
                    self._published[key] = cum
            busy_cum = row["busy_seconds"] + folded.get("busy_seconds", 0.0)
            last_busy, last_t = self._busy_window.get(
                rid, (0.0, self._started_at or now)
            )
            window = now - last_t
            frac = (busy_cum - last_busy) / window if window > 0.05 else None
            if frac is not None:
                m.gauge(
                    f"replica_busy_fraction@replica={rid}",
                    "share of the last scrape window spent inferring",
                ).set(max(0.0, min(1.0, frac)))
                self._busy_window[rid] = (busy_cum, now)
            handle = self.supervisor.handle(rid)
            m.gauge(
                f"replica_up@replica={rid}",
                "1 while the replica process is alive",
            ).set(1.0 if handle.alive else 0.0)
        m.gauge("replicas_alive", "replica processes currently alive").set(
            self.alive_replicas
        )
        m.gauge(
            "cluster_sensitive_ratio",
            "cluster-wide sensitive rows computed / rows seen",
        ).set(self.sensitive_ratio())

    def exec_census(self, timeout: float = 5.0) -> dict:
        """Merged per-layer dispatch census across live replicas.

        Sends an in-band census probe to every live replica and sums the
        answers — same shape as
        :meth:`repro.serve.worker.WorkerPool.exec_census`.
        """
        probes: list[tuple[int, _CensusProbe]] = []
        for rid, st in self._replicas.items():
            if st.state != "up":
                continue
            probe = _CensusProbe()
            with st.lock:
                st.queue.append(probe)
            probes.append((rid, probe))
        merged: dict[str, dict] = {}
        for rid, probe in probes:
            try:
                _densities, census = probe.future.result(timeout=timeout)
            except Exception:  # noqa: BLE001 — a dead replica just drops out
                continue
            for layer, c in census.items():
                slot = merged.setdefault(
                    layer,
                    {"rows_total": 0, "rows_computed": 0, "path_calls": {}},
                )
                slot["rows_total"] += c["rows_total"]
                slot["rows_computed"] += c["rows_computed"]
                for path, calls in c["path_calls"].items():
                    slot["path_calls"][path] = (
                        slot["path_calls"].get(path, 0) + calls
                    )
        return merged


__all__ = [
    "ClusterPool",
    "ClusterClosed",
    "ReplicaError",
    "DEFAULT_SLOTS",
    "IO_POLL_SECONDS",
]
