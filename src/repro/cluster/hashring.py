"""Consistent-hash ring: stable session → replica assignment.

Sessions (client affinity keys, or ``(model, scheme, threshold)`` model
sessions when several are hosted) are routed to replicas through a
consistent-hash ring so that per-session state — the per-key
:class:`~repro.serve.session.ModelSession` cache, sweep column caches,
warmed bit-plane packs — stays resident on one replica instead of being
rebuilt everywhere.  The classic guarantee (Karger et al.) is what the
tests pin: adding or removing one of *N* replicas moves at most ~1/N of
the key space, because only the virtual-node arcs owned by the changed
replica are reassigned.

The ring hashes with ``blake2b`` (seeded, process-independent — Python's
builtin ``hash`` is salted per process and would scramble assignments
across restarts) and places :data:`DEFAULT_VNODES` virtual nodes per
replica so ownership arcs are evenly sized even for small replica
counts.
"""

from __future__ import annotations

import bisect
from hashlib import blake2b
from typing import Hashable, Iterable

#: Virtual nodes per replica.  64 keeps the max/min arc-ownership ratio
#: within ~1.3x for 2-8 replicas while the ring stays tiny (N*64 points).
DEFAULT_VNODES = 64


def stable_hash(key: str, *, salt: str = "") -> int:
    """64-bit process-independent hash of ``key`` (blake2b digest head)."""
    h = blake2b(key.encode("utf-8"), digest_size=8, salt=salt.encode()[:16])
    return int.from_bytes(h.digest(), "big")


class HashRing:
    """Consistent-hash ring over replica ids.

    Not thread-safe by itself: the router mutates it only under its own
    state lock (membership changes are rare — drain, crash, respawn).
    """

    def __init__(
        self, nodes: Iterable[Hashable] = (), vnodes: int = DEFAULT_VNODES
    ):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: list[int] = []          #: sorted vnode hashes
        self._owner: dict[int, Hashable] = {}  #: vnode hash -> replica id
        for node in nodes:
            self.add(node)

    # -- membership ---------------------------------------------------------

    def _vnode_hashes(self, node: Hashable) -> list[int]:
        return [
            stable_hash(f"{node!r}#vn{i}", salt="ring") for i in range(self.vnodes)
        ]

    def add(self, node: Hashable) -> None:
        if node in self.nodes():
            raise ValueError(f"node {node!r} already on the ring")
        for h in self._vnode_hashes(node):
            # blake2b collisions across distinct vnode labels are not a
            # practical concern; last-write-wins keeps this total anyway.
            if h not in self._owner:
                bisect.insort(self._points, h)
            self._owner[h] = node

    def remove(self, node: Hashable) -> None:
        mine = [h for h, n in self._owner.items() if n == node]
        if not mine:
            raise KeyError(f"node {node!r} not on the ring")
        for h in mine:
            del self._owner[h]
            idx = bisect.bisect_left(self._points, h)
            if idx < len(self._points) and self._points[idx] == h:
                del self._points[idx]

    def nodes(self) -> set:
        return set(self._owner.values())

    def __len__(self) -> int:
        return len(self.nodes())

    def __contains__(self, node: Hashable) -> bool:
        return node in self.nodes()

    # -- assignment ---------------------------------------------------------

    def assign(self, key: str) -> Hashable:
        """The replica owning ``key`` (first vnode clockwise of its hash)."""
        if not self._points:
            raise LookupError("ring is empty")
        h = stable_hash(key, salt="key")
        idx = bisect.bisect_right(self._points, h) % len(self._points)
        return self._owner[self._points[idx]]

    def preference(self, key: str, k: int | None = None) -> list:
        """Distinct replicas in clockwise order from ``key`` (failover list).

        ``preference(key)[0] == assign(key)``; subsequent entries are the
        replicas that would inherit the key if earlier ones left the ring
        — the router uses them when the primary is draining or down.
        """
        if not self._points:
            raise LookupError("ring is empty")
        want = len(self.nodes()) if k is None else k
        h = stable_hash(key, salt="key")
        start = bisect.bisect_right(self._points, h)
        ordered: list = []
        for i in range(len(self._points)):
            node = self._owner[self._points[(start + i) % len(self._points)]]
            if node not in ordered:
                ordered.append(node)
                if len(ordered) >= want:
                    break
        return ordered


__all__ = ["HashRing", "stable_hash", "DEFAULT_VNODES"]
