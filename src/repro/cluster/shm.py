"""Shared-memory transport primitives for the replica tier.

Two building blocks, both thin disciplined wrappers over
``multiprocessing.shared_memory.SharedMemory``:

* :class:`ShmArena` — a slotted float64 arena.  The router writes a
  request chunk into a free slot as a plain NumPy view (one memcpy, no
  pickling); the replica process attaches the same segment by name and
  reads the slot zero-copy.  Only *slot indices and shapes* travel over
  the control :class:`~multiprocessing.connection.Connection` — array
  payloads never do.
* :class:`ShmStatsBlock` — a tiny per-replica table of float64 fields
  (heartbeat, request/image/error counters, busy seconds, sensitive-row
  census).  Each replica writes **only its own row** (single-writer per
  row, so no cross-process lock is needed — float64 stores on aligned
  memory are atomic on every platform CPython runs on); the router reads
  all rows for ``/healthz``, ``/metrics``, and work-aware placement.

Lifecycle discipline (the THR204 invariant): every ``SharedMemory``
ends up owned by a :class:`ShmSegment`, which pairs ``close()`` (unmap
this process's view) with ``unlink()`` (destroy the segment — creator
only) and supports ``with``.  Replica processes only ever *attach*
(``name=...``) and only ever ``close()``; the creating router process
is the sole unlinker.  This stays tracker-clean because replicas are
``multiprocessing`` spawn children and therefore share the router's
:mod:`multiprocessing.resource_tracker`: the child's attach-register is
an idempotent re-add of a name the creator already registered, and the
creator's ``unlink()`` removes it exactly once.  (Unregistering on
attach — the usual bpo-39959 workaround for *unrelated* attacher
processes — would be wrong here: with a shared tracker it deletes the
creator's entry and the later ``unlink`` double-unregisters.)
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

_FLOAT = np.float64
_ITEMSIZE = np.dtype(_FLOAT).itemsize


class ShmSegment:
    """Owns one ``SharedMemory`` segment; pairs create/attach with cleanup.

    ``close()`` is idempotent and safe to call from ``finally`` blocks;
    ``unlink()`` must be called exactly once, by the creator.
    """

    def __init__(self, nbytes: int | None = None, name: str | None = None):
        if (nbytes is None) == (name is None):
            raise ValueError("pass exactly one of nbytes (create) or name (attach)")
        self.owner = name is None
        if self.owner:
            self._shm = shared_memory.SharedMemory(create=True, size=int(nbytes))
        else:
            self._shm = shared_memory.SharedMemory(name=name)
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def buf(self) -> memoryview:
        return self._shm.buf

    def close(self) -> None:
        """Release this process's mapping (idempotent)."""
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (creator only; call after ``close``)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already destroyed
            pass

    def __enter__(self) -> "ShmSegment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self.owner:
            self.unlink()


class ShmArena:
    """A slotted float64 array arena in one shared-memory segment.

    ``slots`` fixed-size slots of ``slot_floats`` float64 each.  Slot
    *allocation* is the caller's job (the router keeps a per-replica
    free list); the arena only does bounds-checked views and writes.
    """

    def __init__(
        self, slots: int, slot_floats: int, name: str | None = None
    ):
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if slot_floats < 1:
            raise ValueError("slot_floats must be >= 1")
        self.slots = slots
        self.slot_floats = slot_floats
        nbytes = slots * slot_floats * _ITEMSIZE
        self._segment = (
            ShmSegment(nbytes=nbytes) if name is None else ShmSegment(name=name)
        )
        self._array = np.ndarray(
            (slots, slot_floats), dtype=_FLOAT, buffer=self._segment.buf
        )

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def owner(self) -> bool:
        return self._segment.owner

    def view(self, slot: int, shape: tuple) -> np.ndarray:
        """A zero-copy ndarray view of ``shape`` over slot ``slot``."""
        n = int(np.prod(shape, dtype=np.int64))
        if not (0 <= slot < self.slots):
            raise IndexError(f"slot {slot} out of range [0, {self.slots})")
        if n > self.slot_floats:
            raise ValueError(
                f"shape {tuple(shape)} needs {n} floats; slot holds "
                f"{self.slot_floats}"
            )
        return self._array[slot, :n].reshape(shape)

    def write(self, slot: int, arr: np.ndarray) -> tuple:
        """Copy ``arr`` (as float64) into ``slot``; returns its shape."""
        src = np.ascontiguousarray(arr, dtype=_FLOAT)
        self.view(slot, src.shape)[...] = src
        return src.shape

    def read(self, slot: int, shape: tuple) -> np.ndarray:
        """An owning copy of the slot contents (detached from the arena)."""
        return self.view(slot, shape).copy()

    def close(self) -> None:
        self._segment.close()

    def unlink(self) -> None:
        self._segment.unlink()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self.owner:
            self.unlink()


#: Per-replica stats fields, one float64 each, in row order.  Counters
#: are cumulative over the replica's lifetime (reset on respawn — the
#: router folds finished generations into its own totals).
STATS_FIELDS = (
    "pid",
    "alive",              #: 1.0 while the replica loop runs, 0.0 after drain
    "heartbeat",          #: time.time() of the last loop iteration
    "requests",
    "images",
    "batches",
    "errors",
    "busy_seconds",
    "sens_rows_total",    #: sensitive-row census: rows seen ...
    "sens_rows_computed", #: ... vs rows actually computed (sparse path)
)

_FIELD_INDEX = {f: i for i, f in enumerate(STATS_FIELDS)}


class ShmStatsBlock:
    """``replicas x len(STATS_FIELDS)`` float64 table in shared memory.

    Single-writer-per-row: replica *i* (and only replica *i*) writes row
    *i*; the router reads every row.  No locks — each field is one
    aligned float64 store, and the consumers tolerate torn *rows* (a
    heartbeat from one iteration with counters from the next is fine).
    """

    def __init__(self, replicas: int, name: str | None = None):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        nbytes = replicas * len(STATS_FIELDS) * _ITEMSIZE
        self._segment = (
            ShmSegment(nbytes=nbytes) if name is None else ShmSegment(name=name)
        )
        self._table = np.ndarray(
            (replicas, len(STATS_FIELDS)), dtype=_FLOAT, buffer=self._segment.buf
        )
        if self._segment.owner:
            self._table[...] = 0.0

    @property
    def name(self) -> str:
        return self._segment.name

    def row(self, replica: int) -> np.ndarray:
        """The live (shared) row for ``replica`` — writer-side view."""
        return self._table[replica]

    def set(self, replica: int, field: str, value: float) -> None:
        self._table[replica, _FIELD_INDEX[field]] = value

    def get(self, replica: int, field: str) -> float:
        return float(self._table[replica, _FIELD_INDEX[field]])

    def add(self, replica: int, field: str, delta: float) -> None:
        """Single-writer increment (not atomic across *processes*; each
        row has exactly one writer so this is safe by construction)."""
        self._table[replica, _FIELD_INDEX[field]] += delta

    def snapshot(self, replica: int | None = None) -> list[dict] | dict:
        """Detached dict copies: one row, or all rows in replica order."""
        if replica is not None:
            row = self._table[replica].copy()
            return {f: float(row[i]) for i, f in enumerate(STATS_FIELDS)}
        rows = self._table.copy()
        return [
            {f: float(rows[r, i]) for i, f in enumerate(STATS_FIELDS)}
            for r in range(self.replicas)
        ]

    def close(self) -> None:
        self._segment.close()

    def unlink(self) -> None:
        self._segment.unlink()

    def __enter__(self) -> "ShmStatsBlock":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self._segment.owner:
            self.unlink()


__all__ = [
    "ShmSegment",
    "ShmArena",
    "ShmStatsBlock",
    "STATS_FIELDS",
]
