"""Quantization substrate: uniform quantizers, DoReFa QAT, bit-plane split."""

from repro.quant.uniform import (
    QParams,
    symmetric_qparams,
    affine_qparams,
    quantize,
    dequantize,
    fake_quantize,
    quantization_error_bound,
)
from repro.quant.observer import Observer, MinMaxObserver, PercentileObserver
from repro.quant.bitsplit import BitPlanes, split_planes, cross_terms, predictor_term
from repro.quant.fold import fold_conv_bn, fold_batchnorm
from repro.quant.dorefa import (
    quantize_k,
    dorefa_weight_transform,
    fake_quant_weight,
    fake_quant_act,
    QuantConv2d,
    QuantLinear,
    quantize_model_inplace,
)

__all__ = [
    "QParams",
    "symmetric_qparams",
    "affine_qparams",
    "quantize",
    "dequantize",
    "fake_quantize",
    "quantization_error_bound",
    "Observer",
    "MinMaxObserver",
    "PercentileObserver",
    "BitPlanes",
    "split_planes",
    "cross_terms",
    "predictor_term",
    "fold_conv_bn",
    "fold_batchnorm",
    "quantize_k",
    "dorefa_weight_transform",
    "fake_quant_weight",
    "fake_quant_act",
    "QuantConv2d",
    "QuantLinear",
    "quantize_model_inplace",
]
