"""Bit-plane decomposition of quantized operands (the paper's Eq. 3).

An INT4 operand ``q`` is split as ``q = (q_h << N_LBS) + q_l`` where
``q_h`` is the 2-bit high-order slice used by the sensitivity predictor and
``q_l`` the 2-bit low-order slice.  A product of two decomposed operands
expands into the four cross terms of Eq. 3:

    q_a * q_b = (q_ah*q_bh) << 2*N_LBS
              + (q_ah*q_bl) << N_LBS
              + (q_al*q_bh) << N_LBS
              +  q_al*q_bl

The identity is exact for both unsigned activations and signed weights
because :func:`repro.utils.bitops.split_bits` uses floor semantics for the
signed high slice (see that module's docstring); a hypothesis test in
``tests/quant/test_bitsplit.py`` checks it for the whole INT4 range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ODQ_LOW_BITS
from repro.quant.uniform import QParams
from repro.utils.bitops import merge_bits, split_bits


@dataclass
class BitPlanes:
    """A quantized tensor split into high/low bit planes.

    ``high`` is the predictor-visible slice; ``low`` the remainder.  The
    original integer tensor is ``(high << low_bits) + low``.
    """

    high: np.ndarray
    low: np.ndarray
    low_bits: int
    qparams: QParams

    def recompose(self) -> np.ndarray:
        return merge_bits(self.high, self.low, self.low_bits)

    @property
    def high_shift(self) -> int:
        """Left shift to apply to a high x high product: ``2 * low_bits``."""
        return 2 * self.low_bits


def split_planes(
    q: np.ndarray,
    qp: QParams,
    low_bits: int = ODQ_LOW_BITS,
    mode: str = "sign_magnitude",
) -> BitPlanes:
    """Split an integer tensor quantized with ``qp`` into bit planes.

    For signed operands the default is the sign-magnitude convention so
    the high plane is an unbiased magnitude estimate (see
    :func:`repro.utils.bitops.split_bits` for why this matters to the
    sensitivity predictor); pass ``mode="floor"`` for two's complement.
    """
    high, low = split_bits(
        np.asarray(q, dtype=np.int64), low_bits, signed=qp.signed, mode=mode
    )
    return BitPlanes(high=high, low=low, low_bits=low_bits, qparams=qp)


def cross_terms(
    a: BitPlanes, b: BitPlanes
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The four elementwise Eq.-3 cross terms, already shifted.

    Returned in paper order: (HH << 2N, HL << N, LH << N, LL); their sum is
    exactly ``a.recompose() * b.recompose()``.
    """
    if a.low_bits != b.low_bits:
        raise ValueError("operands must share the same low-bit width")
    n = a.low_bits
    hh = (a.high * b.high) << (2 * n)
    hl = (a.high * b.low) << n
    lh = (a.low * b.high) << n
    ll = a.low * b.low
    return hh, hl, lh, ll


def predictor_term(a: BitPlanes, b: BitPlanes) -> np.ndarray:
    """Only the dominant HH term (what the sensitivity predictor computes)."""
    return (a.high * b.high) << (2 * a.low_bits)


__all__ = ["BitPlanes", "split_planes", "cross_terms", "predictor_term"]
