"""Range observers for post-training calibration.

An observer watches tensors flowing through a point in the network during
calibration passes, then freezes into :class:`~repro.quant.uniform.QParams`.
The quantized inference pipelines (``repro.core.pipeline``) install one
observer per convolution input.
"""

from __future__ import annotations

import numpy as np

from repro.quant.uniform import QParams, affine_qparams, symmetric_qparams


class Observer:
    """Base observer interface."""

    def observe(self, x: np.ndarray) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def qparams(self, bits: int, signed: bool) -> QParams:  # pragma: no cover
        raise NotImplementedError


class MinMaxObserver(Observer):
    """Tracks the running min/max over all observed batches."""

    def __init__(self):
        self.lo = np.inf
        self.hi = -np.inf
        self.count = 0

    def observe(self, x: np.ndarray) -> None:
        x = np.asarray(x)
        if x.size == 0:
            return
        self.lo = min(self.lo, float(x.min()))
        self.hi = max(self.hi, float(x.max()))
        self.count += x.size

    def qparams(self, bits: int, signed: bool) -> QParams:
        if self.count == 0:
            raise RuntimeError("observer has seen no data; run calibration first")
        if signed:
            return symmetric_qparams(max(abs(self.lo), abs(self.hi)), bits)
        return affine_qparams(self.lo, self.hi, bits)


class PercentileObserver(Observer):
    """Clips the range to a percentile of observed magnitudes.

    More robust than min/max against activation outliers at very low bit
    widths (the INT4 regime ODQ operates in), at the cost of saturating
    the tail.  Keeps a bounded reservoir sample so memory stays constant.
    """

    def __init__(self, percentile: float = 99.9, reservoir: int = 2**16, seed: int = 0):
        if not 50.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (50, 100]")
        self.percentile = percentile
        self.reservoir_size = reservoir
        self._samples: list[np.ndarray] = []
        self._n_held = 0
        self.count = 0
        self._rng = np.random.default_rng(seed)

    def observe(self, x: np.ndarray) -> None:
        flat = np.asarray(x, dtype=np.float64).reshape(-1)
        self.count += flat.size
        if self._n_held + flat.size <= self.reservoir_size:
            self._samples.append(flat.copy())
            self._n_held += flat.size
        else:
            take = self._rng.choice(
                flat.size, size=min(self.reservoir_size // 4, flat.size), replace=False
            )
            self._samples.append(flat[take])
            self._n_held += take.size

    def _pool(self) -> np.ndarray:
        if not self._samples:
            raise RuntimeError("observer has seen no data; run calibration first")
        return np.concatenate(self._samples)

    def qparams(self, bits: int, signed: bool) -> QParams:
        pool = self._pool()
        if pool.size == 0:
            # ``_pool`` raises when no batch was observed at all, but a
            # reservoir of zero-size batches still concatenates to an
            # empty pool — and ``np.percentile`` raises on that.
            raise RuntimeError("observer holds no samples; run calibration first")
        if signed:
            mag = float(np.percentile(np.abs(pool), self.percentile))
            return symmetric_qparams(mag, bits)
        lo = float(np.percentile(pool, 100.0 - self.percentile))
        hi = float(np.percentile(pool, self.percentile))
        return affine_qparams(lo, hi, bits)


__all__ = ["Observer", "MinMaxObserver", "PercentileObserver"]
