"""Batch-normalization folding.

Accelerator deployments (including the paper's: the ODQ hardware has no
floating-point BN unit) fold eval-mode batch norm into the preceding
convolution:

    BN(conv(x, W) + b) == conv(x, W * g) + (b * g + h),
    g = gamma / sqrt(var + eps),  h = beta - mean * g   (per out-channel)

Folding matters doubly for ODQ: the conv output *is* then the pre-ReLU
activation, so the sensitivity threshold sees values whose scale is
normalized by BN (making the paper's single per-model threshold
meaningful) and whose negative half is largely ReLU-dead (making coarse
partial values harmless for most insensitive outputs).

Two structural patterns are folded:

* a ``Conv2d`` immediately followed by a ``BatchNorm2d`` inside a
  ``Sequential``;
* sibling attributes ``convN`` / ``bnN`` on the same module (the ResNet
  block layout).

Pre-activation networks (DenseNet's BN-ReLU-conv) have no conv->BN edge
and are left unchanged.
"""

from __future__ import annotations


from repro.nn.layers import BatchNorm2d, Conv2d, Identity, Module, Sequential
from repro.nn.tensor import Tensor


def fold_conv_bn(conv: Conv2d, bn: BatchNorm2d) -> Conv2d:
    """Return a new Conv2d equivalent to ``bn(conv(.))`` at eval time."""
    if bn.num_features != conv.out_channels:
        raise ValueError(
            f"BN features {bn.num_features} != conv out channels {conv.out_channels}"
        )
    scale, shift = bn.fold_affine()
    folded = Conv2d(
        conv.in_channels,
        conv.out_channels,
        conv.kernel_size,
        conv.stride,
        conv.padding,
        bias=True,
    )
    folded.weight = Tensor(
        conv.weight.data * scale.reshape(-1, 1, 1, 1), requires_grad=True
    )
    bias = conv.bias.data if conv.bias is not None else 0.0
    folded.bias = Tensor(bias * scale + shift, requires_grad=True)
    return folded


def fold_batchnorm(model: Module) -> int:
    """Fold every conv->BN edge in ``model`` in place; returns fold count.

    The model must be in eval mode (folding bakes in running statistics).
    """
    if model.training:
        raise RuntimeError("call model.eval() before folding batch norm")
    folds = 0

    for _, module in list(model.named_modules()):
        # Pattern 1: adjacent entries of a Sequential.
        if isinstance(module, Sequential):
            layers = module.layers
            for i in range(len(layers) - 1):
                if isinstance(layers[i], Conv2d) and isinstance(
                    layers[i + 1], BatchNorm2d
                ):
                    layers[i] = fold_conv_bn(layers[i], layers[i + 1])
                    layers[i + 1] = Identity()
                    folds += 1
        # Pattern 2: convN / bnN sibling attributes (ResNet blocks).  Only
        # folded when the BN matches the conv's *output* channels and the
        # conv attribute was defined before the BN (post-activation order;
        # pre-activation blocks like DenseNet define BN first and must be
        # left alone).
        names = list(module.__dict__)
        for name in names:
            if not name.startswith("conv"):
                continue
            suffix = name[len("conv"):]
            bn_name = f"bn{suffix}"
            conv = getattr(module, name, None)
            bn = getattr(module, bn_name, None)
            if not (isinstance(conv, Conv2d) and isinstance(bn, BatchNorm2d)):
                continue
            if type(conv) is not Conv2d:
                continue
            if bn.num_features != conv.out_channels:
                continue
            if bn_name in names and names.index(bn_name) < names.index(name):
                continue  # BN precedes conv: pre-activation layout
            setattr(module, name, fold_conv_bn(conv, bn))
            setattr(module, bn_name, Identity())
            folds += 1
    return folds


__all__ = ["fold_conv_bn", "fold_batchnorm"]
