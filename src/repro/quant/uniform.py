"""Uniform affine/symmetric quantizers.

Everything in the ODQ/DRQ cores operates on uniformly-quantized integers:

* weights  -> *symmetric signed* quantization (zero-point 0), because the
  Eq.-3 bit-plane algebra needs weights representable as
  ``scale * q`` with ``q`` a signed integer;
* activations -> *affine unsigned* quantization, matching DoReFa's
  clipped-[0,1] activations (post-ReLU feature maps are non-negative).

A quantized tensor is represented as ``(q, QParams)`` with the dequantized
value ``scale * (q - zero_point)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.bitops import int_range


@dataclass(frozen=True)
class QParams:
    """Quantization parameters for one tensor.

    Attributes
    ----------
    scale:
        Positive step size between adjacent integer levels.
    zero_point:
        Integer subtracted before scaling; 0 for symmetric quantization.
    bits:
        Total integer width.
    signed:
        Whether the integer grid is two's-complement signed.
    """

    scale: float
    zero_point: int
    bits: int
    signed: bool

    def __post_init__(self):
        if self.scale <= 0 or not np.isfinite(self.scale):
            raise ValueError(f"scale must be positive/finite, got {self.scale}")
        lo, hi = int_range(self.bits, self.signed)
        if not lo <= self.zero_point <= hi:
            raise ValueError("zero_point outside representable range")

    @property
    def qmin(self) -> int:
        return int_range(self.bits, self.signed)[0]

    @property
    def qmax(self) -> int:
        return int_range(self.bits, self.signed)[1]


def symmetric_qparams(max_abs: float, bits: int) -> QParams:
    """Symmetric signed quantizer covering ``[-max_abs, max_abs]``."""
    max_abs = float(max_abs)
    if max_abs <= 0 or not np.isfinite(max_abs):
        max_abs = 1e-8
    qmax = int_range(bits, signed=True)[1]
    return QParams(scale=max_abs / qmax, zero_point=0, bits=bits, signed=True)


def affine_qparams(lo: float, hi: float, bits: int) -> QParams:
    """Unsigned affine quantizer covering ``[lo, hi]`` (lo <= 0 <= hi forced).

    The range is stretched to include 0 so ReLU outputs quantize exactly,
    the standard practice for activation quantization.
    """
    lo, hi = float(min(lo, 0.0)), float(max(hi, 0.0))
    if hi - lo <= 0 or not np.isfinite(hi - lo):
        hi = lo + 1e-8
    levels = int_range(bits, signed=False)[1]
    scale = (hi - lo) / levels
    zero_point = int(round(-lo / scale))
    zero_point = int(np.clip(zero_point, 0, levels))
    return QParams(scale=scale, zero_point=zero_point, bits=bits, signed=False)


def quantize(x: np.ndarray, qp: QParams) -> np.ndarray:
    """Quantize a float array to the integer grid of ``qp`` (with clamping)."""
    q = np.round(np.asarray(x, dtype=np.float64) / qp.scale) + qp.zero_point
    return np.clip(q, qp.qmin, qp.qmax).astype(np.int64)


def dequantize(q: np.ndarray, qp: QParams) -> np.ndarray:
    """Map integers back to the real line: ``scale * (q - zero_point)``."""
    return (np.asarray(q, dtype=np.float64) - qp.zero_point) * qp.scale


def fake_quantize(x: np.ndarray, qp: QParams) -> np.ndarray:
    """Quantize-then-dequantize (the value a quantized pipeline would see)."""
    return dequantize(quantize(x, qp), qp)


def quantization_error_bound(qp: QParams) -> float:
    """Worst-case rounding error for in-range values: half a step."""
    return 0.5 * qp.scale


__all__ = [
    "QParams",
    "symmetric_qparams",
    "affine_qparams",
    "quantize",
    "dequantize",
    "fake_quantize",
    "quantization_error_bound",
]
