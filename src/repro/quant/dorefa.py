"""DoReFa-Net quantizers with straight-through-estimator training support.

The paper builds its ODQ system "leveraging DoReFa-Net" [27]: networks are
trained with k-bit weights and activations, then ODQ runs dynamic
mixed-precision inference on top.  This module provides

* the DoReFa weight transform  ``w -> 2 * Q_k(tanh(w)/(2 max|tanh(w)|) + 1/2) - 1``
* the DoReFa activation transform  ``a -> Q_k(clip(a, 0, 1))``
* autograd-compatible fake-quant ops (STE: identity gradient inside the
  clipping range), and
* :func:`quantize_model_inplace`, which swaps every ``Conv2d``/``Linear``
  in a model for a quantization-aware twin.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Conv2d, Linear, Module, swap_modules
from repro.nn.tensor import Tensor


def quantize_k(x: np.ndarray, bits: int) -> np.ndarray:
    """DoReFa's Q_k: round a [0,1] value to ``2**bits - 1`` uniform levels."""
    levels = float(2**bits - 1)
    return np.round(np.clip(x, 0.0, 1.0) * levels) / levels


def dorefa_weight_transform(w: np.ndarray, bits: int) -> np.ndarray:
    """Forward value of DoReFa weight quantization (output in [-1, 1])."""
    t = np.tanh(w)
    denom = 2.0 * max(float(np.max(np.abs(t))), 1e-12)
    return 2.0 * quantize_k(t / denom + 0.5, bits) - 1.0


def fake_quant_weight(w: Tensor, bits: int) -> Tensor:
    """STE fake-quantized weights.

    Forward: DoReFa transform.  Backward: straight-through — the gradient
    passes unchanged, which is DoReFa's training rule for weights.
    """
    if bits >= 32:
        return w
    out_data = dorefa_weight_transform(w.data, bits)

    def backward(g: np.ndarray) -> None:
        w._accumulate(g)

    return Tensor.from_op(out_data, (w,), backward, "fake_quant_w")


def fake_quant_act(a: Tensor, bits: int) -> Tensor:
    """STE fake-quantized activations.

    Forward: clip to [0, 1] then Q_k.  Backward: identity inside the clip
    range, zero outside (the clip's own subgradient).
    """
    if bits >= 32:
        return a
    mask = (a.data >= 0.0) & (a.data <= 1.0)
    out_data = quantize_k(a.data, bits)

    def backward(g: np.ndarray) -> None:
        a._accumulate(g * mask)

    return Tensor.from_op(out_data, (a,), backward, "fake_quant_a")


class QuantConv2d(Conv2d):
    """Conv2d whose weights (and optionally input activations) are
    fake-quantized during the forward pass, DoReFa-style."""

    def __init__(self, *args, w_bits: int = 4, a_bits: int = 4, quant_input: bool = True, **kwargs):
        super().__init__(*args, **kwargs)
        self.w_bits = w_bits
        self.a_bits = a_bits
        self.quant_input = quant_input

    @classmethod
    def from_conv(cls, conv: Conv2d, w_bits: int, a_bits: int, quant_input: bool = True) -> "QuantConv2d":
        q = cls(
            conv.in_channels,
            conv.out_channels,
            conv.kernel_size,
            conv.stride,
            conv.padding,
            bias=conv.bias is not None,
            w_bits=w_bits,
            a_bits=a_bits,
            quant_input=quant_input,
        )
        q.weight = conv.weight
        q.bias = conv.bias
        return q

    def forward(self, x: Tensor) -> Tensor:
        if self.quant_input:
            x = fake_quant_act(x, self.a_bits)
        w = fake_quant_weight(self.weight, self.w_bits)
        return F.conv2d(x, w, self.bias, self.stride, self.padding)


class QuantLinear(Linear):
    """Linear layer with DoReFa fake-quantized weights."""

    def __init__(self, *args, w_bits: int = 4, **kwargs):
        super().__init__(*args, **kwargs)
        self.w_bits = w_bits

    @classmethod
    def from_linear(cls, lin: Linear, w_bits: int) -> "QuantLinear":
        q = cls(lin.in_features, lin.out_features, bias=lin.bias is not None, w_bits=w_bits)
        q.weight = lin.weight
        q.bias = lin.bias
        return q

    def forward(self, x: Tensor) -> Tensor:
        w = fake_quant_weight(self.weight, self.w_bits)
        return F.linear(x, w, self.bias)


def quantize_model_inplace(
    model: Module,
    w_bits: int = 4,
    a_bits: int = 4,
    skip_first_conv: bool = True,
    quantize_linear: bool = True,
) -> Module:
    """Replace Conv2d/Linear layers with DoReFa fake-quant twins.

    Following DoReFa and the DRQ/ODQ evaluation convention, the first
    convolution (raw-pixel input) is kept at full precision by default,
    since its input is not a post-ReLU [0,1] feature map.
    """
    state = {"first_seen": False}

    def transform(m: Module) -> Module:
        if isinstance(m, QuantConv2d) or isinstance(m, QuantLinear):
            return m
        if isinstance(m, Conv2d):
            if skip_first_conv and not state["first_seen"]:
                state["first_seen"] = True
                return m
            state["first_seen"] = True
            return QuantConv2d.from_conv(m, w_bits, a_bits)
        if isinstance(m, Linear) and quantize_linear:
            return QuantLinear.from_linear(m, w_bits)
        return m

    swap_modules(model, transform)
    return model


__all__ = [
    "quantize_k",
    "dorefa_weight_transform",
    "fake_quant_weight",
    "fake_quant_act",
    "QuantConv2d",
    "QuantLinear",
    "quantize_model_inplace",
]
