"""repro — reproduction of "Output-Directed Dynamic Quantization for DNN
Acceleration" (Jiang et al., ICPP 2023).

Package layout
--------------
``repro.nn``
    NumPy autograd CNN substrate (the PyTorch stand-in).
``repro.quant``
    Uniform quantizers, DoReFa QAT, Eq.-3 bit-plane decomposition.
``repro.models`` / ``repro.data``
    The paper's evaluation networks and synthetic dataset stand-ins.
``repro.core``
    The contribution: ODQ, the DRQ baseline, static quantization, the
    quantized inference engine, adaptive threshold search, motivation
    metrics.
``repro.accel``
    Cycle-approximate model of the reconfigurable ODQ accelerator and the
    Table-2 comparison designs (PE allocation, scheduling, memory, energy).
``repro.analysis``
    Drivers that regenerate every table and figure of the paper.
``repro.serve``
    Production serving: session cache, dynamic micro-batching, engine
    worker pool, metrics, and a stdlib HTTP front end (``docs/serving.md``).

Quickstart
----------
>>> from repro.data import synthetic_cifar10
>>> from repro.models import resnet20
>>> from repro.core import run_scheme, odq_scheme
>>> ds = synthetic_cifar10(num_train=256, num_test=128, image_size=16)
>>> model = resnet20(scale=0.25)
>>> # ... train with repro.nn.Trainer ...
>>> acc, records = run_scheme(model, odq_scheme(0.3),
...                           ds.x_train[:64], ds.x_test, ds.y_test)
"""

from repro import accel, analysis, core, data, models, nn, quant, serve, utils
from repro.config import (
    ACCEL_DRQ,
    ACCEL_INT8,
    ACCEL_INT16,
    ACCEL_ODQ,
    DEFAULT_SEED,
    PAPER_THRESHOLDS,
    ExperimentScale,
)

__version__ = "1.0.0"

__all__ = [
    "accel",
    "analysis",
    "core",
    "data",
    "models",
    "nn",
    "quant",
    "serve",
    "utils",
    "ACCEL_DRQ",
    "ACCEL_INT8",
    "ACCEL_INT16",
    "ACCEL_ODQ",
    "DEFAULT_SEED",
    "PAPER_THRESHOLDS",
    "ExperimentScale",
    "__version__",
]
