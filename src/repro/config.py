"""Global configuration constants for the ODQ reproduction.

Centralises the numeric constants shared across the quantization core and
the accelerator simulator so that benchmarks, tests, and examples agree on
a single source of truth.  Values that come straight from the paper are
annotated with the table/figure/section they appear in.
"""

from __future__ import annotations

from dataclasses import dataclass

# ---------------------------------------------------------------------------
# Reproducibility
# ---------------------------------------------------------------------------

#: Default seed used by every dataset generator / initializer unless the
#: caller supplies its own.  Experiments are fully deterministic given this.
DEFAULT_SEED: int = 20230807  # ICPP 2023 opening day.

# ---------------------------------------------------------------------------
# Quantization (Section 3)
# ---------------------------------------------------------------------------

#: Total bit width used by ODQ operands after FP32 -> INT4 quantization.
ODQ_TOTAL_BITS: int = 4

#: Bit width of the high-order slice (I_HBS / W_HBS) fed to the predictor.
ODQ_HIGH_BITS: int = 2

#: Bit width of the low-order slice (I_LBS / W_LBS); the paper's ``N_LBS``.
ODQ_LOW_BITS: int = ODQ_TOTAL_BITS - ODQ_HIGH_BITS

# ---------------------------------------------------------------------------
# PE slice geometry (Section 4.2/4.3)
# ---------------------------------------------------------------------------

#: PE arrays in one slice: 9 fixed predictor + 6 fixed executor + 12
#: reconfigurable = 27 (Section 4.2).
SLICE_TOTAL_ARRAYS: int = 27
SLICE_FIXED_PREDICTOR_ARRAYS: int = 9
SLICE_FIXED_EXECUTOR_ARRAYS: int = 6
SLICE_RECONFIGURABLE_ARRAYS: int = 12

#: Executor PE arrays are grouped into this many clusters so that one
#: cluster issues a memory request per cycle (Section 4.3).
EXECUTOR_CLUSTERS: int = 3

#: Cycles for one predictor INT2xINT2 MAC (Section 4, "one clock cycle").
PREDICTOR_MAC_CYCLES: int = 1

#: Cycles for the executor to finish the three remaining Eq.-3 cross terms
#: on a BitFusion-style multi-precision PE ("three clock cycles").
EXECUTOR_MAC_CYCLES: int = 3

#: Cycles for a full INT4xINT4 MAC on a multi-precision INT2 PE (BitFusion).
FULL_INT4_MAC_CYCLES: int = 4

#: Cycles for an INT8xINT8 MAC on a multi-precision INT4 PE (DRQ hardware).
INT8_ON_INT4_PE_CYCLES: int = 4

# ---------------------------------------------------------------------------
# Table 2: accelerator configurations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AcceleratorSpec:
    """One column of the paper's Table 2.

    Parameters
    ----------
    name:
        Human-readable accelerator name.
    num_pes:
        Number of processing elements at the given native bit width that
        fit in the common 0.17 mm^2 area budget.
    native_bits:
        Native operand width of one PE.
    onchip_memory_bytes:
        On-chip SRAM for weights/inputs/outputs (identical across designs).
    """

    name: str
    num_pes: int
    native_bits: int
    onchip_memory_bytes: int = int(0.17 * 2**20)


#: Table 2 of the paper, verbatim.
ACCEL_INT16 = AcceleratorSpec("INT16", num_pes=120, native_bits=16)
ACCEL_INT8 = AcceleratorSpec("INT8", num_pes=1692, native_bits=4)
ACCEL_DRQ = AcceleratorSpec("DRQ", num_pes=1692, native_bits=4)
ACCEL_ODQ = AcceleratorSpec("ODQ", num_pes=4860, native_bits=2)

#: Number of PEs in one PE array (so ODQ's 4860 PEs = 180 PEs/array x 27).
PES_PER_ARRAY: int = ACCEL_ODQ.num_pes // SLICE_TOTAL_ARRAYS

# ---------------------------------------------------------------------------
# Table 3: per-model thresholds published by the paper
# ---------------------------------------------------------------------------

PAPER_THRESHOLDS: dict[str, float] = {
    "resnet56": 0.5,
    "resnet20": 0.5,
    "vgg16": 0.3,
    "densenet": 0.05,
}

# ---------------------------------------------------------------------------
# Evaluation defaults
# ---------------------------------------------------------------------------


@dataclass
class ExperimentScale:
    """Knobs that scale the experiments between CI-size and paper-size.

    The paper trains full ResNet-56 / VGG-16 on real CIFAR; offline we use
    the same topologies at configurable width on synthetic data (see
    DESIGN.md section 2).  ``small()`` finishes in seconds and is used by
    tests; ``default()`` is used by the benchmark harness.
    """

    image_size: int = 32
    channels: int = 3
    num_train: int = 2048
    num_test: int = 512
    width_multiplier: float = 1.0
    epochs: int = 10
    batch_size: int = 64
    noise: float = 0.2
    max_shift: int = 2

    @classmethod
    def small(cls) -> "ExperimentScale":
        return cls(
            image_size=16,
            num_train=320,
            num_test=96,
            width_multiplier=0.25,
            epochs=6,
            batch_size=32,
            noise=0.12,
            max_shift=1,
        )

    @classmethod
    def default(cls) -> "ExperimentScale":
        return cls()


__all__ = [
    "DEFAULT_SEED",
    "ODQ_TOTAL_BITS",
    "ODQ_HIGH_BITS",
    "ODQ_LOW_BITS",
    "SLICE_TOTAL_ARRAYS",
    "SLICE_FIXED_PREDICTOR_ARRAYS",
    "SLICE_FIXED_EXECUTOR_ARRAYS",
    "SLICE_RECONFIGURABLE_ARRAYS",
    "EXECUTOR_CLUSTERS",
    "PREDICTOR_MAC_CYCLES",
    "EXECUTOR_MAC_CYCLES",
    "FULL_INT4_MAC_CYCLES",
    "INT8_ON_INT4_PE_CYCLES",
    "AcceleratorSpec",
    "ACCEL_INT16",
    "ACCEL_INT8",
    "ACCEL_DRQ",
    "ACCEL_ODQ",
    "PES_PER_ARRAY",
    "PAPER_THRESHOLDS",
    "ExperimentScale",
]
