"""Accelerator configurations (the paper's Table 2) and scheme mapping."""

from __future__ import annotations

from repro.config import (
    ACCEL_DRQ,
    ACCEL_INT8,
    ACCEL_INT16,
    ACCEL_ODQ,
    AcceleratorSpec,
)

#: Table 2, keyed by accelerator name.
TABLE2: dict[str, AcceleratorSpec] = {
    "INT16": ACCEL_INT16,
    "INT8": ACCEL_INT8,
    "DRQ": ACCEL_DRQ,
    "ODQ": ACCEL_ODQ,
}

#: Which accelerator executes which quantization scheme kind.
SCHEME_TO_ACCELERATOR: dict[str, str] = {
    "static16": "INT16",
    "static8": "INT8",
    "drq": "DRQ",
    "odq": "ODQ",
}


def accelerator_for_scheme(scheme_name: str) -> AcceleratorSpec:
    """Resolve the Table-2 accelerator that runs a given scheme."""
    name = scheme_name.lower()
    if name.startswith("int16"):
        return ACCEL_INT16
    if name.startswith("int8"):
        return ACCEL_INT8
    if name.startswith("drq"):
        return ACCEL_DRQ
    if name.startswith("odq"):
        return ACCEL_ODQ
    raise KeyError(f"no accelerator mapped for scheme {scheme_name!r}")


__all__ = ["TABLE2", "SCHEME_TO_ACCELERATOR", "accelerator_for_scheme"]
