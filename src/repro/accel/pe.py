"""Processing-element models: timing, area, and the three PE roles.

Section 4 of the paper defines three PE groups:

* **predictor PE** — a basic INT2 MAC (Fig. 13a): one cycle per MAC on the
  high-order bit planes;
* **executor PE** — a BitFusion-style multi-precision PE (Fig. 13b) that
  finishes the three remaining Eq.-3 cross terms in three cycles;
* **reconfigurable PE** — can operate as either (Fig. 13d), selected by
  the dynamic allocation logic.

Cycle counts follow the BitFusion composition rule: a b-bit x b-bit MAC on
an INT2 fabric decomposes into ``(b/2)**2`` 2-bit partial products, so a
full INT4 MAC takes 4 cycles, of which the predictor has already done 1
(the HH term), leaving 3 for the executor — exactly the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.config import (
    EXECUTOR_MAC_CYCLES,
    FULL_INT4_MAC_CYCLES,
    PREDICTOR_MAC_CYCLES,
)


class PERole(str, Enum):
    PREDICTOR = "predictor"
    EXECUTOR = "executor"
    RECONFIGURABLE = "reconfigurable"


def bitfusion_mac_cycles(op_bits: int, native_bits: int) -> int:
    """Cycles for an ``op_bits`` MAC on a ``native_bits`` multi-precision PE.

    The fused PE processes ``native x native``-bit partial products each
    cycle; a wider MAC decomposes into the square of the width ratio.
    """
    if op_bits < 1 or native_bits < 1:
        raise ValueError("bit widths must be positive")
    if op_bits <= native_bits:
        return 1
    ratio = -(-op_bits // native_bits)  # ceil
    return ratio * ratio


@dataclass(frozen=True)
class PETiming:
    """Cycle costs of the ODQ PE slice roles."""

    predictor_mac: int = PREDICTOR_MAC_CYCLES
    executor_mac: int = EXECUTOR_MAC_CYCLES
    full_int4_mac: int = FULL_INT4_MAC_CYCLES

    def __post_init__(self):
        # Eq. 3 consistency: predictor + executor terms = a full INT4 MAC.
        if self.predictor_mac + self.executor_mac != self.full_int4_mac:
            raise ValueError(
                "predictor + executor cycles must equal a full INT4 MAC "
                f"({self.predictor_mac} + {self.executor_mac} != {self.full_int4_mac})"
            )


DEFAULT_TIMING = PETiming()


# -- 45 nm area model (mm^2 per PE), used for the Table-2 PE budgets --------
#
# A b-bit multiplier's area grows roughly quadratically with operand width;
# anchored so the published Table-2 configuration (120 INT16 PEs == 1692
# INT4 PEs == 4860 INT2 PEs in 0.17 mm^2-equivalent budgets) is consistent
# to within the paper's rounding.

AREA_BUDGET_MM2 = 0.17


def pe_area_mm2(bits: int) -> float:
    """Approximate 45 nm area of one ``bits``-wide MAC PE."""
    if bits < 1:
        raise ValueError("bits must be positive")
    # Quadratic multiplier + linear accumulator/register term, normalised
    # so that the INT16 PE matches the Table-2 budget of 120 PEs.
    quad = (bits / 16.0) ** 2
    lin = bits / 16.0
    base = AREA_BUDGET_MM2 / 120.0  # area of one INT16 PE
    # 90/10 multiplier/accumulator mix fits Table 2's published counts:
    # 1476 INT4 PEs (paper: 1692) and 4512 INT2 PEs (paper: 4860).
    return base * (0.9 * quad + 0.1 * lin)


def pes_in_budget(bits: int, budget_mm2: float = AREA_BUDGET_MM2) -> int:
    """How many ``bits``-wide PEs fit in an area budget."""
    return int(budget_mm2 // pe_area_mm2(bits))


__all__ = [
    "PERole",
    "bitfusion_mac_cycles",
    "PETiming",
    "DEFAULT_TIMING",
    "AREA_BUDGET_MM2",
    "pe_area_mm2",
    "pes_in_budget",
]
