"""PE-array allocation between sensitivity predictor and result executor.

Implements Section 4.2: a PE slice holds 27 PE arrays — 9 fixed predictor,
6 fixed executor, and 12 reconfigurable arrays that can be assigned to
either side.  The pipeline is bubble-free when the executor keeps up with
the predictor:

    T_pred = W / p          (every output needs one predictor pass, 1 cycle/MAC)
    T_exec = 3 * s * W / e  (sensitive fraction s needs 3 more cycles/MAC)

    bubble-free  <=>  s <= e / (3 p)

which reproduces the paper's Table 1 exactly.  Static allocation fixes
(p, e) for the whole network (Fig. 11's 14-50 % idle PEs); dynamic
allocation re-balances per layer from the predictor's measured sensitive
fraction (Fig. 20's <= ~18 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import (
    EXECUTOR_MAC_CYCLES,
    PREDICTOR_MAC_CYCLES,
    SLICE_FIXED_EXECUTOR_ARRAYS,
    SLICE_FIXED_PREDICTOR_ARRAYS,
    SLICE_RECONFIGURABLE_ARRAYS,
    SLICE_TOTAL_ARRAYS,
)


@dataclass(frozen=True)
class PEAllocation:
    """A (predictor, executor) split of the slice's 27 PE arrays."""

    predictor_arrays: int
    executor_arrays: int

    def __post_init__(self):
        if self.predictor_arrays < SLICE_FIXED_PREDICTOR_ARRAYS:
            raise ValueError(
                f"predictor needs >= {SLICE_FIXED_PREDICTOR_ARRAYS} fixed arrays"
            )
        if self.executor_arrays < SLICE_FIXED_EXECUTOR_ARRAYS:
            raise ValueError(
                f"executor needs >= {SLICE_FIXED_EXECUTOR_ARRAYS} fixed arrays"
            )
        if self.predictor_arrays + self.executor_arrays != SLICE_TOTAL_ARRAYS:
            raise ValueError(f"allocation must use all {SLICE_TOTAL_ARRAYS} arrays")

    @property
    def max_sensitive_fraction(self) -> float:
        """Largest sensitive-output fraction served without pipeline bubbles."""
        return max_sensitive_fraction(self.predictor_arrays, self.executor_arrays)

    def __str__(self) -> str:
        return f"P{self.predictor_arrays}/E{self.executor_arrays}"


def max_sensitive_fraction(
    predictor_arrays: int,
    executor_arrays: int,
    predictor_cycles: int = PREDICTOR_MAC_CYCLES,
    executor_cycles: int = EXECUTOR_MAC_CYCLES,
) -> float:
    """Balance condition ``s* = (e/p) * (c_pred / c_exec)`` (Table 1)."""
    if predictor_arrays <= 0 or executor_arrays <= 0:
        raise ValueError("array counts must be positive")
    return (executor_arrays * predictor_cycles) / (
        predictor_arrays * executor_cycles
    )


def table1_configurations(step: int = 3) -> list[PEAllocation]:
    """The five reconfigurable splits of the paper's Table 1.

    The 12 reconfigurable arrays move between sides in units of one
    executor cluster's width (3 arrays), giving predictor counts
    9, 12, 15, 18, 21.
    """
    configs = []
    for extra in range(0, SLICE_RECONFIGURABLE_ARRAYS + 1, step):
        p = SLICE_FIXED_PREDICTOR_ARRAYS + extra
        e = SLICE_TOTAL_ARRAYS - p
        configs.append(PEAllocation(p, e))
    return configs


def choose_allocation(
    sensitive_fraction: float, configs: list[PEAllocation] | None = None
) -> PEAllocation:
    """Dynamic allocation rule: most predictor-heavy bubble-free config.

    Picks the configuration with the largest predictor share whose
    ``max_sensitive_fraction`` still covers the measured fraction — the
    paper's example: 15 % sensitive -> predictor 18 / executor 9.  If even
    the most executor-heavy config cannot cover (s > 66 %), that config is
    returned and the predictor side will stall (modelled by
    :func:`idle_fractions`).
    """
    if not 0.0 <= sensitive_fraction <= 1.0:
        raise ValueError("sensitive_fraction must be in [0, 1]")
    configs = configs or table1_configurations()
    feasible = [c for c in configs if c.max_sensitive_fraction >= sensitive_fraction]
    if not feasible:
        return max(configs, key=lambda c: c.max_sensitive_fraction)
    return max(feasible, key=lambda c: c.predictor_arrays)


@dataclass(frozen=True)
class IdleStats:
    """Idle-PE accounting for one layer under one allocation."""

    predictor_idle_fraction: float
    executor_idle_fraction: float
    predictor_arrays: int
    executor_arrays: int
    cycles: float  # makespan in units of W/array-throughput

    @property
    def overall_idle_fraction(self) -> float:
        """Idle share over all PE arrays in the slice (the Fig. 11/20 metric)."""
        total = self.predictor_arrays + self.executor_arrays
        return (
            self.predictor_arrays * self.predictor_idle_fraction
            + self.executor_arrays * self.executor_idle_fraction
        ) / total


def idle_fractions(
    sensitive_fraction: float,
    alloc: PEAllocation,
    predictor_cycles: int = PREDICTOR_MAC_CYCLES,
    executor_cycles: int = EXECUTOR_MAC_CYCLES,
) -> IdleStats:
    """Idle time of each side when a layer with sensitivity ``s`` runs.

    The side that finishes first waits for the other; its idle fraction is
    one minus the ratio of its busy time to the makespan.
    """
    if not 0.0 <= sensitive_fraction <= 1.0:
        raise ValueError("sensitive_fraction must be in [0, 1]")
    p, e = alloc.predictor_arrays, alloc.executor_arrays
    t_pred = predictor_cycles / p
    t_exec = executor_cycles * sensitive_fraction / e
    makespan = max(t_pred, t_exec)
    return IdleStats(
        predictor_idle_fraction=1.0 - t_pred / makespan,
        executor_idle_fraction=1.0 - t_exec / makespan if makespan > 0 else 0.0,
        predictor_arrays=p,
        executor_arrays=e,
        cycles=makespan,
    )


__all__ = [
    "PEAllocation",
    "max_sensitive_fraction",
    "table1_configurations",
    "choose_allocation",
    "IdleStats",
    "idle_fractions",
]
