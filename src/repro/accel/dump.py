"""Mask-dump serialization: the paper's PyTorch -> simulator hand-off.

Section 5.2: "we use Pytorch to dump the binary mask maps for inference,
which are then fed into our simulator to test a model's inference time."
This module is that file format: per-layer workloads (shapes, MAC census,
sensitivity masks/fractions) are written to a single ``.npz`` so the
quantized-inference stage and the accelerator-simulation stage can run in
separate processes (or machines), exactly like the paper's flow.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.accel.simulator import LayerWorkload

FORMAT_VERSION = 1


def save_workloads(path: str | Path, workloads: list[LayerWorkload]) -> Path:
    """Serialize workloads to a ``.npz`` mask dump."""
    path = Path(path)
    meta = []
    arrays: dict[str, np.ndarray] = {}
    for i, wl in enumerate(workloads):
        meta.append(
            {
                "name": wl.name,
                "in_channels": wl.in_channels,
                "out_channels": wl.out_channels,
                "kernel": wl.kernel,
                "out_h": wl.out_h,
                "out_w": wl.out_w,
                "images": wl.images,
                "macs": dict(wl.macs),
                "sensitive_fraction": wl.sensitive_fraction,
                "input_sensitive_fraction": wl.input_sensitive_fraction,
                "has_channel_counts": wl.per_channel_sensitive is not None,
                # Result-generation dispatch census (0 when the source run
                # predates census instrumentation; see LayerWorkload docs).
                "exec_rows_total": wl.exec_rows_total,
                "exec_rows_computed": wl.exec_rows_computed,
                "exec_flops_full": wl.exec_flops_full,
            }
        )
        if wl.per_channel_sensitive is not None:
            arrays[f"channel_counts_{i}"] = np.asarray(
                wl.per_channel_sensitive, dtype=np.int64
            )
    arrays["meta"] = np.frombuffer(
        json.dumps({"version": FORMAT_VERSION, "layers": meta}).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_workloads(path: str | Path) -> list[LayerWorkload]:
    """Load a mask dump written by :func:`save_workloads`."""
    with np.load(Path(path)) as data:
        header = json.loads(bytes(data["meta"]).decode())
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported mask-dump version {header.get('version')!r}"
            )
        workloads = []
        for i, m in enumerate(header["layers"]):
            counts = (
                data[f"channel_counts_{i}"] if m.pop("has_channel_counts") else None
            )
            macs = {k: int(v) for k, v in m.pop("macs").items()}
            # Census keys are absent from dumps written before the
            # result-generation census existed; default them to 0 so the
            # simulator falls back to channel-granular accounting.
            for key in ("exec_rows_total", "exec_rows_computed", "exec_flops_full"):
                m[key] = int(m.get(key, 0))
            workloads.append(
                LayerWorkload(
                    macs=macs, per_channel_sensitive=counts, **m
                )
            )
    return workloads


__all__ = ["save_workloads", "load_workloads", "FORMAT_VERSION"]
