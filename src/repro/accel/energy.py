"""Energy model (45 nm, CACTI-style constants).

The paper measures power with CACTI [14] on a 45 nm library and reports
energy in three components (Fig. 21): DRAM, Buffer (input/weight/output
SRAM), and Cores (PE slices).  We reproduce that decomposition with the
standard published 45 nm per-operation energies (Horowitz, ISSCC'14 —
the same numbers CACTI-era accelerator papers use):

* integer multiply energy grows ~quadratically with operand width
  (anchor: 8-bit mult = 0.2 pJ), adds ~linearly (8-bit add = 0.03 pJ);
* SRAM access ~5 pJ per 32-bit word for buffers of this size;
* DRAM access ~640 pJ per 32-bit word (20 pJ/bit).

Static (leakage) energy is charged per cycle proportional to PE count, so
schemes that finish earlier also save static energy — the effect the
paper credits for part of ODQ's saving ("DRAM, Buffer, and PE slices help
in the reduction of DNN execution time, which accounts for static energy
consumption").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy constants (picojoules)."""

    mult8_pj: float = 0.2
    add8_pj: float = 0.03
    sram_word_pj: float = 5.0
    dram_word_pj: float = 640.0
    word_bits: int = 32
    #: Leakage of the whole 0.17 mm^2 fabric per cycle.  Every Table-2
    #: design occupies the same silicon area, so static energy is a
    #: per-cycle constant times *execution time* — which is why the paper
    #: credits "the reduction of DNN execution time" for the static
    #: component of ODQ's saving.  ~45 mW at 1 GHz for 0.17 mm^2 at 45 nm.
    fabric_static_pj_per_cycle: float = 45.0

    def mac_pj(self, bits: int) -> float:
        """Energy of one ``bits x bits``-bit MAC (multiply + accumulate)."""
        if bits < 1:
            raise ValueError("bits must be positive")
        ratio = bits / 8.0
        return self.mult8_pj * ratio**2 + self.add8_pj * ratio

    def sram_pj_per_byte(self) -> float:
        return self.sram_word_pj / (self.word_bits / 8)

    def dram_pj_per_byte(self) -> float:
        return self.dram_word_pj / (self.word_bits / 8)


@dataclass
class EnergyBreakdown:
    """Fig.-21 decomposition, in picojoules."""

    cores_pj: float = 0.0
    buffer_pj: float = 0.0
    dram_pj: float = 0.0
    static_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return self.cores_pj + self.buffer_pj + self.dram_pj + self.static_pj

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.cores_pj + other.cores_pj,
            self.buffer_pj + other.buffer_pj,
            self.dram_pj + other.dram_pj,
            self.static_pj + other.static_pj,
        )

    def normalized_to(self, reference_total_pj: float) -> dict[str, float]:
        """Component shares relative to a reference design's total."""
        if reference_total_pj <= 0:
            raise ValueError("reference energy must be positive")
        return {
            "cores": self.cores_pj / reference_total_pj,
            "buffer": self.buffer_pj / reference_total_pj,
            "dram": self.dram_pj / reference_total_pj,
            "static": self.static_pj / reference_total_pj,
            "total": self.total_pj / reference_total_pj,
        }


DEFAULT_ENERGY = EnergyModel()

#: MAC precision classes recorded by the quantization core, mapped to the
#: operand width whose dynamic energy they cost.
MAC_CLASS_BITS: dict[str, int] = {
    "fp32": 32,
    "int16": 16,
    "int8": 8,
    "int4": 4,
    "drq_hi": 8,   # overridden per scheme instance (8-4 vs 4-2)
    "drq_lo": 4,
    "pred_int2": 2,
    "exec_int4": 4,
}


def mac_energy_pj(
    macs_by_class: dict[str, int],
    model: EnergyModel = DEFAULT_ENERGY,
    class_bits: dict[str, int] | None = None,
) -> float:
    """Dynamic core energy of a MAC census.

    The ODQ executor's ``exec_int4`` class accounts for the three
    remaining 2-bit cross terms of one INT4 MAC: 3/4 of a full INT4 MAC.
    """
    bits_map = dict(MAC_CLASS_BITS)
    if class_bits:
        bits_map.update(class_bits)
    total = 0.0
    for key, count in macs_by_class.items():
        bits = bits_map.get(key)
        if bits is None:
            raise KeyError(f"unknown MAC class {key!r}")
        pj = model.mac_pj(bits)
        if key == "pred_int2":
            pj = model.mac_pj(2)
        elif key == "exec_int4":
            pj = 0.75 * model.mac_pj(4)
        total += count * pj
    return total


__all__ = [
    "EnergyModel",
    "EnergyBreakdown",
    "DEFAULT_ENERGY",
    "MAC_CLASS_BITS",
    "mac_energy_pj",
]
