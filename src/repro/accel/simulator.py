"""Cycle-approximate network simulation on the Table-2 accelerators.

This is the reproduction of the paper's evaluation simulator
(Section 5.2): per-layer mask dumps from the quantization core are turned
into :class:`LayerWorkload` descriptions, and each accelerator model turns
a workload into cycles (roofline of compute and DRAM traffic) and an
energy breakdown (cores / buffer / DRAM / static).

Accelerator models:

* ``INT16``  — 120 native INT16 PEs, 1 cycle per MAC;
* ``INT8``   — 1692 INT4 multi-precision PEs, 4 cycles per INT8 MAC;
* ``DRQ``    — same fabric; sensitive-input MACs at hi precision
  (4 cycles), insensitive at 1 cycle;
* ``ODQ``    — 4860 INT2 PEs in 27 arrays; the predictor/executor
  pipeline with Table-1 allocation (static or dynamic) and the Fig.-16
  executor workload scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import ACCEL_DRQ, ACCEL_INT8, ACCEL_INT16, ACCEL_ODQ, EXECUTOR_MAC_CYCLES, PES_PER_ARRAY, PREDICTOR_MAC_CYCLES, AcceleratorSpec
from repro.accel.alloc import (
    IdleStats,
    PEAllocation,
    choose_allocation,
    idle_fractions,
)
from repro.accel.energy import (
    DEFAULT_ENERGY,
    EnergyBreakdown,
    EnergyModel,
    mac_energy_pj,
)
from repro.accel.memory import (
    DEFAULT_MEMORY,
    MemoryConfig,
    conv_layer_traffic,
    memory_cycles,
)
from repro.accel.pe import bitfusion_mac_cycles
from repro.accel.schedule import odq_dynamic_schedule, static_schedule
from repro.core.base import LayerRecord
from repro.obs import trace
from repro.obs.log import get_logger

_log = get_logger("repro.accel.simulator")


@dataclass
class LayerWorkload:
    """Accelerator-facing description of one conv layer's inference work."""

    name: str
    in_channels: int
    out_channels: int
    kernel: int
    out_h: int
    out_w: int
    images: int
    macs: dict[str, int]
    sensitive_fraction: float = 0.0
    per_channel_sensitive: np.ndarray | None = None
    input_sensitive_fraction: float = 0.0
    #: Result-generation census recorded by the software executor (see
    #: ``ODQConvExecutor._note_exec_path``): output rows seen vs rows the
    #: dispatched path actually computed, and the MACs of the gathered-row
    #: full-result GEMM.  ``0`` means "census not recorded" (old dumps,
    #: non-ODQ schemes) and preserves the channel-granular accounting.
    exec_rows_total: int = 0
    exec_rows_computed: int = 0
    exec_flops_full: int = 0

    @property
    def macs_per_output(self) -> int:
        return self.kernel * self.kernel * self.in_channels

    @property
    def total_outputs(self) -> int:
        return self.images * self.out_h * self.out_w * self.out_channels

    @property
    def total_macs(self) -> int:
        return self.total_outputs * self.macs_per_output

    @classmethod
    def from_record(cls, rec: LayerRecord) -> "LayerWorkload":
        extra = rec.extra
        in_total = extra.get("input_total", 0)
        return cls(
            name=rec.info.name,
            in_channels=rec.info.in_channels,
            out_channels=rec.info.out_channels,
            kernel=rec.info.kernel_size,
            out_h=rec.out_h,
            out_w=rec.out_w,
            images=rec.images,
            macs=dict(rec.macs),
            sensitive_fraction=rec.sensitive_fraction,
            per_channel_sensitive=rec.per_channel_sensitive,
            input_sensitive_fraction=(
                extra.get("input_sensitive_total", 0) / in_total if in_total else 0.0
            ),
            exec_rows_total=int(extra.get("exec_rows_total", 0)),
            exec_rows_computed=int(extra.get("exec_rows_computed", 0)),
            exec_flops_full=int(extra.get("exec_flops_full", 0)),
        )


@dataclass
class LayerSimResult:
    """Cycles and energy for one layer on one accelerator."""

    name: str
    compute_cycles: float
    memory_cycles: float
    energy: EnergyBreakdown
    allocation: PEAllocation | None = None
    idle: IdleStats | None = None
    scheduler_idle_fraction: float = 0.0

    @property
    def cycles(self) -> float:
        return max(self.compute_cycles, self.memory_cycles)


@dataclass
class SimResult:
    """Whole-network simulation outcome."""

    accelerator: str
    layers: list[LayerSimResult] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return sum(l.cycles for l in self.layers)

    @property
    def total_energy(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for l in self.layers:
            total = total + l.energy
        return total

    def normalized_time(self, reference: "SimResult") -> float:
        return self.total_cycles / reference.total_cycles

    def normalized_energy(self, reference: "SimResult") -> float:
        return self.total_energy.total_pj / reference.total_energy.total_pj


class AcceleratorModel:
    """Base accelerator: subclass provides compute cycles + operand widths."""

    spec: AcceleratorSpec

    def __init__(
        self,
        mem: MemoryConfig = DEFAULT_MEMORY,
        energy: EnergyModel = DEFAULT_ENERGY,
    ):
        self.mem = mem
        self.energy = energy

    # subclass hooks ------------------------------------------------------

    def compute_cycles(self, wl: LayerWorkload) -> float:  # pragma: no cover
        raise NotImplementedError

    def operand_bits(self, wl: LayerWorkload) -> tuple[float, float]:
        """Effective (weight_bits, act_bits) for traffic/energy accounting."""
        raise NotImplementedError  # pragma: no cover

    def mac_class_bits(self) -> dict[str, int] | None:
        return None

    #: MAC-census classes this accelerator executes; others in a workload's
    #: ``macs`` dict (e.g. when one synthetic workload carries every
    #: scheme's counts) are ignored.
    mac_classes: frozenset[str] = frozenset()

    def _own_macs(self, wl: LayerWorkload) -> dict[str, int]:
        if not self.mac_classes:
            return wl.macs
        return {k: v for k, v in wl.macs.items() if k in self.mac_classes}

    def reuse(self, wl: LayerWorkload) -> float:
        return self.mem.dense_reuse

    # shared machinery ------------------------------------------------------

    def simulate_layer(self, wl: LayerWorkload) -> LayerSimResult:
        compute = self.compute_cycles(wl)
        w_bits, a_bits = self.operand_bits(wl)
        traffic = conv_layer_traffic(
            wl.in_channels,
            wl.out_channels,
            wl.kernel,
            wl.out_h,
            wl.out_w,
            wl.images,
            weight_bits=w_bits,
            act_bits=a_bits,
            reuse=self.reuse(wl),
            mem=self.mem,
        )
        mem_cycles = memory_cycles(traffic, self.mem)
        cycles = max(compute, mem_cycles)

        cores = mac_energy_pj(self._own_macs(wl), self.energy, self.mac_class_bits())
        # Buffer accesses: two operands per MAC through SRAM, amortised by
        # register-level (systolic) reuse.
        buffer_bytes = wl.total_macs * (w_bits + a_bits) / 8.0 / 16.0
        buffer_pj = buffer_bytes * self.energy.sram_pj_per_byte()
        dram_pj = traffic.total_bytes * self.energy.dram_pj_per_byte()
        static_pj = self.energy.fabric_static_pj_per_cycle * cycles

        return LayerSimResult(
            name=wl.name,
            compute_cycles=compute,
            memory_cycles=mem_cycles,
            energy=EnergyBreakdown(cores, buffer_pj, dram_pj, static_pj),
        )

    def simulate(self, workloads: list[LayerWorkload]) -> SimResult:
        with trace.span(
            "accel.simulate", accelerator=self.spec.name, layers=len(workloads)
        ) as sp:
            result = SimResult(accelerator=self.spec.name)
            for wl in workloads:
                with trace.span("accel.layer", accelerator=self.spec.name,
                                layer=wl.name) as lsp:
                    layer = self.simulate_layer(wl)
                    lsp.add("cycles", layer.cycles)
                    lsp.add("energy_pj", layer.energy.total_pj)
                result.layers.append(layer)
            sp.add("total_cycles", result.total_cycles)
        _log.debug(
            "simulated",
            accelerator=self.spec.name,
            layers=len(workloads),
            total_cycles=result.total_cycles,
        )
        return result


class Int16Accelerator(AcceleratorModel):
    """Static INT16 DoReFa baseline: native 16-bit PEs."""

    spec = ACCEL_INT16
    mac_classes = frozenset({"int16", "fp32"})

    def compute_cycles(self, wl: LayerWorkload) -> float:
        return wl.total_macs / self.spec.num_pes

    def operand_bits(self, wl: LayerWorkload) -> tuple[float, float]:
        return 16.0, 16.0


class Int8Accelerator(AcceleratorModel):
    """Static INT8 baseline on the INT4 multi-precision fabric."""

    spec = ACCEL_INT8
    mac_classes = frozenset({"int8", "int4"})

    def compute_cycles(self, wl: LayerWorkload) -> float:
        cycles_per_mac = bitfusion_mac_cycles(8, self.spec.native_bits)
        return wl.total_macs * cycles_per_mac / self.spec.num_pes

    def operand_bits(self, wl: LayerWorkload) -> tuple[float, float]:
        return 8.0, 8.0


class DRQAccelerator(AcceleratorModel):
    """Input-directed dynamic quantization fabric (DRQ).

    Sensitive-region MACs run at ``hi_bits`` (4 cycles on the INT4 fabric
    for INT8, 1 cycle for INT4), insensitive at ``lo_bits``.
    """

    spec = ACCEL_DRQ
    mac_classes = frozenset({"drq_hi", "drq_lo"})

    def __init__(self, hi_bits: int = 8, lo_bits: int = 4, **kwargs):
        super().__init__(**kwargs)
        self.hi_bits = hi_bits
        self.lo_bits = lo_bits

    def compute_cycles(self, wl: LayerWorkload) -> float:
        hi = wl.macs.get("drq_hi", 0)
        lo = wl.macs.get("drq_lo", 0)
        hi_c = bitfusion_mac_cycles(self.hi_bits, self.spec.native_bits)
        lo_c = bitfusion_mac_cycles(self.lo_bits, self.spec.native_bits)
        return (hi * hi_c + lo * lo_c) / self.spec.num_pes

    def operand_bits(self, wl: LayerWorkload) -> tuple[float, float]:
        f = wl.input_sensitive_fraction
        eff = self.hi_bits * f + self.lo_bits * (1.0 - f)
        return eff, eff

    def mac_class_bits(self) -> dict[str, int]:
        return {"drq_hi": self.hi_bits, "drq_lo": self.lo_bits}

    def reuse(self, wl: LayerWorkload) -> float:
        # Region-level sparsity costs some line-buffer reuse.
        return 0.5 * (self.mem.dense_reuse + self.mem.executor_reuse())


class ODQAccelerator(AcceleratorModel):
    """The reconfigurable ODQ accelerator (Section 4.3).

    ``allocation='dynamic'`` picks the Table-1 config per layer from the
    measured sensitive fraction; passing a :class:`PEAllocation` freezes a
    static split (for the Fig.-11 study).  ``scheduler`` selects how the
    executor's irregular work spreads over its PE arrays.
    """

    spec = ACCEL_ODQ
    mac_classes = frozenset({"pred_int2", "exec_int4"})

    def __init__(
        self,
        allocation: str | PEAllocation = "dynamic",
        scheduler: str = "dynamic",
        pes_per_array: int = PES_PER_ARRAY,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.allocation = allocation
        self.scheduler = scheduler
        self.pes_per_array = pes_per_array
        self.last_idle: list[IdleStats] = []

    def _alloc_for(self, wl: LayerWorkload) -> PEAllocation:
        if isinstance(self.allocation, PEAllocation):
            return self.allocation
        return choose_allocation(wl.sensitive_fraction)

    def _exec_macs(self, wl: LayerWorkload) -> int:
        """MACs the executor pass actually performs.

        With the result-generation census recorded
        (``exec_flops_full > 0``), this is the measured MAC count of the
        gathered-row full-result GEMM — the work the software sparse path
        *really* dispatches (whole rows: every channel of a spatial
        position with >= 1 sensitive channel; or the dense accumulate when
        the dense path won).  Without a census (old dumps, synthetic
        workloads) it falls back to the channel-granular ``exec_int4``
        count, preserving the historical accounting exactly.
        """
        if wl.exec_flops_full > 0:
            return wl.exec_flops_full
        return wl.macs.get("exec_int4", 0)

    def _executor_cycles(self, wl: LayerWorkload, alloc: PEAllocation) -> tuple[float, float]:
        """(cycles, scheduler idle fraction) of the executor pass."""
        exec_macs = self._exec_macs(wl)
        if exec_macs == 0:
            return 0.0, 0.0
        throughput = alloc.executor_arrays * self.pes_per_array
        ideal = exec_macs * EXECUTOR_MAC_CYCLES / throughput
        counts = wl.per_channel_sensitive
        if counts is None or counts.sum() == 0:
            return ideal, 0.0
        if self.scheduler == "dynamic":
            sched = odq_dynamic_schedule(counts, alloc.executor_arrays)
        elif self.scheduler == "static":
            sched = static_schedule(counts, alloc.executor_arrays)
        else:
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if wl.exec_flops_full > 0:
            # Census-based accounting: the scheduler study still tells us
            # how unevenly the sensitive work spreads over the executor
            # arrays, but the per-array work items are now whole rows, so
            # apply the schedule's *idle fraction* to the measured-census
            # ideal rather than re-deriving cycles from channel counts.
            idle = sched.idle_fraction
            return ideal / max(1.0 - idle, 1e-9), idle
        # Scheduler makespan is in abstract output units (3 cycles per
        # sensitive output on one array); convert to real cycles where one
        # output costs macs_per_output MACs spread over an array's PEs.
        scale = wl.macs_per_output / self.pes_per_array
        return sched.makespan_cycles * scale, sched.idle_fraction

    def _own_macs(self, wl: LayerWorkload) -> dict[str, int]:
        """Energy census: replace ``exec_int4`` with the recorded census.

        Keeps cycle and energy accounting consistent — the executor
        cores spend energy on the rows they actually computed (the
        software sparse path computes *every* channel of a selected row,
        the dense path the full accumulate), not on the channel-granular
        sensitivity count.
        """
        own = super()._own_macs(wl)
        if wl.exec_flops_full > 0 and "exec_int4" in own:
            own = dict(own)
            own["exec_int4"] = wl.exec_flops_full
        return own

    def compute_cycles(self, wl: LayerWorkload) -> float:
        alloc = self._alloc_for(wl)
        pred_macs = wl.macs.get("pred_int2", wl.total_macs)
        pred = pred_macs * PREDICTOR_MAC_CYCLES / (
            alloc.predictor_arrays * self.pes_per_array
        )
        execu, _ = self._executor_cycles(wl, alloc)
        # Predictor and executor run as a pipeline over the output stream;
        # steady-state time is the slower stage.
        return max(pred, execu)

    def operand_bits(self, wl: LayerWorkload) -> tuple[float, float]:
        # Predictor reads 2-bit planes for everything; executor re-reads
        # the full 4-bit operands for the sensitive share.
        s = wl.sensitive_fraction
        eff = 2.0 + 4.0 * s
        return eff, eff

    def reuse(self, wl: LayerWorkload) -> float:
        # Dense predictor enjoys full reuse; sparse executor the clustered
        # reuse; weight by the share of traffic each generates.
        s = wl.sensitive_fraction
        dense_share = 2.0 / (2.0 + 4.0 * s) if s >= 0 else 1.0
        return dense_share * self.mem.dense_reuse + (1 - dense_share) * self.mem.executor_reuse()

    def simulate_layer(self, wl: LayerWorkload) -> LayerSimResult:
        result = super().simulate_layer(wl)
        alloc = self._alloc_for(wl)
        result.allocation = alloc
        result.idle = idle_fractions(wl.sensitive_fraction, alloc)
        _, sched_idle = self._executor_cycles(wl, alloc)
        result.scheduler_idle_fraction = sched_idle
        return result


def workloads_from_records(records) -> list[LayerWorkload]:
    """Convert the inference engine's per-layer records into workloads."""
    return [LayerWorkload.from_record(rec) for rec in records.values()]


def build_accelerator(name: str, **kwargs) -> AcceleratorModel:
    """Factory over the Table-2 accelerator names."""
    key = name.upper()
    if key == "INT16":
        return Int16Accelerator(**kwargs)
    if key == "INT8":
        return Int8Accelerator(**kwargs)
    if key == "DRQ":
        return DRQAccelerator(**kwargs)
    if key == "ODQ":
        return ODQAccelerator(**kwargs)
    raise KeyError(f"unknown accelerator {name!r} (Table 2 has INT16/INT8/DRQ/ODQ)")


__all__ = [
    "LayerWorkload",
    "LayerSimResult",
    "SimResult",
    "AcceleratorModel",
    "Int16Accelerator",
    "Int8Accelerator",
    "DRQAccelerator",
    "ODQAccelerator",
    "workloads_from_records",
    "build_accelerator",
]
