"""On-chip buffering and DRAM traffic model.

Models the memory system of Fig. 12: a global weight/input buffer that
hides DRAM latency, line buffers that let one input row feed many weight
filters (the Im2col/Pack engine's data reuse), and an output buffer.

Cycle impact follows a roofline rule: a layer's memory-bound time is its
DRAM traffic divided by bandwidth; the simulator takes
``max(compute_cycles, memory_cycles)``.  Section 4.1's bandwidth
discussion is captured by the executor's reuse factor: sensitive outputs
are scattered, so executor traffic enjoys far less line-buffer reuse than
the dense predictor pass — the paper mitigates (not eliminates) this with
three executor clusters taking turns issuing requests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import EXECUTOR_CLUSTERS


@dataclass(frozen=True)
class MemoryConfig:
    """Memory-system parameters shared by all Table-2 accelerators."""

    onchip_bytes: int = int(0.17 * 2**20)
    dram_bandwidth_bytes_per_cycle: float = 16.0
    #: Dense-dataflow reuse: each input byte fetched once serves this many
    #: MACs thanks to line buffers + weight-stationary reuse.
    dense_reuse: float = 64.0
    #: Reuse available to the sparse executor pass without clustering.
    sparse_reuse: float = 4.0

    def executor_reuse(self, clusters: int = EXECUTOR_CLUSTERS) -> float:
        """Effective reuse of the clustered executor (Section 4.3).

        Splitting the executor into ``clusters`` request groups lets one
        line-buffer fill serve each cluster in turn, multiplying the
        sparse reuse factor.
        """
        return self.sparse_reuse * max(1, clusters)


@dataclass(frozen=True)
class LayerTraffic:
    """DRAM byte counts for one layer pass."""

    weight_bytes: float
    input_bytes: float
    output_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.weight_bytes + self.input_bytes + self.output_bytes


def conv_layer_traffic(
    in_channels: int,
    out_channels: int,
    kernel: int,
    out_h: int,
    out_w: int,
    images: int,
    weight_bits: int,
    act_bits: int,
    reuse: float,
    mem: MemoryConfig,
    stride: int = 1,
) -> LayerTraffic:
    """Estimate DRAM traffic for one convolution layer.

    Weights stream in once if they fit the on-chip buffer, otherwise once
    per buffer-sized tile of the output.  Feature maps that fit next to
    the weights in on-chip SRAM stay resident between layers (the usual
    CIFAR-scale regime — this is what the paper's global buffer is for)
    and cost no DRAM traffic; larger maps pay the im2col volume divided
    by the line-buffer reuse factor, and their outputs spill to DRAM.
    """
    weight_count = out_channels * in_channels * kernel * kernel
    weight_bytes = weight_count * weight_bits / 8.0
    if weight_bytes > mem.onchip_bytes:
        # Tiled execution refetches weights per tile.
        weight_bytes *= -(-weight_bytes // mem.onchip_bytes)

    raw_in_bytes = images * in_channels * (out_h * stride) * (out_w * stride) * act_bits / 8.0
    raw_out_bytes = images * out_h * out_w * out_channels * act_bits / 8.0
    resident_budget = max(mem.onchip_bytes - min(weight_bytes, mem.onchip_bytes), 0)

    if raw_in_bytes + raw_out_bytes <= resident_budget:
        # Both maps live on-chip; only a streaming trickle (model: 10% of
        # the raw input, covering batch turnover) touches DRAM.
        input_bytes = 0.1 * raw_in_bytes
        output_bytes = 0.1 * raw_out_bytes
    else:
        im2col_volume = images * out_h * out_w * in_channels * kernel * kernel
        input_bytes = im2col_volume * act_bits / 8.0 / max(reuse, 1.0)
        output_bytes = raw_out_bytes
    return LayerTraffic(weight_bytes, input_bytes, output_bytes)


def memory_cycles(traffic: LayerTraffic, mem: MemoryConfig) -> float:
    """Cycles to move a layer's DRAM traffic at the configured bandwidth."""
    return traffic.total_bytes / mem.dram_bandwidth_bytes_per_cycle


DEFAULT_MEMORY = MemoryConfig()

__all__ = [
    "MemoryConfig",
    "LayerTraffic",
    "conv_layer_traffic",
    "memory_cycles",
    "DEFAULT_MEMORY",
]
