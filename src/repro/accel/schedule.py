"""Executor workload scheduling across PE arrays (Section 4.3, Figs 14-16).

Sensitive output features are irregular and sparse, so a naive static
assignment of output feature maps (OFMs) to PE arrays leaves arrays idle
(Fig. 14: arrays that drew light OFMs wait 9 cycles for the heavy ones).
The paper's fine-grained dynamic scheme (Fig. 16) gives every PE array a
small set of candidate output channels, makes each cluster cover all
channels, and each round lets the array's crossbar pick the candidate
channel with the greatest remaining workload.

Three schedulers are modelled:

* :func:`static_schedule` — fixed OFM-to-array assignment (Fig. 14);
* :func:`ideal_dynamic_schedule` — perfect work stealing (Fig. 15's
  upper bound, "significant hardware overhead");
* :func:`odq_dynamic_schedule` — the paper's candidate-set scheme
  (Fig. 16), simulated round by round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import EXECUTOR_CLUSTERS, EXECUTOR_MAC_CYCLES


@dataclass
class ScheduleResult:
    """Outcome of scheduling one layer's executor workload."""

    scheme: str
    makespan_cycles: int
    busy_cycles: np.ndarray  # per PE array
    total_outputs: int

    @property
    def idle_fraction(self) -> float:
        """Idle share across arrays until the last one finishes."""
        if self.makespan_cycles == 0:
            return 0.0
        total = self.makespan_cycles * len(self.busy_cycles)
        return float(1.0 - self.busy_cycles.sum() / total)

    @property
    def idle_cycles(self) -> int:
        return int(self.makespan_cycles * len(self.busy_cycles) - self.busy_cycles.sum())


def _as_workloads(workloads) -> np.ndarray:
    w = np.asarray(workloads, dtype=np.int64)
    if w.ndim != 1 or (w < 0).any():
        raise ValueError("workloads must be a 1-D array of non-negative counts")
    return w


def static_schedule(
    workloads, n_arrays: int, cycles_per_output: int = EXECUTOR_MAC_CYCLES
) -> ScheduleResult:
    """Fixed round-robin OFM-to-array assignment (Fig. 14).

    ``workloads[i]`` is the sensitive-output count of OFM ``i``; OFM ``i``
    is pinned to array ``i % n_arrays``.
    """
    w = _as_workloads(workloads)
    if n_arrays <= 0:
        raise ValueError("need at least one PE array")
    busy = np.zeros(n_arrays, dtype=np.int64)
    for i, load in enumerate(w):
        busy[i % n_arrays] += load * cycles_per_output
    makespan = int(busy.max()) if len(w) else 0
    return ScheduleResult("static", makespan, busy, int(w.sum()))


def ideal_dynamic_schedule(
    workloads, n_arrays: int, cycles_per_output: int = EXECUTOR_MAC_CYCLES
) -> ScheduleResult:
    """Perfect work stealing: any array may take any pending output (Fig. 15).

    Lower-bounds the makespan at ``ceil(total / n_arrays)`` outputs per
    array (list scheduling with unit tasks is optimal here).
    """
    w = _as_workloads(workloads)
    if n_arrays <= 0:
        raise ValueError("need at least one PE array")
    total = int(w.sum())
    per = total // n_arrays
    rem = total % n_arrays
    busy = np.full(n_arrays, per, dtype=np.int64)
    busy[:rem] += 1
    busy *= cycles_per_output
    makespan = int(busy.max()) if total else 0
    return ScheduleResult("ideal-dynamic", makespan, busy, total)


def candidate_sets(
    n_channels: int,
    n_arrays: int,
    clusters: int = EXECUTOR_CLUSTERS,
    channels_per_array: int = 2,
) -> list[list[int]]:
    """Assign candidate output channels to PE arrays (Fig. 16 rule).

    Constraints from the paper: (1) each array serves ``channels_per_array``
    channels and every cluster collectively covers all channels, so any
    pending work can be placed; (2) across clusters the channel pairings
    differ, maximising distinct channel combinations.  We realise this
    with a per-cluster rotation of the channel order before chunking.
    """
    if n_channels <= 0 or n_arrays <= 0:
        raise ValueError("channels and arrays must be positive")
    clusters = max(1, min(clusters, n_arrays))
    per_cluster = n_arrays // clusters
    # Widen candidate sets if needed so each cluster can cover all channels
    # (the paper's coverage constraint; with 2 channels/array and few
    # channels this is already satisfied).
    if per_cluster > 0:
        channels_per_array = max(channels_per_array, -(-n_channels // per_cluster))
    sets: list[list[int]] = []
    for a in range(n_arrays):
        cluster = a if per_cluster == 0 else a // per_cluster
        idx = a if per_cluster == 0 else a % per_cluster
        # Rotate + stride channel order differently per cluster so pairings
        # differ across clusters while each cluster covers all channels.
        order = [(cluster + i * (1 + cluster)) % n_channels for i in range(n_channels)]
        seen: list[int] = []
        for ch in order:
            if ch not in seen:
                seen.append(ch)
        # Complete the rotation into a permutation if strides collided.
        for ch in range(n_channels):
            if ch not in seen:
                seen.append(ch)
        chans = [
            seen[(idx * channels_per_array + j) % n_channels]
            for j in range(min(channels_per_array, n_channels))
        ]
        sets.append(sorted(set(chans)))
    return sets


def odq_dynamic_schedule(
    workloads,
    n_arrays: int,
    clusters: int = EXECUTOR_CLUSTERS,
    channels_per_array: int = 2,
    cycles_per_output: int = EXECUTOR_MAC_CYCLES,
    granularity: int | None = None,
) -> ScheduleResult:
    """Round-by-round simulation of the paper's candidate-set scheduler.

    Each round (``cycles_per_output`` cycles) every array picks, among its
    candidate channels, the one with the greatest remaining workload and
    retires one output from it.  ``granularity`` coarsens the unit of work
    (outputs per pick) to bound simulation time on large layers; the
    makespan error is at most one round per array.
    """
    w = _as_workloads(workloads).copy()
    if n_arrays <= 0:
        raise ValueError("need at least one PE array")
    n_channels = len(w)
    if n_channels == 0 or w.sum() == 0:
        return ScheduleResult("odq-dynamic", 0, np.zeros(n_arrays, dtype=np.int64), 0)

    total = int(w.sum())
    if granularity is None:
        # Keep the simulation to ~2k rounds.
        granularity = max(1, total // (n_arrays * 2048))
    sets = candidate_sets(n_channels, n_arrays, clusters, channels_per_array)

    remaining = w.astype(np.int64)
    busy = np.zeros(n_arrays, dtype=np.int64)
    rounds = 0
    while remaining.sum() > 0:
        rounds += 1
        progressed = False
        for a in range(n_arrays):
            cands = sets[a]
            loads = remaining[cands]
            if not loads.any():
                continue
            pick = cands[int(np.argmax(loads))]
            take = min(granularity, int(remaining[pick]))
            remaining[pick] -= take
            busy[a] += take * cycles_per_output
            progressed = True
        if not progressed:  # pragma: no cover - defensive
            raise RuntimeError("scheduler deadlock: candidate sets do not cover work")
    # Wall clock: every round costs a full pick slot even for arrays that
    # found no eligible work that round.
    makespan = rounds * granularity * cycles_per_output
    return ScheduleResult("odq-dynamic", makespan, busy, total)


__all__ = [
    "ScheduleResult",
    "static_schedule",
    "ideal_dynamic_schedule",
    "candidate_sets",
    "odq_dynamic_schedule",
]
