"""Cycle-approximate model of the reconfigurable ODQ accelerator and the
Table-2 comparison designs."""

from repro.accel.pe import (
    PERole,
    bitfusion_mac_cycles,
    PETiming,
    DEFAULT_TIMING,
    AREA_BUDGET_MM2,
    pe_area_mm2,
    pes_in_budget,
)
from repro.accel.alloc import (
    PEAllocation,
    max_sensitive_fraction,
    table1_configurations,
    choose_allocation,
    IdleStats,
    idle_fractions,
)
from repro.accel.schedule import (
    ScheduleResult,
    static_schedule,
    ideal_dynamic_schedule,
    candidate_sets,
    odq_dynamic_schedule,
)
from repro.accel.memory import (
    MemoryConfig,
    LayerTraffic,
    conv_layer_traffic,
    memory_cycles,
    DEFAULT_MEMORY,
)
from repro.accel.energy import (
    EnergyModel,
    EnergyBreakdown,
    DEFAULT_ENERGY,
    MAC_CLASS_BITS,
    mac_energy_pj,
)
from repro.accel.configs import TABLE2, accelerator_for_scheme
from repro.accel.dump import save_workloads, load_workloads
from repro.accel.simulator import (
    LayerWorkload,
    LayerSimResult,
    SimResult,
    AcceleratorModel,
    Int16Accelerator,
    Int8Accelerator,
    DRQAccelerator,
    ODQAccelerator,
    workloads_from_records,
    build_accelerator,
)

__all__ = [
    "PERole",
    "bitfusion_mac_cycles",
    "PETiming",
    "DEFAULT_TIMING",
    "AREA_BUDGET_MM2",
    "pe_area_mm2",
    "pes_in_budget",
    "PEAllocation",
    "max_sensitive_fraction",
    "table1_configurations",
    "choose_allocation",
    "IdleStats",
    "idle_fractions",
    "ScheduleResult",
    "static_schedule",
    "ideal_dynamic_schedule",
    "candidate_sets",
    "odq_dynamic_schedule",
    "MemoryConfig",
    "LayerTraffic",
    "conv_layer_traffic",
    "memory_cycles",
    "DEFAULT_MEMORY",
    "EnergyModel",
    "EnergyBreakdown",
    "DEFAULT_ENERGY",
    "MAC_CLASS_BITS",
    "mac_energy_pj",
    "TABLE2",
    "save_workloads",
    "load_workloads",
    "accelerator_for_scheme",
    "LayerWorkload",
    "LayerSimResult",
    "SimResult",
    "AcceleratorModel",
    "Int16Accelerator",
    "Int8Accelerator",
    "DRQAccelerator",
    "ODQAccelerator",
    "workloads_from_records",
    "build_accelerator",
]
