"""Quantization scheme registry.

A :class:`Scheme` bundles a name with a factory that builds the per-layer
conv executor.  The five schemes of the paper's evaluation (Fig. 18):

=============  =====================================================
``fp32``       full-precision reference
``int16``      DoReFa static 16-bit (Table 2's INT16 accelerator)
``int8``       DoReFa static 8-bit
``drq84``      DRQ with INT8 sensitive / INT4 insensitive inputs
``drq42``      DRQ with INT4 / INT2 (the low-bitwidth failure case)
``odq``        output-directed dynamic quantization, INT4 w/ 2-bit
               prediction (threshold per model, Table 3)
=============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.base import ConvExecutor
from repro.core.drq import DRQConvExecutor
from repro.core.odq import ODQConvExecutor
from repro.core.static_quant import FP32ConvExecutor, StaticQuantConvExecutor
from repro.nn.layers import Conv2d


@dataclass(frozen=True)
class Scheme:
    """A named quantization scheme.

    Attributes
    ----------
    name:
        Registry key, also used in reports.
    kind:
        One of ``fp32 | static | drq | odq`` (drives accelerator mapping).
    factory:
        ``(conv, layer_name) -> ConvExecutor``.
    params:
        The scheme's salient parameters, for reporting.
    """

    name: str
    kind: str
    factory: Callable[[Conv2d, str], ConvExecutor]
    params: dict = field(default_factory=dict)

    def make_executor(self, conv: Conv2d, name: str) -> ConvExecutor:
        return self.factory(conv, name)


def fp32_scheme() -> Scheme:
    return Scheme("fp32", "fp32", FP32ConvExecutor)


def static_scheme(bits: int) -> Scheme:
    return Scheme(
        f"int{bits}",
        "static",
        lambda conv, name: StaticQuantConvExecutor(conv, name, bits=bits),
        params={"bits": bits},
    )


def drq_scheme(
    hi_bits: int = 8,
    lo_bits: int = 4,
    region: int = 2,
    target_sensitive: float = 0.5,
    threshold: float | None = None,
) -> Scheme:
    params = {
        "hi_bits": hi_bits,
        "lo_bits": lo_bits,
        "region": region,
        "target_sensitive": target_sensitive,
        "threshold": threshold,
    }
    return Scheme(
        f"drq{hi_bits}{lo_bits}",
        "drq",
        lambda conv, name: DRQConvExecutor(
            conv,
            name,
            hi_bits=hi_bits,
            lo_bits=lo_bits,
            region=region,
            target_sensitive=target_sensitive,
            threshold=threshold,
        ),
        params=params,
    )


def odq_scheme(
    threshold: float,
    total_bits: int = 4,
    low_bits: int = 2,
    keep_masks: bool = True,
    weight_percentile: float = 97.0,
    compensate_low_bits: bool = True,
    threshold_mode: str = "absolute",
    exec_path: str = "auto",
) -> Scheme:
    params = {
        "threshold": threshold,
        "total_bits": total_bits,
        "low_bits": low_bits,
        "weight_percentile": weight_percentile,
        "compensate_low_bits": compensate_low_bits,
        "threshold_mode": threshold_mode,
        "exec_path": exec_path,
    }
    return Scheme(
        "odq",
        "odq",
        lambda conv, name: ODQConvExecutor(
            conv,
            name,
            threshold=threshold,
            total_bits=total_bits,
            low_bits=low_bits,
            keep_masks=keep_masks,
            weight_percentile=weight_percentile,
            compensate_low_bits=compensate_low_bits,
            threshold_mode=threshold_mode,
            exec_path=exec_path,
        ),
        params=params,
    )


#: Named scheme builders for CLI / serving lookup.  Each entry maps a
#: lowercase registry name to ``(threshold, **extras) -> Scheme``;
#: builders that do not use a threshold (or an extra knob) simply ignore
#: it.  ``exec_path`` is the ODQ result-generation path
#: (``auto|dense|sparse``, see :mod:`repro.core.odq`).
_NAMED_SCHEMES: dict[str, Callable[..., Scheme]] = {
    "fp32": lambda _t, **_kw: fp32_scheme(),
    "int16": lambda _t, **_kw: static_scheme(16),
    "int8": lambda _t, **_kw: static_scheme(8),
    "int4": lambda _t, **_kw: static_scheme(4),
    "drq84": lambda t, **_kw: drq_scheme(8, 4, threshold=t),
    "drq42": lambda t, **_kw: drq_scheme(4, 2, threshold=t),
    "odq": lambda t, exec_path="auto", **_kw: odq_scheme(t, exec_path=exec_path),
}

#: Threshold used when a thresholded scheme is requested without one
#: (VGG-16's Table-3 value; a sensible middle of the published range).
DEFAULT_SERVE_THRESHOLD: float = 0.3


def available_schemes() -> list[str]:
    """Registry names accepted by :func:`build_scheme` (CLI ``--scheme``)."""
    return sorted(_NAMED_SCHEMES)


def build_scheme(
    name: str,
    threshold: float | None = None,
    exec_path: str | None = None,
) -> Scheme:
    """Build a scheme from its registry name (``python -m repro serve``).

    ``threshold`` applies to the thresholded schemes (``odq``, ``drq*``);
    when omitted, :data:`DEFAULT_SERVE_THRESHOLD` is used.  ``exec_path``
    selects the ODQ result-generation path (``auto|dense|sparse``;
    ignored by every other scheme).  Unknown names raise ``KeyError``
    listing the registry.
    """
    key = name.lower().replace("-", "").replace("_", "")
    try:
        factory = _NAMED_SCHEMES[key]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; available: {available_schemes()}"
        ) from None
    theta = DEFAULT_SERVE_THRESHOLD if threshold is None else threshold
    extras = {} if exec_path is None else {"exec_path": exec_path}
    return factory(theta, **extras)


def paper_schemes(odq_threshold: float) -> dict[str, Scheme]:
    """The comparison set of Fig. 18/19/21, keyed by display name."""
    return {
        "INT16": static_scheme(16),
        "INT8": static_scheme(8),
        "DRQ 8-4": drq_scheme(8, 4),
        "DRQ 4-2": drq_scheme(4, 2),
        "ODQ 4-2": odq_scheme(odq_threshold),
    }


__all__ = [
    "Scheme",
    "fp32_scheme",
    "static_scheme",
    "drq_scheme",
    "odq_scheme",
    "paper_schemes",
    "available_schemes",
    "build_scheme",
    "DEFAULT_SERVE_THRESHOLD",
]
