"""The paper's contribution: ODQ, the DRQ baseline, and static quantization,
wired together by the quantized inference engine."""

from repro.core.base import (
    ConvLayerInfo,
    LayerRecord,
    ConvExecutor,
    float_conv2d,
    int_conv2d,
)
from repro.core.masks import SensitivityMask, mask_from_magnitude
from repro.core.static_quant import FP32ConvExecutor, StaticQuantConvExecutor
from repro.core.odq import ODQConvExecutor, odq_mixed_conv, odq_weight_qparams
from repro.core.odq_qat import (
    ODQAwareConv2d,
    convert_to_odq_qat,
    convert_from_odq_qat,
    finetune_odq,
)
from repro.core.drq import DRQConvExecutor, region_mean_magnitude, upsample_mask
from repro.core.schemes import (
    Scheme,
    available_schemes,
    build_scheme,
    fp32_scheme,
    static_scheme,
    drq_scheme,
    odq_scheme,
    paper_schemes,
)
from repro.core.pipeline import (
    InstrumentedConv,
    QuantizedInferenceEngine,
    run_scheme,
)
from repro.core.threshold import (
    SweepColumnCache,
    ThresholdSearchResult,
    initial_threshold,
    adaptive_threshold_search,
    ThresholdSweepPoint,
    threshold_sweep,
)
from repro.core.stats import (
    BUCKET_LABELS,
    MotivationLayerStats,
    input_fraction_per_output,
    motivation_stats_for_layer,
    odq_precision_loss_for_layer,
)

__all__ = [
    "ConvLayerInfo",
    "LayerRecord",
    "ConvExecutor",
    "float_conv2d",
    "int_conv2d",
    "SensitivityMask",
    "mask_from_magnitude",
    "FP32ConvExecutor",
    "StaticQuantConvExecutor",
    "ODQConvExecutor",
    "odq_mixed_conv",
    "odq_weight_qparams",
    "ODQAwareConv2d",
    "convert_to_odq_qat",
    "convert_from_odq_qat",
    "finetune_odq",
    "DRQConvExecutor",
    "region_mean_magnitude",
    "upsample_mask",
    "Scheme",
    "available_schemes",
    "build_scheme",
    "fp32_scheme",
    "static_scheme",
    "drq_scheme",
    "odq_scheme",
    "paper_schemes",
    "InstrumentedConv",
    "QuantizedInferenceEngine",
    "run_scheme",
    "SweepColumnCache",
    "ThresholdSearchResult",
    "initial_threshold",
    "adaptive_threshold_search",
    "ThresholdSweepPoint",
    "threshold_sweep",
    "BUCKET_LABELS",
    "MotivationLayerStats",
    "input_fraction_per_output",
    "motivation_stats_for_layer",
    "odq_precision_loss_for_layer",
]
