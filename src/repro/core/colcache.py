"""Per-call quantized column cache + freeze-time packed GEMM operands.

Before this module existed, the ODQ executor's two steps each redid the
same preparation: ``predict_partial`` quantized, padded and bit-split the
input to convolve the high planes, then ``full_result`` quantized, padded
and im2col'ed the *same* input again for the dense INT4 accumulate.  The
paper's accelerator does that work exactly once — the Im2col/Pack engine
(Fig. 12/17) unfolds and packs each input tile into the line buffers, and
both the predictor and executor PE clusters read from there.

:class:`ColumnCache` is the software twin: one ``quantize -> pad ->
im2col`` per layer call, with the bit-plane column matrices derived
lazily so a predictor-only caller (threshold search, mask dumps, the
sparse executor at low sensitivity) never pays for columns it does not
read.  :class:`PackedConvWeights` is the freeze-time counterpart: the
filter bank reshaped into GEMM operands once, including the *cross-term*
matrix ``wmat_rest`` that lets the executor compute the three remaining
Eq.-3 terms in a single GEMM.

The cross-term algebra
----------------------
With ``q = (q_h << n) + q_l`` and ``qw = (w_h << n) + w_l`` (both merge
identities exact, see :mod:`repro.utils.bitops`), the work the executor
owes on top of the predictor's ``(q_h * w_h) << 2n`` is::

    q*qw - (q_h*w_h) << 2n  =  (q_h*w_l) << n + (q_l*w_h) << n + q_l*w_l
                            =  q * w_l  +  q_l * (w_h << n)

(substitute ``q_h << n = q - q_l`` and expand).  Stacking the operands
turns that into one GEMM::

    rest = [cols_full | cols_low] @ [[wmat_low], [wmat_high << n]]
         = cols_rest @ wmat_rest

which is exactly ``acc - (hh << 2n)`` element-for-element, so
``full = partial_int + cols_rest @ wmat_rest`` is *bit-exact* against the
dense accumulate (every partial product of sub-16-bit integers summed
over a receptive field stays far below 2**53, so the float64 GEMM is
exact regardless of summation order — same argument as
:func:`repro.core.base.int_conv2d`).

For the sparse result-generation path, :meth:`ColumnCache.rest_rows`
gathers only the flagged rows via :func:`repro.utils.im2col.im2col_rows`
without ever materialising the dense column matrix.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.quant.bitsplit import split_planes
from repro.quant.uniform import QParams, quantize
from repro.utils.im2col import conv_output_size, im2col, im2col_rows, pad_nchw


@dataclass(frozen=True)
class PackedConvWeights:
    """Freeze-time GEMM operands of one quantized filter bank.

    All matrices are float64 ``(C_in*K*K, C_out)`` (``wmat_rest`` is
    ``(2*C_in*K*K, C_out)``) holding exact integer values, ready to be
    multiplied against :class:`ColumnCache` column matrices without any
    per-call reshape/astype work.
    """

    wmat_full: np.ndarray   #: full INT-q weights, GEMM layout
    wmat_high: np.ndarray   #: W_HBS plane (predictor operand)
    wmat_rest: np.ndarray   #: stacked [w_low; w_high << n] cross-term operand
    w_sum: np.ndarray       #: per-channel sum(qw), shape (1, C_out) float64
    low_bits: int
    c_out: int

    @property
    def high_shift(self) -> int:
        """Left shift of the predictor partial product: ``2 * low_bits``."""
        return 2 * self.low_bits


def pack_conv_weights(
    qw: np.ndarray, qp_w: QParams, low_bits: int
) -> PackedConvWeights:
    """Pack quantized weights ``qw`` (C_out, C_in, K, K) for the GEMM paths."""
    c_out = qw.shape[0]
    planes = split_planes(qw, qp_w, low_bits)
    wmat_full = qw.reshape(c_out, -1).T.astype(np.float64)
    wmat_high = planes.high.reshape(c_out, -1).T.astype(np.float64)
    wmat_low = planes.low.reshape(c_out, -1).T.astype(np.float64)
    # rest = q * w_l + q_l * (w_h << n): stack the two operands vertically
    # to match ColumnCache.rest_* hstacking [cols_full | cols_low].
    wmat_rest = np.vstack([wmat_low, wmat_high * float(1 << low_bits)])
    w_sum = qw.sum(axis=(1, 2, 3)).reshape(1, -1).astype(np.float64)
    return PackedConvWeights(
        wmat_full=np.ascontiguousarray(wmat_full),
        wmat_high=np.ascontiguousarray(wmat_high),
        wmat_rest=np.ascontiguousarray(wmat_rest),
        w_sum=w_sum,
        low_bits=low_bits,
        c_out=c_out,
    )


class PackedWeightsStore:
    """Process-wide content-addressed cache of :class:`PackedConvWeights`.

    Freezing used to re-pack the filter bank on *every* executor freeze —
    including the per-candidate engine rebuilds of the threshold sweep,
    where the quantized weights are identical across candidates (only the
    threshold changes).  The store keys packed operands by a BLAKE2b hash
    of the quantized weight *content* plus the quantization parameters,
    so a re-freeze of unchanged weights is a dictionary hit instead of a
    reshape/transpose/vstack pass per layer.

    Entries are shared across engines: :class:`PackedConvWeights` is a
    frozen dataclass whose arrays every consumer treats as read-only
    GEMM operands, so aliasing is safe (engine deep-copies still copy
    their own arrays).  The store is lock-guarded and LRU-bounded.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[bytes, PackedConvWeights] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def fingerprint(qw: np.ndarray, qp_w: QParams, low_bits: int) -> bytes:
        """Content hash of (quantized weights, qparams, split width)."""
        h = hashlib.blake2b(digest_size=16)
        h.update(
            repr(
                (
                    qw.shape,
                    qw.dtype.str,
                    float(qp_w.scale),
                    int(qp_w.zero_point),
                    int(qp_w.bits),
                    bool(qp_w.signed),
                    int(low_bits),
                )
            ).encode()
        )
        h.update(np.ascontiguousarray(qw).view(np.uint8).data)
        return h.digest()

    def get_or_pack(
        self, qw: np.ndarray, qp_w: QParams, low_bits: int
    ) -> PackedConvWeights:
        """Return cached operands for this weight content, packing once."""
        key = self.fingerprint(qw, qp_w, low_bits)
        with self._lock:
            packed = self._entries.get(key)
            if packed is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return packed
        packed = pack_conv_weights(qw, qp_w, low_bits)  # packs outside the lock
        with self._lock:
            self.misses += 1
            self._entries[key] = packed
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return packed

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def clear(self) -> None:
        """Drop all entries and counters (test isolation helper)."""
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_PACKED_STORE = PackedWeightsStore()


def packed_store() -> PackedWeightsStore:
    """The process-wide packed-weights store."""
    return _PACKED_STORE


class ColumnCache:
    """One layer call's quantize/pad/im2col work, done exactly once.

    Parameters mirror the executing conv layer; ``compensate_low_bits``
    controls whether the expected low-plane activation value ``E[q_l]``
    is measured (on the *unpadded* quantized input, matching the
    historical predictor semantics).

    Laziness contract
    -----------------
    Construction quantizes, pads and bit-splits — all elementwise, and
    the single split serves both the predictor plane and the ``e_low``
    measurement.  Column matrices materialise on first access:

    ``cols_high``   predictor operand, needed by every caller;
    ``cols``        dense INT-q columns, needed only by the dense path;
    ``cols_low``    derived as ``cols - (cols_high << n)`` (exact by the
                    merge identity) when ``cols`` already exists, else
                    gathered per row.

    ``rest_rows(idx)`` never touches ``cols`` unless it was already
    built: it gathers the selected receptive fields straight from the
    padded tensors, which is what makes the sparse executor cheaper than
    the dense one at low sensitive-row density.
    """

    def __init__(
        self,
        x: np.ndarray,
        qp_a: QParams,
        kernel: int,
        stride: int,
        padding: int,
        low_bits: int,
        compensate_low_bits: bool = True,
    ) -> None:
        self.qp_a = qp_a
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self.low_bits = low_bits

        q = quantize(x, qp_a)
        if padding:
            # Pad with the zero point (real 0) *before* the plane split so
            # the predictor sees the same border values the executor does.
            q = pad_nchw(q, padding, value=qp_a.zero_point)
        self.q_pad = q

        self._q_high_pad: np.ndarray | None = None
        if compensate_low_bits:
            # One split serves both consumers: the high plane is the
            # predictor operand, and E[q_l] is the mean of the low plane's
            # *interior* (split_planes is elementwise, so the interior of
            # the padded split equals the split of the unpadded input).
            planes = split_planes(q, qp_a, low_bits)
            self._q_high_pad = planes.high
            low = planes.low
            if padding:
                low = low[:, :, padding:-padding, padding:-padding]
            self.e_low = float(low.mean())
        else:
            self.e_low = 0.0

        self.n = x.shape[0]
        self.oh = conv_output_size(x.shape[2], kernel, stride, padding)
        self.ow = conv_output_size(x.shape[3], kernel, stride, padding)
        self.rows = self.n * self.oh * self.ow

        self._cols: np.ndarray | None = None
        self._cols_high: np.ndarray | None = None
        self._cols_low: np.ndarray | None = None

    @property
    def q_high_pad(self) -> np.ndarray:
        """High (predictor) bit plane of the padded quantized input."""
        if self._q_high_pad is None:
            self._q_high_pad = split_planes(
                self.q_pad, self.qp_a, self.low_bits
            ).high
        return self._q_high_pad

    # -- dense column matrices (lazy) ---------------------------------------

    @property
    def cols(self) -> np.ndarray:
        """Dense float64 columns of the full quantized input."""
        if self._cols is None:
            self._cols = im2col(
                self.q_pad.astype(np.float64), self.kernel, self.stride, 0
            )
        return self._cols

    @property
    def cols_high(self) -> np.ndarray:
        """Dense float64 columns of the high (predictor) plane."""
        if self._cols_high is None:
            self._cols_high = im2col(
                self.q_high_pad.astype(np.float64), self.kernel, self.stride, 0
            )
        return self._cols_high

    @property
    def cols_low(self) -> np.ndarray:
        """Dense low-plane columns, derived from the merge identity."""
        if self._cols_low is None:
            self._cols_low = self.cols - self.cols_high * float(1 << self.low_bits)
        return self._cols_low

    def rest_cols(self) -> np.ndarray:
        """Dense cross-term operand ``[cols_full | cols_low]``."""
        return np.hstack([self.cols, self.cols_low])

    # -- sparse row gathering -----------------------------------------------

    def full_rows(self, rows: np.ndarray) -> np.ndarray:
        """Full-quantized columns for selected rows only.

        Equals ``self.cols[rows]`` bit-for-bit; when the dense matrix was
        never built, only the ``len(rows)`` receptive fields are gathered.
        This is the sparse executor's hot-path operand: one gather + one
        GEMM against ``wmat_full`` reproduces the dense accumulate at the
        selected rows exactly (a float64 GEMM has no low-bit discount, so
        the 1x-width full operand beats the 2x-width cross-term operand
        ``rest_rows`` row-for-row — the latter exists because it is what
        the paper's executor clusters physically compute).
        """
        if self._cols is not None:
            return self._cols[rows]
        return im2col_rows(
            self.q_pad.astype(np.float64), self.kernel, self.stride, rows
        )

    def rest_rows(self, rows: np.ndarray) -> np.ndarray:
        """Cross-term operand for selected rows only.

        Equals ``self.rest_cols()[rows]`` bit-for-bit, but when the dense
        matrices were never built it gathers the ``len(rows)`` receptive
        fields directly from the padded tensors (no dense materialisation).
        """
        if self._cols is not None:
            full = self._cols[rows]
            low = (
                self._cols_low[rows]
                if self._cols_low is not None
                else full - self.cols_high[rows] * float(1 << self.low_bits)
            )
            return np.hstack([full, low])
        full = im2col_rows(
            self.q_pad.astype(np.float64), self.kernel, self.stride, rows
        )
        high = im2col_rows(
            self.q_high_pad.astype(np.float64), self.kernel, self.stride, rows
        )
        return np.hstack([full, full - high * float(1 << self.low_bits)])

    # -- layout helpers ------------------------------------------------------

    def to_nchw(self, mat2d: np.ndarray) -> np.ndarray:
        """Reshape a ``(rows, C_out)`` GEMM result into NCHW."""
        return (
            mat2d.reshape(self.n, self.oh, self.ow, -1).transpose(0, 3, 1, 2)
        )


__all__ = [
    "PackedConvWeights",
    "pack_conv_weights",
    "PackedWeightsStore",
    "packed_store",
    "ColumnCache",
]
