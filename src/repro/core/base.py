"""Shared infrastructure for quantized convolution executors.

A *conv executor* replaces one ``Conv2d`` during quantized inference.  Its
life cycle is:

1. ``calibrate(x)`` — observe the layer's input distribution (FP pass);
2. ``freeze()`` — turn observations into quantization parameters;
3. ``run(x)`` — quantized inference, returning the output feature map and
   updating the layer's :class:`LayerRecord` (MAC counts by precision
   class, sensitivity masks, …).

The records are both the evaluation artefact (Figs 2-5, 9, 10, 18, 22) and
the workload description handed to the accelerator simulator (Figs 11,
19-21) — mirroring the paper's mask-dump methodology.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.gemm import pgemm
from repro.core.masks import SensitivityMask
from repro.nn.layers import Conv2d
from repro.utils.im2col import conv_output_size, im2col, pad_nchw


@dataclass(frozen=True)
class ConvLayerInfo:
    """Static shape description of one convolution layer."""

    name: str
    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int
    padding: int

    @property
    def macs_per_output(self) -> int:
        """MACs needed for one output feature: K*K*C_in."""
        return self.kernel_size * self.kernel_size * self.in_channels

    def output_hw(self, h: int, w: int) -> tuple[int, int]:
        return (
            conv_output_size(h, self.kernel_size, self.stride, self.padding),
            conv_output_size(w, self.kernel_size, self.stride, self.padding),
        )

    @classmethod
    def from_conv(cls, conv: Conv2d, name: str) -> "ConvLayerInfo":
        return cls(
            name=name,
            in_channels=conv.in_channels,
            out_channels=conv.out_channels,
            kernel_size=conv.kernel_size,
            stride=conv.stride,
            padding=conv.padding,
        )


@dataclass
class LayerRecord:
    """Accumulated inference statistics for one conv layer.

    ``macs`` keys are precision classes interpreted by the accelerator
    simulator: ``int16``, ``int8``, ``int4``, ``drq_hi``, ``drq_lo``,
    ``pred_int2`` (ODQ predictor pass), ``exec_int4`` (ODQ executor pass).
    """

    info: ConvLayerInfo
    images: int = 0
    outputs_total: int = 0
    sensitive_total: int = 0
    macs: Counter = field(default_factory=Counter)
    per_channel_sensitive: np.ndarray | None = None
    last_mask: SensitivityMask | None = None
    out_h: int = 0
    out_w: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def sensitive_fraction(self) -> float:
        return self.sensitive_total / self.outputs_total if self.outputs_total else 0.0

    @property
    def insensitive_fraction(self) -> float:
        return 1.0 - self.sensitive_fraction

    @property
    def outputs_per_image(self) -> int:
        return self.out_h * self.out_w * self.info.out_channels

    def add_mask(self, mask: SensitivityMask) -> None:
        self.sensitive_total += mask.sensitive_count
        counts = mask.per_channel_counts()
        if self.per_channel_sensitive is None:
            self.per_channel_sensitive = counts
        else:
            self.per_channel_sensitive = self.per_channel_sensitive + counts
        self.last_mask = mask


class ConvExecutor:
    """Base class; subclasses implement one quantization scheme's conv."""

    def __init__(self, conv: Conv2d, name: str) -> None:
        self.conv = conv
        self.info = ConvLayerInfo.from_conv(conv, name)
        self.record = LayerRecord(info=self.info)
        self.frozen = False

    # -- life cycle --------------------------------------------------------

    def calibrate(self, x: np.ndarray) -> np.ndarray:
        """Observe input statistics; returns the FP32 output by default."""
        return self.reference_forward(x)

    def freeze(self) -> None:
        """Finalize quantization parameters after calibration."""
        self.frozen = True

    def run(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- shared helpers -----------------------------------------------------

    def reference_forward(self, x: np.ndarray) -> np.ndarray:
        """Full-precision convolution (the accuracy reference)."""
        return float_conv2d(
            x, self.conv.weight.data,
            None if self.conv.bias is None else self.conv.bias.data,
            self.conv.stride, self.conv.padding,
        )

    def _note_shapes(self, x: np.ndarray) -> tuple[int, int]:
        oh, ow = self.info.output_hw(x.shape[2], x.shape[3])
        self.record.out_h, self.record.out_w = oh, ow
        n = x.shape[0]
        self.record.images += n
        self.record.outputs_total += n * oh * ow * self.info.out_channels
        return oh, ow


def float_conv2d(
    x: np.ndarray,
    w: np.ndarray,
    b: np.ndarray | None,
    stride: int,
    padding: int,
    cols: np.ndarray | None = None,
) -> np.ndarray:
    """Plain float convolution via im2col + GEMM (no autograd).

    ``cols`` accepts a pre-built column matrix of ``x`` (as produced by
    :func:`repro.utils.im2col.im2col` with the same kernel geometry) so
    callers holding a column cache skip the unfold entirely; ``x`` is
    then only consulted for its shape.
    """
    n = x.shape[0]
    c_out, _, k, _ = w.shape
    oh = conv_output_size(x.shape[2], k, stride, padding)
    ow = conv_output_size(x.shape[3], k, stride, padding)
    if cols is None:
        cols = im2col(x, k, stride, padding)
    out = pgemm(cols, w.reshape(c_out, -1).T)
    if b is not None:
        out = out + b.reshape(1, -1)
    return out.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)


def int_conv2d(
    q: np.ndarray,
    qw: np.ndarray,
    stride: int,
    padding: int,
    pad_value: int = 0,
    cols: np.ndarray | None = None,
) -> np.ndarray:
    """Exact integer convolution.

    Performed in float64 GEMM for BLAS speed; exact because every partial
    product of two sub-16-bit integers accumulated over a receptive field
    stays far below 2**53 (checked in tests/core/test_base.py).

    ``pad_value`` is the integer written into padded positions.  For
    affine-quantized activations this must be the *zero point* — the
    integer that dequantizes to real 0 — otherwise padding injects a
    ``-zp * scale`` bias into every border output.

    ``cols`` accepts a pre-built **float64** column matrix of the padded
    input (see :class:`repro.core.colcache.ColumnCache`).  That overload
    skips the pad/astype/im2col prep *and* the ``np.rint`` + int64
    round-trip: because the cached columns hold exact integer values, the
    GEMM result is already exactly integral, so the float64 output can be
    consumed directly (DRQ's mixed-precision paths and the ODQ executor
    both do).  ``pad_value`` is ignored in that case — the cache already
    owns pad semantics.
    """
    n = q.shape[0]
    c_out, _, k, _ = qw.shape
    oh = conv_output_size(q.shape[2], k, stride, padding)
    ow = conv_output_size(q.shape[3], k, stride, padding)
    if cols is None:
        if padding and pad_value != 0:
            q = pad_nchw(q.astype(np.float64), padding, value=float(pad_value))
            padding = 0
        cols = im2col(q.astype(np.float64), k, stride, padding)
        out = pgemm(cols, qw.reshape(c_out, -1).T.astype(np.float64))
        result = np.rint(out).astype(np.int64)
    else:
        # Pre-built exact-integer float64 columns: the GEMM is exact, so
        # skip the rint/astype round-trip and stay in float64.
        result = pgemm(cols, qw.reshape(c_out, -1).T.astype(np.float64))
    return result.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)


__all__ = [
    "ConvLayerInfo",
    "LayerRecord",
    "ConvExecutor",
    "float_conv2d",
    "int_conv2d",
]
