"""Output-Directed Dynamic Quantization — the paper's core contribution.

The two-step, single-shot scheme of Section 3:

* **Sensitivity prediction.**  Inputs and weights are quantized to INT4
  and split into 2-bit high/low planes.  The predictor convolves only the
  high planes (``I_HBS * W_HBS``, the dominant Eq.-3 term, shifted left by
  ``2*N_LBS``), dequantizes, and thresholds the magnitude to produce a
  sensitivity bit mask over output features.
* **Result generation.**  For predicted-sensitive outputs only, the three
  remaining cross terms of Eq. 3 are computed and added, yielding the
  exact INT4xINT4 result.  Insensitive outputs keep the predictor's cheap
  partial value ("ODQ produces the final output [by] adding the results
  from both the sensitivity predictor and the result executor").

The executor here is numerically faithful: the value returned for a
sensitive output equals a full INT4 static-quantization conv, and the
value for an insensitive output equals the HBS-only partial — tests
verify both identities term-by-term against
:func:`repro.quant.bitsplit.cross_terms`.
"""

from __future__ import annotations

import numpy as np

from repro.config import ODQ_LOW_BITS, ODQ_TOTAL_BITS
from repro.core.base import ConvExecutor, int_conv2d
from repro.core.masks import SensitivityMask, mask_from_magnitude
from repro.obs import trace
from repro.nn.layers import Conv2d
from repro.quant.bitsplit import split_planes
from repro.quant.observer import MinMaxObserver, Observer
from repro.quant.uniform import QParams, affine_qparams, quantize, symmetric_qparams
from repro.utils.im2col import pad_nchw


def odq_weight_qparams(
    w: np.ndarray, total_bits: int, percentile: float = 97.0
) -> QParams:
    """Weight quantizer for ODQ: symmetric, percentile-clipped scale.

    DoReFa training (which the paper builds on) spreads weights uniformly
    over the quantized levels, so their high-order 2 bits carry signal.
    Post-training max-abs scaling does not — outlier weights inflate the
    scale until nearly every weight quantizes into [-3, 3], whose
    sign-magnitude high plane is 0 and the predictor goes blind.
    Clipping the scale at a high percentile of |w| restores level
    occupancy (saturating only the outlier tail), which is the
    post-training analog of DoReFa's weight transform.
    """
    if not 50.0 < percentile <= 100.0:
        raise ValueError("percentile must be in (50, 100]")
    if percentile >= 100.0:
        scale_src = float(np.max(np.abs(w)))
    else:
        scale_src = float(np.percentile(np.abs(w), percentile))
    return symmetric_qparams(max(scale_src, 1e-8), total_bits)


def odq_mixed_conv(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
    threshold: float,
    qp_a: QParams,
    qp_w: QParams,
    low_bits: int = ODQ_LOW_BITS,
    compensate_low_bits: bool = True,
) -> dict:
    """The ODQ two-step forward pass as a pure function.

    Returns ``{"out", "mask", "partial", "full"}`` where ``out`` equals
    ``full`` at sensitive positions and ``partial`` elsewhere.  Shared by
    the inference executor and the QAT layer so training and deployment
    see identical semantics.

    ``compensate_low_bits`` adds the expected low-plane contribution
    ``E[q_l] * sum(qw)`` (a per-channel constant — free in hardware, the
    Im2col/Pack engine already touches the full 4-bit operands) to the
    predictor partial.  The HBS-only partial truncates the activations'
    low two bits, whose mean is positive, so the raw partial consistently
    underestimates output magnitude; the correction roughly halves the
    predictor's miss rate (measured in tests/core/test_odq.py).
    """
    q = quantize(x, qp_a)
    qw = quantize(weight, qp_w)
    w_sum = qw.sum(axis=(1, 2, 3)).reshape(1, -1, 1, 1)
    qw_high = split_planes(qw, qp_w, low_bits).high

    e_low = (
        float(split_planes(q, qp_a, low_bits).low.mean())
        if compensate_low_bits
        else 0.0
    )
    if padding:
        q = pad_nchw(q, padding, value=qp_a.zero_point).astype(np.int64)
    q_high = split_planes(q, qp_a, low_bits).high

    scale = qp_a.scale * qp_w.scale
    hh = int_conv2d(q_high, qw_high, stride, 0)
    partial = scale * ((hh << (2 * low_bits)) + (e_low - qp_a.zero_point) * w_sum)
    acc = int_conv2d(q, qw, stride, 0)
    full = scale * (acc - qp_a.zero_point * w_sum)
    if bias is not None:
        partial = partial + bias.reshape(1, -1, 1, 1)
        full = full + bias.reshape(1, -1, 1, 1)
    mask = mask_from_magnitude(partial, threshold)
    out = np.where(mask.mask, full, partial)
    return {"out": out, "mask": mask, "partial": partial, "full": full}


class ODQConvExecutor(ConvExecutor):
    """One convolution layer under output-directed dynamic quantization.

    Parameters
    ----------
    conv:
        The trained full-precision layer being executed.
    name:
        Dotted module path (used in reports and mask dumps).
    threshold:
        Sensitivity threshold compared against the magnitude of the
        *dequantized* predictor partial result.  The paper uses one
        threshold per model (Table 3); see ``repro.core.threshold`` for
        the adaptive search that chooses it.
    total_bits / low_bits:
        Operand width and low-plane width; the paper's instance is 4/2.
    """

    def __init__(
        self,
        conv: Conv2d,
        name: str,
        threshold: float,
        total_bits: int = ODQ_TOTAL_BITS,
        low_bits: int = ODQ_LOW_BITS,
        observer: Observer | None = None,
        keep_masks: bool = True,
        collect_partials: bool = False,
        weight_percentile: float = 97.0,
        dynamic_act: bool = True,
        compensate_low_bits: bool = True,
        threshold_mode: str = "absolute",
    ):
        super().__init__(conv, name)
        self.collect_partials = collect_partials
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if not 0 < low_bits < total_bits:
            raise ValueError("need 0 < low_bits < total_bits")
        self.threshold = threshold
        self.total_bits = total_bits
        self.low_bits = low_bits
        self.observer = observer or MinMaxObserver()
        self.keep_masks = keep_masks
        self.weight_percentile = weight_percentile
        #: Dynamic activation ranges (per batch, like the QAT layer and the
        #: paper's runtime quantization); False falls back to the observer.
        self.dynamic_act = dynamic_act
        #: Per-channel E[q_l]*sum(qw) correction of the predictor partial
        #: (see odq_mixed_conv); disable to get the raw Eq.-3 HH term.
        self.compensate_low_bits = compensate_low_bits
        #: "absolute": compare |partial| against ``threshold`` directly
        #: (the paper's rule; meaningful when layer output scales are
        #: uniform, as DoReFa training makes them).  "scaled": compare
        #: against ``threshold * std(layer output)`` with the std frozen
        #: at calibration — the substrate adaptation that restores the
        #: paper's one-threshold-per-model property when output scales
        #: vary across layers (see DESIGN.md).
        if threshold_mode not in ("absolute", "scaled"):
            raise ValueError(f"unknown threshold_mode {threshold_mode!r}")
        self.threshold_mode = threshold_mode
        self.output_std: float | None = None
        self._std_acc: list[float] = []

        self.qp_a: QParams | None = None
        self.qp_w: QParams | None = None
        self._qw: np.ndarray | None = None       # full INT4 weights
        self._qw_high: np.ndarray | None = None  # W_HBS plane
        self._w_sum: np.ndarray | None = None    # zero-point correction

    # -- calibration -------------------------------------------------------------

    def calibrate(self, x: np.ndarray) -> np.ndarray:
        self.observer.observe(x)
        out = self.reference_forward(x)
        if self.threshold_mode == "scaled":
            self._std_acc.append(float(out.std()))
        return out

    def freeze(self) -> None:
        w = self.conv.weight.data
        self.qp_w = odq_weight_qparams(w, self.total_bits, self.weight_percentile)
        if self.threshold_mode == "scaled":
            self.output_std = float(np.mean(self._std_acc)) if self._std_acc else 1.0
        if not self.dynamic_act:
            self.qp_a = self.observer.qparams(self.total_bits, signed=False)
        self._qw = quantize(w, self.qp_w)
        planes = split_planes(self._qw, self.qp_w, self.low_bits)
        self._qw_high = planes.high
        self._w_sum = self._qw.sum(axis=(1, 2, 3)).reshape(1, -1, 1, 1)
        super().freeze()

    def _qp_a_for(self, x: np.ndarray) -> QParams:
        """Activation qparams: per-batch range when ``dynamic_act``."""
        if self.dynamic_act:
            return affine_qparams(float(x.min()), float(x.max()), self.total_bits)
        return self.qp_a

    @property
    def effective_threshold(self) -> float:
        """The absolute magnitude the mask actually compares against."""
        if self.threshold_mode == "scaled":
            sigma = self.output_std if self.output_std else 1.0
            return self.threshold * sigma
        return self.threshold

    # -- the two-step inference -----------------------------------------------------

    def predict_partial(self, x: np.ndarray) -> np.ndarray:
        """Sensitivity-prediction step: dequantized HBS*HBS partial output.

        This is the value the predictor PE arrays produce — the dominant
        Eq.-3 term plus the (precomputed, per-channel) zero-point and bias
        constants, so its magnitude is directly comparable to the final
        output feature.
        """
        qp_a = self._qp_a_for(x)
        with trace.span("odq.quantize", layer=self.info.name):
            q = quantize(x, qp_a)
        e_low = (
            float(split_planes(q, qp_a, self.low_bits).low.mean())
            if self.compensate_low_bits
            else 0.0
        )
        if self.conv.padding:
            # Pad with the zero point (real 0) *before* the plane split so
            # the predictor sees the same border values the executor does.
            q = pad_nchw(q.astype(np.int64), self.conv.padding,
                         value=qp_a.zero_point).astype(np.int64)
        q_high = split_planes(q, qp_a, self.low_bits).high
        hh = int_conv2d(q_high, self._qw_high, self.conv.stride, 0)
        shifted = hh << (2 * self.low_bits)
        partial = qp_a.scale * self.qp_w.scale * (
            shifted + (e_low - qp_a.zero_point) * self._w_sum
        )
        if self.conv.bias is not None:
            partial = partial + self.conv.bias.data.reshape(1, -1, 1, 1)
        return partial

    def full_result(self, x: np.ndarray) -> np.ndarray:
        """Exact INT4 static-quantization output (predictor + all executor terms)."""
        qp_a = self._qp_a_for(x)
        q = quantize(x, qp_a)
        acc = int_conv2d(q, self._qw, self.conv.stride, self.conv.padding,
                         pad_value=qp_a.zero_point)
        out = qp_a.scale * self.qp_w.scale * (
            acc - qp_a.zero_point * self._w_sum
        )
        if self.conv.bias is not None:
            out = out + self.conv.bias.data.reshape(1, -1, 1, 1)
        return out

    def run(self, x: np.ndarray) -> np.ndarray:
        if not self.frozen:
            raise RuntimeError(f"executor {self.info.name} not frozen; calibrate first")
        self._note_shapes(x)
        name = self.info.name

        with trace.span("odq.run", layer=name) as sp:
            with trace.span("odq.predict_partial", layer=name):
                partial = self.predict_partial(x)
            if self.collect_partials:
                flat = np.abs(partial).reshape(-1)
                step = max(1, flat.size // 4096)
                self.record.extra.setdefault("partial_abs_samples", []).append(flat[::step])
            with trace.span("odq.mask", layer=name):
                mask = mask_from_magnitude(partial, self.effective_threshold)
            with trace.span("odq.full_result", layer=name):
                full = self.full_result(x)
            out = np.where(mask.mask, full, partial)

            self.record.add_mask(mask)
            if not self.keep_masks:
                self.record.last_mask = None
            n_out = partial.size
            mpo = self.info.macs_per_output
            # Predictor: one INT2 MAC stream over every output feature.
            self.record.macs["pred_int2"] += n_out * mpo
            # Executor: the remaining three cross terms, only for sensitive outputs.
            self.record.macs["exec_int4"] += mask.sensitive_count * mpo
            # Profiling counters: where the MACs went (and the dense-INT4
            # work the insensitive outputs skipped).
            sp.add("outputs", n_out)
            sp.add("sensitive", mask.sensitive_count)
            sp.add("macs_pred", n_out * mpo)
            sp.add("macs_exec", mask.sensitive_count * mpo)
            sp.add("macs_skipped", (n_out - mask.sensitive_count) * mpo)
        return out

    # -- introspection ---------------------------------------------------------------

    def sensitivity_mask(self, x: np.ndarray) -> SensitivityMask:
        """Run only the prediction step and return the bit mask."""
        return mask_from_magnitude(self.predict_partial(x), self.effective_threshold)


__all__ = ["ODQConvExecutor"]
