"""Output-Directed Dynamic Quantization — the paper's core contribution.

The two-step, single-shot scheme of Section 3:

* **Sensitivity prediction.**  Inputs and weights are quantized to INT4
  and split into 2-bit high/low planes.  The predictor convolves only the
  high planes (``I_HBS * W_HBS``, the dominant Eq.-3 term, shifted left by
  ``2*N_LBS``), dequantizes, and thresholds the magnitude to produce a
  sensitivity bit mask over output features.
* **Result generation.**  For predicted-sensitive outputs only, the three
  remaining cross terms of Eq. 3 are computed and added, yielding the
  exact INT4xINT4 result.  Insensitive outputs keep the predictor's cheap
  partial value ("ODQ produces the final output [by] adding the results
  from both the sensitivity predictor and the result executor").

The executor here is numerically faithful: the value returned for a
sensitive output equals a full INT4 static-quantization conv, and the
value for an insensitive output equals the HBS-only partial — tests
verify both identities term-by-term against
:func:`repro.quant.bitsplit.cross_terms`.

Execution paths
---------------
Historically the software executor computed the dense full-INT4 result
for *every* output and ``np.where``-selected, so the ``macs_skipped``
the obs profile reports never became wall-clock savings.  The executor
now mirrors the paper's hardware dataflow (and DRQ's region-wise
executor): all per-call preparation is done once in a
:class:`~repro.core.colcache.ColumnCache`, and result generation picks
between

``dense``
    one GEMM of the full column matrix (wins when most outputs are
    sensitive — the gather/scatter overhead is not worth it);
``sparse``
    gather only the *sensitive rows* of the column matrix (rows whose
    spatial position has at least one sensitive output channel), one
    GEMM against the packed full operand, scatter the exact rows into
    the predictor partial — bit-exact with the dense path.  The
    hardware's executor clusters compute the same integers as the three
    remaining Eq.-3 cross terms against ``wmat_rest`` (see
    :mod:`repro.core.colcache` for the algebra and exactness argument);
    in software the 1x-width full operand wins, so that is the hot path;
``auto``
    per layer-call dispatch on the sensitive-row density against
    :data:`SPARSE_ROW_CROSSOVER` (measured in
    ``benchmarks/bench_odq_sparse.py``).
"""

from __future__ import annotations

import numpy as np

from repro.config import ODQ_LOW_BITS, ODQ_TOTAL_BITS
from repro.core.base import ConvExecutor
from repro.core.colcache import ColumnCache, PackedConvWeights, packed_store
from repro.core.gemm import pgemm
from repro.core.masks import SensitivityMask, mask_from_magnitude
from repro.obs import trace
from repro.nn.layers import Conv2d
from repro.quant.observer import MinMaxObserver, Observer
from repro.quant.uniform import QParams, affine_qparams, quantize, symmetric_qparams

#: Result-generation paths accepted by the executor / scheme / CLI knob.
EXEC_PATHS = ("auto", "dense", "sparse")

#: ``auto`` dispatch crossover: fraction of output *rows* (spatial
#: positions with >= 1 sensitive channel) below which the sparse
#: gather/GEMM/scatter beats the dense GEMM.  Pure FLOPs break even at
#: 1.0 (the sparse GEMM uses the same full operand, just fewer rows);
#: the gather's patch-copy and the scatter pull the measured crossover
#: down only slightly — benchmarks/bench_odq_sparse.py measures ~0.9 on
#: resnet20/cifar10 at default scale, so only near-saturated masks go
#: dense.
SPARSE_ROW_CROSSOVER = 0.9


def odq_weight_qparams(
    w: np.ndarray, total_bits: int, percentile: float = 97.0
) -> QParams:
    """Weight quantizer for ODQ: symmetric, percentile-clipped scale.

    DoReFa training (which the paper builds on) spreads weights uniformly
    over the quantized levels, so their high-order 2 bits carry signal.
    Post-training max-abs scaling does not — outlier weights inflate the
    scale until nearly every weight quantizes into [-3, 3], whose
    sign-magnitude high plane is 0 and the predictor goes blind.
    Clipping the scale at a high percentile of |w| restores level
    occupancy (saturating only the outlier tail), which is the
    post-training analog of DoReFa's weight transform.
    """
    if not 50.0 < percentile <= 100.0:
        raise ValueError("percentile must be in (50, 100]")
    if w.size == 0:
        raise ValueError("cannot derive weight qparams from an empty tensor")
    if percentile >= 100.0:
        scale_src = float(np.max(np.abs(w)))
    else:
        scale_src = float(np.percentile(np.abs(w), percentile))
    return symmetric_qparams(max(scale_src, 1e-8), total_bits)


def _partial_2d(cache: ColumnCache, packed: PackedConvWeights,
                scale: float) -> tuple[np.ndarray, np.ndarray]:
    """(dequantized predictor partial, raw HH GEMM) in (rows, C_out) layout.

    The HH GEMM result holds exact integer values in float64 (see
    :mod:`repro.core.colcache`); it is returned so the sparse path can
    reassemble the full integer accumulate without recomputing it.
    """
    hh2d = pgemm(cache.cols_high, packed.wmat_high)
    partial2d = scale * (
        hh2d * float(1 << packed.high_shift)
        + (cache.e_low - cache.qp_a.zero_point) * packed.w_sum
    )
    return partial2d, hh2d


def _dense_full_2d(cache: ColumnCache, packed: PackedConvWeights,
                   scale: float) -> np.ndarray:
    """Exact INT4 static-quantization output, dense GEMM, (rows, C_out)."""
    acc2d = pgemm(cache.cols, packed.wmat_full)
    return scale * (acc2d - cache.qp_a.zero_point * packed.w_sum)


def _sparse_full_rows(
    cache: ColumnCache,
    packed: PackedConvWeights,
    scale: float,
    sel: np.ndarray,
) -> np.ndarray:
    """Exact full output for the selected rows only, ``(len(sel), C_out)``.

    One gather + one GEMM against the full packed operand — literally
    :func:`_dense_full_2d` restricted to the selected rows, so the result
    is bit-exact by construction.  The hardware-faithful alternative
    (reuse the predictor's HH term, one GEMM against the cross-term
    operand ``wmat_rest``) computes the same integers but needs a
    2x-wide operand and a second gather; a float64 GEMM gives no low-bit
    discount, so the full-operand form wins row-for-row (the cross-term
    machinery lives on in :mod:`repro.core.colcache` — it is what the
    paper's executor clusters physically compute, and the tests pin its
    algebra against this path).
    """
    acc_rows = pgemm(cache.full_rows(sel), packed.wmat_full)
    return scale * (acc_rows - cache.qp_a.zero_point * packed.w_sum)


def odq_mixed_conv(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
    threshold: float,
    qp_a: QParams,
    qp_w: QParams,
    low_bits: int = ODQ_LOW_BITS,
    compensate_low_bits: bool = True,
    exec_path: str = "dense",
    with_cache: bool = False,
) -> dict:
    """The ODQ two-step forward pass as a pure function.

    Returns ``{"out", "mask", "partial", "full"}`` where ``out`` equals
    ``full`` at sensitive positions and ``partial`` elsewhere.  Shared by
    the inference executor and the QAT layer so training and deployment
    see identical semantics.

    ``compensate_low_bits`` adds the expected low-plane contribution
    ``E[q_l] * sum(qw)`` (a per-channel constant — free in hardware, the
    Im2col/Pack engine already touches the full 4-bit operands) to the
    predictor partial.  The HBS-only partial truncates the activations'
    low two bits, whose mean is positive, so the raw partial consistently
    underestimates output magnitude; the correction roughly halves the
    predictor's miss rate (measured in tests/core/test_odq.py).

    ``exec_path`` selects result generation (see module docstring).  The
    default ``"dense"`` always materialises the dense ``"full"`` array
    (the QAT layer reads its statistics); under ``"sparse"``/``"auto"``
    the full result is only computed at sensitive rows, ``out`` is still
    exact, and ``"full"`` is ``None`` whenever the sparse path ran.

    ``with_cache`` additionally returns the per-call
    :class:`~repro.core.colcache.ColumnCache` under ``"cache"`` so
    callers (the QAT backward pass) can reuse the column matrix instead
    of re-unfolding the input.
    """
    if exec_path not in EXEC_PATHS:
        raise ValueError(f"unknown exec_path {exec_path!r}; expected one of {EXEC_PATHS}")
    qw = quantize(weight, qp_w)
    # Content-addressed: repeated calls with unchanged weights (QAT eval
    # loops, notebook re-runs) hit the packed-operand store.
    packed = packed_store().get_or_pack(qw, qp_w, low_bits)
    kernel = weight.shape[2]
    cache = ColumnCache(  # repro: noqa[PLN501] — pure-function API: no engine/plan owns a cache provider here
        x, qp_a, kernel, stride, padding, low_bits, compensate_low_bits
    )
    scale = qp_a.scale * qp_w.scale
    bias2d = None if bias is None else bias.reshape(1, -1)

    partial2d, hh2d = _partial_2d(cache, packed, scale)
    if bias2d is not None:
        partial2d = partial2d + bias2d
    partial = cache.to_nchw(partial2d)
    mask = mask_from_magnitude(partial, threshold)

    any_rows = mask.mask.any(axis=1).reshape(-1)
    n_sense_rows = int(np.count_nonzero(any_rows))
    path = exec_path
    if path == "auto":
        path = ("sparse"
                if n_sense_rows <= SPARSE_ROW_CROSSOVER * cache.rows
                else "dense")

    if path == "dense":
        full2d = _dense_full_2d(cache, packed, scale)
        if bias2d is not None:
            full2d = full2d + bias2d
        full = cache.to_nchw(full2d)
        out = np.where(mask.mask, full, partial)
    else:
        out2d = partial2d.copy()
        sel = np.flatnonzero(any_rows)
        if sel.size:
            full_rows = _sparse_full_rows(cache, packed, scale, sel)
            if bias2d is not None:
                full_rows = full_rows + bias2d
            ni, rem = np.divmod(sel, cache.oh * cache.ow)
            oi, oj = np.divmod(rem, cache.ow)
            mask_rows = mask.mask[ni, :, oi, oj]
            out2d[sel] = np.where(mask_rows, full_rows, out2d[sel])
        full = None
        out = cache.to_nchw(out2d)

    result = {"out": out, "mask": mask, "partial": partial, "full": full,
              "exec_path": path}
    if with_cache:
        result["cache"] = cache
        result["packed"] = packed
    return result


class ODQConvExecutor(ConvExecutor):
    """One convolution layer under output-directed dynamic quantization.

    Parameters
    ----------
    conv:
        The trained full-precision layer being executed.
    name:
        Dotted module path (used in reports and mask dumps).
    threshold:
        Sensitivity threshold compared against the magnitude of the
        *dequantized* predictor partial result.  The paper uses one
        threshold per model (Table 3); see ``repro.core.threshold`` for
        the adaptive search that chooses it.
    total_bits / low_bits:
        Operand width and low-plane width; the paper's instance is 4/2.
    exec_path:
        Result-generation path: ``"auto"`` (default; per-call dispatch on
        sensitive-row density), ``"dense"``, or ``"sparse"``.  All three
        are bit-exact; only wall-clock differs.
    sparse_crossover:
        ``auto`` picks the sparse path when the fraction of output rows
        containing at least one sensitive channel is at or below this.
    """

    def __init__(
        self,
        conv: Conv2d,
        name: str,
        threshold: float,
        total_bits: int = ODQ_TOTAL_BITS,
        low_bits: int = ODQ_LOW_BITS,
        observer: Observer | None = None,
        keep_masks: bool = True,
        collect_partials: bool = False,
        weight_percentile: float = 97.0,
        dynamic_act: bool = True,
        compensate_low_bits: bool = True,
        threshold_mode: str = "absolute",
        exec_path: str = "auto",
        sparse_crossover: float = SPARSE_ROW_CROSSOVER,
    ) -> None:
        super().__init__(conv, name)
        self.collect_partials = collect_partials
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if not 0 < low_bits < total_bits:
            raise ValueError("need 0 < low_bits < total_bits")
        if exec_path not in EXEC_PATHS:
            raise ValueError(
                f"unknown exec_path {exec_path!r}; expected one of {EXEC_PATHS}"
            )
        if not 0.0 <= sparse_crossover <= 1.0:
            raise ValueError("sparse_crossover must be in [0, 1]")
        self.threshold = threshold
        self.total_bits = total_bits
        self.low_bits = low_bits
        self.observer = observer or MinMaxObserver()
        self.keep_masks = keep_masks
        self.weight_percentile = weight_percentile
        #: Dynamic activation ranges (per batch, like the QAT layer and the
        #: paper's runtime quantization); False falls back to the observer.
        self.dynamic_act = dynamic_act
        #: Per-channel E[q_l]*sum(qw) correction of the predictor partial
        #: (see odq_mixed_conv); disable to get the raw Eq.-3 HH term.
        self.compensate_low_bits = compensate_low_bits
        #: Result-generation path knob (``auto|dense|sparse``).
        self.exec_path = exec_path
        self.sparse_crossover = sparse_crossover
        #: "absolute": compare |partial| against ``threshold`` directly
        #: (the paper's rule; meaningful when layer output scales are
        #: uniform, as DoReFa training makes them).  "scaled": compare
        #: against ``threshold * std(layer output)`` with the std frozen
        #: at calibration — the substrate adaptation that restores the
        #: paper's one-threshold-per-model property when output scales
        #: vary across layers (see DESIGN.md).
        if threshold_mode not in ("absolute", "scaled"):
            raise ValueError(f"unknown threshold_mode {threshold_mode!r}")
        self.threshold_mode = threshold_mode
        self.output_std: float | None = None
        self._std_acc: list[float] = []

        #: Optional cross-call cache provider.  When set, ``_build_cache``
        #: delegates to ``cache_provider(self, x, compensate)`` instead of
        #: constructing a fresh :class:`ColumnCache`; sweep drivers
        #: (:class:`repro.core.threshold.SweepColumnCache`) install a
        #: content-addressed store here so the quantize→pad→im2col prep
        #: for an unchanged input is paid once across many thresholds.
        self.cache_provider = None

        self.qp_a: QParams | None = None
        self.qp_w: QParams | None = None
        self._qw: np.ndarray | None = None       # full INT4 weights
        self._qw_high: np.ndarray | None = None  # W_HBS plane
        self._w_sum: np.ndarray | None = None    # zero-point correction
        self._packed: PackedConvWeights | None = None  # GEMM operands

    # -- calibration -------------------------------------------------------------

    def calibrate(self, x: np.ndarray) -> np.ndarray:
        self.observer.observe(x)
        out = self.reference_forward(x)
        if self.threshold_mode == "scaled":
            self._std_acc.append(float(out.std()))
        return out

    def freeze(self) -> None:
        w = self.conv.weight.data
        self.qp_w = odq_weight_qparams(w, self.total_bits, self.weight_percentile)
        if self.threshold_mode == "scaled":
            self.output_std = float(np.mean(self._std_acc)) if self._std_acc else 1.0
        if not self.dynamic_act:
            self.qp_a = self.observer.qparams(self.total_bits, signed=False)
        self._qw = quantize(w, self.qp_w)
        # Keyed by weight content: re-freezing unchanged weights (sweep
        # candidates, engine rebuilds) reuses the packed operands.
        self._packed = packed_store().get_or_pack(
            self._qw, self.qp_w, self.low_bits
        )
        # Tensor-shaped twins kept for introspection and the mask dumps.
        self._qw_high = self._packed.wmat_high.T.reshape(self._qw.shape).astype(np.int64)
        self._w_sum = self._qw.sum(axis=(1, 2, 3)).reshape(1, -1, 1, 1)
        super().freeze()

    def _qp_a_for(self, x: np.ndarray) -> QParams:
        """Activation qparams: per-batch range when ``dynamic_act``."""
        if self.dynamic_act:
            return affine_qparams(float(x.min()), float(x.max()), self.total_bits)
        return self.qp_a

    @property
    def effective_threshold(self) -> float:
        """The absolute magnitude the mask actually compares against."""
        if self.threshold_mode == "scaled":
            sigma = self.output_std if self.output_std else 1.0
            return self.threshold * sigma
        return self.threshold

    # -- shared per-call preparation --------------------------------------------

    def _build_cache(self, x: np.ndarray,
                     compensate: bool | None = None) -> ColumnCache:
        """Quantize → pad → im2col exactly once for this layer call.

        With a :attr:`cache_provider` installed the prep may be shared
        *across* calls too: the provider returns a previously-built cache
        when the same input bytes reach this layer again (the cache is
        immutable during :meth:`run`, so reuse is safe and bit-exact).
        """
        if self.cache_provider is not None:
            return self.cache_provider(
                self, x,
                self.compensate_low_bits if compensate is None else compensate,
            )
        return self._fresh_cache(x, compensate)

    def _fresh_cache(self, x: np.ndarray,
                     compensate: bool | None = None) -> ColumnCache:
        """Unconditionally construct the per-call :class:`ColumnCache`."""
        return ColumnCache(
            x,
            self._qp_a_for(x),
            self.conv.kernel_size,
            self.conv.stride,
            self.conv.padding,
            self.low_bits,
            self.compensate_low_bits if compensate is None else compensate,
        )

    def _scale(self, cache: ColumnCache) -> float:
        return cache.qp_a.scale * self.qp_w.scale

    def _bias2d(self) -> np.ndarray | None:
        return None if self.conv.bias is None else self.conv.bias.data.reshape(1, -1)

    def _partial_pair(self, cache: ColumnCache) -> tuple[np.ndarray, np.ndarray]:
        """(partial2d with bias, raw hh2d) — the predictor step on a cache."""
        partial2d, hh2d = _partial_2d(cache, self._packed, self._scale(cache))
        bias2d = self._bias2d()
        if bias2d is not None:
            partial2d = partial2d + bias2d
        return partial2d, hh2d

    def _dense_full(self, cache: ColumnCache) -> np.ndarray:
        full2d = _dense_full_2d(cache, self._packed, self._scale(cache))
        bias2d = self._bias2d()
        if bias2d is not None:
            full2d = full2d + bias2d
        return cache.to_nchw(full2d)

    # -- the two-step inference -----------------------------------------------------

    def predict_partial(self, x: np.ndarray) -> np.ndarray:
        """Sensitivity-prediction step: dequantized HBS*HBS partial output.

        This is the value the predictor PE arrays produce — the dominant
        Eq.-3 term plus the (precomputed, per-channel) zero-point and bias
        constants, so its magnitude is directly comparable to the final
        output feature.
        """
        with trace.span("odq.quantize", layer=self.info.name):
            cache = self._build_cache(x)
        partial2d, _ = self._partial_pair(cache)
        return cache.to_nchw(partial2d)

    def full_result(self, x: np.ndarray) -> np.ndarray:
        """Exact INT4 static-quantization output (predictor + all executor terms)."""
        # Standalone callers never read e_low, so skip measuring it.
        cache = self._build_cache(x, compensate=False)
        return self._dense_full(cache)

    def run(self, x: np.ndarray) -> np.ndarray:
        if not self.frozen:
            raise RuntimeError(f"executor {self.info.name} not frozen; calibrate first")
        self._note_shapes(x)
        name = self.info.name
        c_out = self.info.out_channels
        mpo = self.info.macs_per_output
        ckk = self._packed.wmat_full.shape[0]

        with trace.span("odq.run", layer=name) as sp:
            with trace.span("odq.quantize", layer=name):
                cache = self._build_cache(x)
            with trace.span("odq.predict_partial", layer=name):
                partial2d, _ = self._partial_pair(cache)
                partial = cache.to_nchw(partial2d)
            if self.collect_partials:
                flat = np.abs(partial).reshape(-1)
                step = max(1, flat.size // 4096)
                self.record.extra.setdefault("partial_abs_samples", []).append(flat[::step])
            with trace.span("odq.mask", layer=name):
                mask = mask_from_magnitude(partial, self.effective_threshold)
                # Row = one spatial output position; a row is computed by
                # the sparse path when *any* of its channels is sensitive.
                any_rows = mask.mask.any(axis=1).reshape(-1)
                n_sense_rows = int(np.count_nonzero(any_rows))

            path = self.exec_path
            if path == "auto":
                path = ("sparse"
                        if n_sense_rows <= self.sparse_crossover * cache.rows
                        else "dense")

            with trace.span("odq.full_result", layer=name, path=path) as fsp:
                if path == "dense":
                    full = self._dense_full(cache)
                    out = np.where(mask.mask, full, partial)
                    rows_computed = cache.rows
                    flops_full = cache.rows * ckk * c_out
                else:
                    # Scatter in place: ``partial`` is a view of
                    # ``partial2d`` (see ColumnCache.to_nchw) and is not
                    # read again after the mask, so no copy is needed.
                    out2d = partial2d
                    sel = np.flatnonzero(any_rows)
                    if sel.size:
                        full_rows = _sparse_full_rows(
                            cache, self._packed, self._scale(cache), sel
                        )
                        bias2d = self._bias2d()
                        if bias2d is not None:
                            full_rows = full_rows + bias2d
                        # Gather only the selected rows of the mask
                        # ((R, C_out)) instead of transposing the whole
                        # NCHW mask into row-major layout.
                        ni, rem = np.divmod(sel, cache.oh * cache.ow)
                        oi, oj = np.divmod(rem, cache.ow)
                        mask_rows = mask.mask[ni, :, oi, oj]
                        out2d[sel] = np.where(mask_rows, full_rows, out2d[sel])
                    out = partial
                    rows_computed = n_sense_rows
                    flops_full = n_sense_rows * ckk * c_out
                flops_full_dense = cache.rows * ckk * c_out
                fsp.add("rows", cache.rows)
                fsp.add("rows_computed", rows_computed)
                fsp.add("flops_full", flops_full)
                fsp.add("flops_full_dense", flops_full_dense)

            self.record.add_mask(mask)
            if not self.keep_masks:
                self.record.last_mask = None
            self._note_exec_path(path, cache.rows, rows_computed,
                                 flops_full, flops_full_dense)
            n_out = partial.size
            # Predictor: one INT2 MAC stream over every output feature.
            self.record.macs["pred_int2"] += n_out * mpo
            # Executor: the remaining three cross terms, only for sensitive outputs.
            self.record.macs["exec_int4"] += mask.sensitive_count * mpo
            # Profiling counters: where the MACs went (and the dense-INT4
            # work the insensitive outputs skipped).
            sp.set(path=path)
            sp.add("outputs", n_out)
            sp.add("sensitive", mask.sensitive_count)
            sp.add("macs_pred", n_out * mpo)
            sp.add("macs_exec", mask.sensitive_count * mpo)
            sp.add("macs_skipped", (n_out - mask.sensitive_count) * mpo)
        return out

    def _note_exec_path(self, path: str, rows: int, rows_computed: int,
                        flops_full: int, flops_full_dense: int) -> None:
        """Accumulate dispatch statistics on the layer record."""
        extra = self.record.extra
        counts = extra.setdefault("exec_path_calls", {})
        counts[path] = counts.get(path, 0) + 1
        extra["exec_rows_total"] = extra.get("exec_rows_total", 0) + rows
        extra["exec_rows_computed"] = (
            extra.get("exec_rows_computed", 0) + rows_computed
        )
        extra["exec_flops_full"] = extra.get("exec_flops_full", 0) + flops_full
        extra["exec_flops_full_dense"] = (
            extra.get("exec_flops_full_dense", 0) + flops_full_dense
        )

    # -- introspection ---------------------------------------------------------------

    def sensitivity_mask(self, x: np.ndarray) -> SensitivityMask:
        """Run only the prediction step and return the bit mask."""
        return mask_from_magnitude(self.predict_partial(x), self.effective_threshold)


__all__ = [
    "ODQConvExecutor",
    "odq_mixed_conv",
    "odq_weight_qparams",
    "EXEC_PATHS",
    "SPARSE_ROW_CROSSOVER",
]
