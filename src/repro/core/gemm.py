"""Process-wide parallel tiled GEMM: row-blocked ``a @ b`` on a thread pool.

Every inference path in this repo — dense conv, the ODQ sparse fast
path, the QAT backward, float conv — bottoms out in a single GEMM, and
the BLAS this image ships is single-threaded.  The paper's accelerator
gets its throughput by partitioning *output* work across PE arrays
(Table 1 dynamic allocation); the software analogue is splitting the
output rows of ``a @ b`` into contiguous blocks and computing each block
on its own thread.  NumPy's ``matmul`` releases the GIL for
float32/float64 operands, so the blocks genuinely run in parallel.

:func:`pgemm` is a drop-in for ``a @ b``:

* **Bit-exact.**  Row-blocking never re-associates any accumulation —
  output row ``i`` is the same ``a[i] @ b`` dot products whichever block
  computes it.  The one real-world hazard is the BLAS dispatching a
  *different kernel* for a small block than for the monolithic call
  (OpenBLAS has small-matrix and GEMV fast paths whose rounding can
  differ), so blocks are floored at :attr:`GemmTuning.min_block_mnk`
  elements of work and the auto-tuner *verifies* that floor empirically
  at pool start, doubling it until slice-GEMMs reproduce the monolithic
  result bit-for-bit (probing plain, transposed-A and transposed-B
  layouts).  ``tests/core/test_gemm.py`` pins ``pgemm(a, b) == a @ b``
  exactly across dtypes/shapes/strides.
* **No small-GEMM regression.**  GEMMs below the auto-tuned FLOP
  crossover (dispatch overhead vs measured GEMM throughput) take the
  direct ``a @ b`` path, so LeNet-scale layers never pay pool latency.
* **Column blocking for fc-style shapes.**  Wide-``n``/short-``m``
  GEMMs (a small batch hitting a fat fully-connected weight) cannot be
  row-blocked — there are fewer rows than threads — so they are split
  along ``b``'s *columns* instead.  Column blocking is just as
  re-association-free as row blocking (output column ``j`` is the same
  ``a @ b[:, j]`` whichever block computes it) and carries its own
  empirically *verified* per-block floor
  (:attr:`GemmTuning.min_block_mnk_cols`), established exactly like the
  row floor: doubling until column-slice GEMMs reproduce the monolithic
  result bit-for-bit.

For compiled inference plans (:mod:`repro.core.plan`) two further
entry points avoid per-call re-decision: :func:`plan_gemm` freezes the
direct/rows/cols choice *and* the block bounds for a shape-known GEMM
into a reusable :class:`GemmDispatch`, and :class:`DispatchGroup`
snapshots the pool width / tuning / pool handle once so a run of
back-to-back GEMMs (consecutive sparse-path layers) pays one dispatch
setup instead of N.  Both produce bit-identical results to
:func:`pgemm` — they reuse the same block maths and verified floors.
* **Lazy + fork-safe.**  The pool starts on first parallel-eligible
  call; after ``fork`` the worker threads of the parent are gone, so the
  pool detects the PID change and rebuilds itself.

Configuration
-------------
``REPRO_GEMM_THREADS``
    Pool width.  Default ``min(cpu, 8)``; ``1`` disables the pool
    entirely (exact pre-existing behaviour).  :func:`configure` takes
    precedence over the environment (the serve CLI wires
    ``--gemm-threads`` through it).
``REPRO_GEMM_MIN_FLOPS`` / ``REPRO_GEMM_MIN_BLOCK_MNK``
    Override the auto-tuned parallel crossover / per-block floor.

Observability: each pooled call emits a ``gemm.pool`` span (attrs:
``blocks``, ``threads``, ``rows_per_block``; counters: ``rows``,
``blocks``, ``flops``) feeding the parallelism section of
``repro profile`` (:mod:`repro.obs.profile`), and :func:`stats` exposes
process-wide direct/pooled call counters.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.obs import trace

#: Hard cap on the default pool width (past ~8 threads the row blocks of
#: conv-sized GEMMs drop under the exactness floor anyway).
DEFAULT_MAX_THREADS = 8

#: Starting per-block work floor (``m*n*k`` elements) verified — and
#: doubled if necessary — by the auto-tuner.  Empirically OpenBLAS's
#: small-matrix kernels (whose rounding differs from the main dgemm
#: driver) engage below ~2**20 elements; 4x margin on top of that.
MIN_BLOCK_MNK_FLOOR = 4 * (1 << 20)

#: Ceiling for the verification doubling; if exactness cannot be
#: established below this, the pool refuses to parallelize.
MIN_BLOCK_MNK_CEIL = 64 * (1 << 20)

#: Starting per-block floor for *column* blocking.  Column slices keep
#: ``m`` and the accumulation length ``k`` unchanged, so the BLAS stays
#: in the same kernel regime as the monolithic call at much smaller
#: block sizes than row slices do; the floor is still verified (and
#: doubled if needed) before the column path is ever used.
MIN_BLOCK_MNK_COLS_FLOOR = 1 << 18

#: The parallel path must amortize pool dispatch: require the estimated
#: serial GEMM time to exceed this multiple of the measured round-trip
#: dispatch overhead.
DISPATCH_AMORTIZATION = 16.0

#: Absolute floor on the parallel crossover (FLOPs = 2*m*n*k), so even a
#: wildly optimistic overhead measurement cannot push tiny GEMMs into
#: the pool.
MIN_FLOPS_FLOOR = 8.0e6

_BLAS_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


# ---------------------------------------------------------------------------
# configuration / stats


@dataclass(frozen=True)
class GemmTuning:
    """Auto-tuned (or overridden) dispatch parameters."""

    min_flops: float      #: parallel crossover in FLOPs (2*m*n*k)
    min_block_mnk: int    #: per-block m*n*k floor (BLAS kernel-regime guard)
    verified: bool = True  #: block floor empirically confirmed bit-exact
    #: per-block m*n*k floor for column blocking (own verification)
    min_block_mnk_cols: int = MIN_BLOCK_MNK_COLS_FLOOR
    verified_cols: bool = True  #: column floor empirically confirmed bit-exact


@dataclass
class GemmStats:
    """Advisory process-wide counters (exact under single-threaded use)."""

    calls: int = 0          #: total pgemm() invocations
    direct_calls: int = 0   #: served by the direct ``a @ b`` path
    pooled_calls: int = 0   #: served by the row-blocked pool path
    pooled_blocks: int = 0  #: row blocks dispatched in total
    pooled_rows: int = 0    #: output rows computed via the pool
    pooled_flops: int = 0   #: FLOPs routed through the pool
    col_calls: int = 0      #: served by the column-blocked pool path
    col_blocks: int = 0     #: column blocks dispatched in total
    planned_calls: int = 0  #: served through a frozen GemmDispatch

    def as_dict(self) -> dict:
        return {
            "calls": self.calls,
            "direct_calls": self.direct_calls,
            "pooled_calls": self.pooled_calls,
            "pooled_blocks": self.pooled_blocks,
            "pooled_rows": self.pooled_rows,
            "pooled_flops": self.pooled_flops,
            "col_calls": self.col_calls,
            "col_blocks": self.col_blocks,
            "planned_calls": self.planned_calls,
        }


_state_lock = threading.Lock()
_configured_threads: int | None = None
_tuning: GemmTuning | None = None
_pool: ThreadPoolExecutor | None = None
_pool_threads: int = 0
_pool_pid: int | None = None
_stats = GemmStats()


def default_threads() -> int:
    """Pool width from ``REPRO_GEMM_THREADS`` or ``min(cpu, 8)``."""
    env = os.environ.get("REPRO_GEMM_THREADS", "").strip()
    if env:
        try:
            value = int(env)
        except ValueError as exc:
            raise ValueError(
                f"REPRO_GEMM_THREADS must be an integer, got {env!r}"
            ) from exc
        return max(1, value)
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    return max(1, min(cpus, DEFAULT_MAX_THREADS))


def gemm_threads() -> int:
    """The effective pool width (explicit :func:`configure` wins)."""
    with _state_lock:
        if _configured_threads is not None:
            return _configured_threads
    return default_threads()


def configure(
    threads: int | None = None,
    min_flops: float | None = None,
    min_block_mnk: int | None = None,
    min_block_mnk_cols: int | None = None,
) -> None:
    """Override pool width and/or dispatch tuning for this process.

    ``threads=None`` leaves the width as-is; pass an explicit value to
    pin it (``1`` disables the pool).  Tuning overrides replace the
    auto-tuned values; ``None`` keeps them.  The running pool is rebuilt
    lazily on the next :func:`pgemm` call if the width changed.
    """
    global _configured_threads, _tuning
    with _state_lock:
        if threads is not None:
            if threads < 1:
                raise ValueError("gemm threads must be >= 1")
            _configured_threads = int(threads)
        if (
            min_flops is not None
            or min_block_mnk is not None
            or min_block_mnk_cols is not None
        ):
            base = _tuning or GemmTuning(MIN_FLOPS_FLOOR, MIN_BLOCK_MNK_FLOOR)
            _tuning = GemmTuning(
                min_flops=float(min_flops) if min_flops is not None else base.min_flops,
                min_block_mnk=(
                    int(min_block_mnk) if min_block_mnk is not None
                    else base.min_block_mnk
                ),
                verified=base.verified,
                min_block_mnk_cols=(
                    int(min_block_mnk_cols) if min_block_mnk_cols is not None
                    else base.min_block_mnk_cols
                ),
                verified_cols=base.verified_cols,
            )


def shutdown(wait: bool = True) -> None:
    """Stop the worker threads (tests / fork hygiene).  Lazily restarts."""
    global _pool, _pool_pid
    with _state_lock:
        pool, _pool, _pool_pid = _pool, None, None
    if pool is not None:
        pool.shutdown(wait=wait)


def reset(threads: bool = True) -> None:
    """Forget configuration, tuning and stats (test isolation helper)."""
    global _configured_threads, _tuning, _stats
    shutdown()
    with _state_lock:
        if threads:
            _configured_threads = None
        _tuning = None
        _stats = GemmStats()


def stats() -> GemmStats:
    """A copy of the process-wide call counters."""
    with _state_lock:
        return GemmStats(**_stats.as_dict())


def reset_stats() -> None:
    global _stats
    with _state_lock:
        _stats = GemmStats()


# ---------------------------------------------------------------------------
# auto-tuning


def _measure_dispatch_overhead(pool: ThreadPoolExecutor, threads: int) -> float:
    """Min round-trip seconds to fan out+join ``threads`` no-op tasks."""
    def _noop() -> None:
        pass

    best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        futures = [pool.submit(_noop) for _ in range(max(1, threads - 1))]
        for f in futures:
            f.result()
        best = min(best, time.perf_counter() - t0)
    return max(best, 1e-6)


def _measure_gemm_rate() -> float:
    """Serial GEMM throughput in FLOPs/second (min-of-3 on a 192^3 case)."""
    a = np.ones((192, 192))
    b = np.ones((192, 192))
    flops = 2.0 * 192 ** 3
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        a @ b
        best = min(best, time.perf_counter() - t0)
    return flops / max(best, 1e-9)


def _block_floor_is_exact(min_block_mnk: int) -> bool:
    """Empirically confirm slice-GEMMs at the floor match the full GEMM.

    Probes the operand layouts the conv call sites actually produce:
    plain C-contiguous ``a``/``b``, transposed ``a`` (the QAT weight
    gradient ``cols.T @ gmat``), transposed ``b`` (the reshaped filter
    bank ``w.reshape(c_out, -1).T``) and a narrow-N case (few output
    channels), in both float64 and float32.
    """
    rng = np.random.default_rng(0xC0FFEE)
    shapes = ((1152, 256), (576, 64), (800, 16))
    for dtype in (np.float64, np.float32):
        for k, n in shapes:
            bh = max(1, -(-min_block_mnk // (k * n)))  # rows per block
            m = 3 * bh + 7
            a = rng.standard_normal((m, k)).astype(dtype)
            b = rng.standard_normal((k, n)).astype(dtype)
            variants = [
                (a, b),
                (np.ascontiguousarray(a.T).T, b),           # transposed A
                (a, np.ascontiguousarray(b.T).T),           # transposed B
            ]
            for av, bv in variants:
                full = av @ bv
                for start in (0, bh, 2 * bh):
                    stop = min(m, start + bh)
                    if not np.array_equal(av[start:stop] @ bv, full[start:stop]):
                        return False
    return True


def _col_floor_is_exact(min_block_mnk_cols: int) -> bool:
    """Empirically confirm column-slice GEMMs match the full GEMM.

    Mirrors :func:`_block_floor_is_exact` for the column-blocked path:
    probes the fc-style shapes that path serves (short ``m``, long
    accumulation ``k``, wide ``n``), in both float64 and float32, with
    both plain and transposed-``b`` layouts (``F.linear`` hands pgemm
    the transposed weight view).  A column slice ``a @ b[:, j0:j1]``
    must equal the matching slice of the monolithic product
    bit-for-bit at the candidate floor.
    """
    rng = np.random.default_rng(0xC0FFEE)
    shapes = ((8, 1152), (16, 576), (1, 800))
    for dtype in (np.float64, np.float32):
        for m, k in shapes:
            bw = max(1, -(-min_block_mnk_cols // (m * k)))  # cols per block
            n = 3 * bw + 7
            a = rng.standard_normal((m, k)).astype(dtype)
            b = rng.standard_normal((k, n)).astype(dtype)
            for bv in (b, np.ascontiguousarray(b.T).T):      # plain, transposed B
                full = a @ bv
                for start in (0, bw, 2 * bw):
                    stop = min(n, start + bw)
                    if not np.array_equal(a @ bv[:, start:stop], full[:, start:stop]):
                        return False
    return True


def _autotune(pool: ThreadPoolExecutor, threads: int) -> GemmTuning:
    """Measure the crossover + verify the block floor, once per process."""
    env_flops = os.environ.get("REPRO_GEMM_MIN_FLOPS", "").strip()
    env_block = os.environ.get("REPRO_GEMM_MIN_BLOCK_MNK", "").strip()
    env_cols = os.environ.get("REPRO_GEMM_MIN_BLOCK_MNK_COLS", "").strip()

    if env_flops:
        min_flops = max(float(env_flops), 0.0)
    else:
        overhead = _measure_dispatch_overhead(pool, threads)
        rate = _measure_gemm_rate()
        min_flops = max(MIN_FLOPS_FLOOR, DISPATCH_AMORTIZATION * overhead * rate)
        min_flops = min(min_flops, 5.0e8)  # degenerate-timer guard

    verified = True
    if env_block:
        min_block = max(int(env_block), 1)
    else:
        min_block = MIN_BLOCK_MNK_FLOOR
        while not _block_floor_is_exact(min_block):
            min_block *= 2
            if min_block > MIN_BLOCK_MNK_CEIL:
                # Cannot establish bit-exact row-blocking on this BLAS:
                # refuse to parallelize rather than break exactness.
                verified = False
                min_flops = float("inf")
                break

    verified_cols = True
    if env_cols:
        min_block_cols = max(int(env_cols), 1)
    else:
        min_block_cols = MIN_BLOCK_MNK_COLS_FLOOR
        while not _col_floor_is_exact(min_block_cols):
            min_block_cols *= 2
            if min_block_cols > MIN_BLOCK_MNK_CEIL:
                # Same refusal policy as the row floor: no bit-exact
                # column blocking on this BLAS ⇒ pgemm never takes that
                # path.  The floor resets so :func:`plan_gemm` can still
                # form candidate bounds and verify them *per shape* with
                # the actual operand layout (see ``b_sample``).
                verified_cols = False
                min_block_cols = MIN_BLOCK_MNK_COLS_FLOOR
                break
    return GemmTuning(min_flops=min_flops, min_block_mnk=min_block,
                      verified=verified,
                      min_block_mnk_cols=min_block_cols,
                      verified_cols=verified_cols)


def tuning() -> GemmTuning:
    """The active tuning (auto-tunes on first call if needed)."""
    global _tuning
    with _state_lock:
        if _tuning is not None:
            return _tuning
    threads = gemm_threads()
    pool = _get_pool(threads)
    tuned = _autotune(pool, threads)
    with _state_lock:
        if _tuning is None:
            _tuning = tuned
        return _tuning


# ---------------------------------------------------------------------------
# the pool


def _get_pool(threads: int) -> ThreadPoolExecutor:
    """Lazily (re)build the worker pool; PID change ⇒ post-fork rebuild."""
    global _pool, _pool_threads, _pool_pid
    pid = os.getpid()
    with _state_lock:
        if _pool is not None and _pool_pid == pid and _pool_threads == threads:
            return _pool
        stale = _pool if (_pool is not None and _pool_pid == pid) else None
        _pool = ThreadPoolExecutor(
            max_workers=max(1, threads), thread_name_prefix="gemm"
        )
        _pool_threads = threads
        _pool_pid = pid
        pool = _pool
    if stale is not None:
        stale.shutdown(wait=False)
    return pool


def _direct(a: np.ndarray, b: np.ndarray, out: np.ndarray | None) -> np.ndarray:
    with _state_lock:
        _stats.calls += 1
        _stats.direct_calls += 1
    if out is None:
        return a @ b
    return np.matmul(a, b, out=out)


def _mm_block(a_blk: np.ndarray, b: np.ndarray, out_blk: np.ndarray) -> None:
    np.matmul(a_blk, b, out=out_blk)


def _mm_col_block(a: np.ndarray, b_blk: np.ndarray, out_blk: np.ndarray) -> None:
    np.matmul(a, b_blk, out=out_blk)


def _bounds(size: int, nblocks: int) -> tuple[int, ...]:
    """Contiguous block boundaries: ``nblocks + 1`` cut points over size."""
    base, rem = divmod(size, nblocks)
    bounds = [0]
    for i in range(nblocks):
        bounds.append(bounds[-1] + base + (1 if i < rem else 0))
    return tuple(bounds)


def _result_buffer(
    out: np.ndarray | None, m: int, n: int, dtype: np.dtype
) -> np.ndarray:
    target_ok = (
        isinstance(out, np.ndarray)
        and out.shape == (m, n)
        and out.dtype == dtype
        and out.flags.c_contiguous
        and out.flags.writeable
    )
    return out if target_ok else np.empty((m, n), dtype=dtype)


def _pooled_rows(
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray | None,
    bounds: tuple[int, ...],
    threads: int,
    pool: ThreadPoolExecutor | None = None,
) -> np.ndarray:
    """Row-blocked pooled product over frozen ``bounds`` (bit-exact)."""
    m, n = a.shape[0], b.shape[1]
    nblocks = len(bounds) - 1
    mnk = m * a.shape[1] * n
    result = _result_buffer(out, m, n, a.dtype)

    with trace.span(
        "gemm.pool",
        blocks=nblocks,
        threads=threads,
        rows_per_block=bounds[1],
    ) as sp:
        if pool is None:
            pool = _get_pool(threads)
        futures = [
            pool.submit(_mm_block, a[s:e], b, result[s:e])
            for s, e in zip(bounds[1:-1], bounds[2:])
        ]
        # The caller thread computes the first block while the pool
        # works on the rest (one fewer dispatch, no idle caller).
        _mm_block(a[: bounds[1]], b, result[: bounds[1]])
        for f in futures:
            f.result()
        sp.add("rows", m)
        sp.add("blocks", nblocks)
        sp.add("flops", 2 * mnk)

    with _state_lock:
        _stats.calls += 1
        _stats.pooled_calls += 1
        _stats.pooled_blocks += nblocks
        _stats.pooled_rows += m
        _stats.pooled_flops += 2 * mnk

    if out is not None and result is not out:
        out[...] = result
        return out
    return result


def _pooled_cols(
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray | None,
    bounds: tuple[int, ...],
    threads: int,
    pool: ThreadPoolExecutor | None = None,
) -> np.ndarray:
    """Column-blocked pooled product over frozen ``bounds`` (bit-exact).

    Output column ``j`` is ``a @ b[:, j]`` whichever block computes it —
    no accumulation is re-associated — and the per-block floor behind
    ``bounds`` was verified by :func:`_col_floor_is_exact`.
    """
    m, n = a.shape[0], b.shape[1]
    nblocks = len(bounds) - 1
    mnk = m * a.shape[1] * n
    result = _result_buffer(out, m, n, a.dtype)

    with trace.span(
        "gemm.pool",
        blocks=nblocks,
        threads=threads,
        rows_per_block=m,
        axis="cols",
    ) as sp:
        if pool is None:
            pool = _get_pool(threads)
        futures = [
            pool.submit(_mm_col_block, a, b[:, s:e], result[:, s:e])
            for s, e in zip(bounds[1:-1], bounds[2:])
        ]
        _mm_col_block(a, b[:, : bounds[1]], result[:, : bounds[1]])
        for f in futures:
            f.result()
        sp.add("rows", m)
        sp.add("blocks", nblocks)
        sp.add("flops", 2 * mnk)

    with _state_lock:
        _stats.calls += 1
        _stats.col_calls += 1
        _stats.col_blocks += nblocks
        _stats.pooled_flops += 2 * mnk

    if out is not None and result is not out:
        out[...] = result
        return out
    return result


def pgemm(
    a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Parallel ``a @ b``, bit-identical to the serial product.

    2-D float32/float64 operands above the auto-tuned crossover are
    split into contiguous row blocks of ``a`` and multiplied on the
    process-wide thread pool, each block writing its slice of a shared
    preallocated output.  Everything else — small GEMMs, 1 configured
    thread, integer/odd-dimensional operands, mixed dtypes — falls back
    to the direct path, which *is* ``a @ b``.

    ``out``, when given, receives the result (and is returned); a
    C-contiguous ``(m, n)`` array of the result dtype is filled in
    place, anything else is filled via a temporary.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    threads = gemm_threads()
    if (
        threads <= 1
        or a.ndim != 2
        or b.ndim != 2
        or a.dtype != b.dtype
        or a.dtype not in _BLAS_DTYPES
        or a.shape[1] != b.shape[0]
    ):
        return _direct(a, b, out)

    m, k = a.shape
    n = b.shape[1]
    mnk = m * k * n
    tune = tuning()
    if 2.0 * mnk < tune.min_flops:
        return _direct(a, b, out)
    nblocks = min(threads, m, mnk // tune.min_block_mnk)
    if nblocks >= 2:
        return _pooled_rows(a, b, out, _bounds(m, nblocks), threads)
    if tune.verified_cols and m < threads:
        # Row blocking can't split this one (short m / sub-floor row
        # blocks): a wide-n fc-style GEMM may still column-block.
        ncb = min(threads, n, mnk // tune.min_block_mnk_cols)
        if ncb >= 2:
            return _pooled_cols(a, b, out, _bounds(n, ncb), threads)
    return _direct(a, b, out)


# ---------------------------------------------------------------------------
# pre-decided dispatch (compiled inference plans)


@dataclass(frozen=True)
class GemmDispatch:
    """A frozen routing decision for one GEMM shape.

    :func:`plan_gemm` runs :func:`pgemm`'s decision tree once for a
    known ``(m, k, n, dtype)`` and freezes the outcome — direct vs
    row-blocked vs column-blocked, including the exact block bounds —
    so a compiled plan step replays the route without re-deriving it
    per call.  Any route is bit-identical to ``a @ b`` (that is
    ``pgemm``'s contract), so freezing can never change results; a
    thread-width change after planning merely makes the frozen route
    suboptimal until the plan recompiles.
    """

    kind: str                 #: ``direct`` | ``rows`` | ``cols``
    m: int
    k: int
    n: int
    dtype: np.dtype
    bounds: tuple[int, ...]   #: cut points along the split axis (empty for direct)
    threads: int

    def run(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Execute ``a @ b`` along the frozen route."""
        if a.shape != (self.m, self.k) or b.shape != (self.k, self.n) or \
                a.dtype != self.dtype or b.dtype != self.dtype:
            return pgemm(a, b, out)  # shape drifted from the plan: re-decide
        with _state_lock:
            _stats.planned_calls += 1
        if self.kind == "rows":
            return _pooled_rows(a, b, out, self.bounds, self.threads)
        if self.kind == "cols":
            return _pooled_cols(a, b, out, self.bounds, self.threads)
        return _direct(a, b, out)


def _col_bounds_exact_for(
    m: int, k: int, b: np.ndarray, bounds: tuple[int, ...]
) -> bool:
    """Per-shape, layout-true column-blocking verification.

    Probes the *actual* right-hand operand (its memory layout decides
    which BLAS kernel runs) against a random left operand: every column
    slice must match the monolithic product bit-for-bit.  Kernel choice
    depends on shape/layout, not data, so one probe certifies the
    route for all inputs of that shape.
    """
    rng = np.random.default_rng(0x51C0)
    a = rng.standard_normal((m, k)).astype(b.dtype)
    full = a @ b
    for s, e in zip(bounds[:-1], bounds[1:]):
        if not np.array_equal(a @ b[:, s:e], full[:, s:e]):
            return False
    return True


def plan_gemm(
    m: int,
    k: int,
    n: int,
    dtype: np.dtype | type,
    b_sample: np.ndarray | None = None,
) -> GemmDispatch:
    """Freeze :func:`pgemm`'s routing decision for one GEMM shape.

    ``b_sample``, when given, is the actual right-hand operand the plan
    will run against (e.g. a transposed fc weight view).  It enables
    the column route on BLAS builds where the *global* column floor
    could not be verified: the candidate bounds are probed against
    ``b_sample`` itself, layout and all, and accepted only bit-exact.
    """
    dtype = np.dtype(dtype)
    threads = gemm_threads()
    kind, bounds = "direct", ()
    if threads > 1 and dtype in _BLAS_DTYPES and m > 0 and k > 0 and n > 0:
        mnk = m * k * n
        tune = tuning()
        if 2.0 * mnk >= tune.min_flops:
            nblocks = min(threads, m, mnk // tune.min_block_mnk)
            if nblocks >= 2:
                kind, bounds = "rows", _bounds(m, nblocks)
            elif m < threads:
                ncb = min(threads, n, mnk // tune.min_block_mnk_cols)
                if ncb >= 2:
                    cand = _bounds(n, ncb)
                    ok = tune.verified_cols or (
                        b_sample is not None
                        and b_sample.shape == (k, n)
                        and b_sample.dtype == dtype
                        and _col_bounds_exact_for(m, k, b_sample, cand)
                    )
                    if ok:
                        kind, bounds = "cols", cand
    return GemmDispatch(
        kind=kind, m=m, k=k, n=n, dtype=dtype, bounds=bounds, threads=threads
    )


class DispatchGroup:
    """Shared dispatch context for a run of back-to-back GEMMs.

    :func:`pgemm` re-resolves the pool width, the tuning record and the
    pool handle — several lock acquisitions — on every call.  A
    ``DispatchGroup`` snapshots them once; the GEMMs of a run (e.g. the
    gathered-row products of consecutive sparse-path layers in a
    compiled plan) are then issued through the snapshot, paying one
    dispatch setup instead of N.  Routing decisions and block maths are
    identical to :func:`pgemm`, so results are bit-identical; the
    snapshot self-refreshes after ``fork`` (PID check).

    Note this batches the *dispatch* of the per-layer GEMMs, not the
    GEMMs themselves: consecutive layers are data-dependent (layer
    ``i+1`` consumes layer ``i``'s output), so their products cannot be
    fused into one BLAS call.
    """

    __slots__ = ("threads", "tune", "pool", "pid")

    def __init__(self) -> None:
        self.refresh()

    def refresh(self) -> None:
        self.pid = os.getpid()
        self.threads = gemm_threads()
        self.tune = tuning()
        self.pool = _get_pool(self.threads) if self.threads > 1 else None

    def gemm(
        self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """``a @ b`` via the snapshot (same routing as :func:`pgemm`)."""
        if os.getpid() != self.pid or (
            self.pool is not None and self.pool._shutdown
        ):
            # Post-fork, or the process pool was rebuilt/shut down
            # (configure/reset) since the snapshot: take a fresh one.
            self.refresh()
        threads, tune = self.threads, self.tune
        if (
            threads <= 1
            or a.ndim != 2
            or b.ndim != 2
            or a.dtype != b.dtype
            or a.dtype not in _BLAS_DTYPES
            or a.shape[1] != b.shape[0]
        ):
            return _direct(a, b, out)
        m, k = a.shape
        n = b.shape[1]
        mnk = m * k * n
        if 2.0 * mnk < tune.min_flops:
            return _direct(a, b, out)
        nblocks = min(threads, m, mnk // tune.min_block_mnk)
        if nblocks >= 2:
            return _pooled_rows(a, b, out, _bounds(m, nblocks), threads, self.pool)
        if tune.verified_cols and m < threads:
            ncb = min(threads, n, mnk // tune.min_block_mnk_cols)
            if ncb >= 2:
                return _pooled_cols(a, b, out, _bounds(n, ncb), threads, self.pool)
        return _direct(a, b, out)


__all__ = [
    "pgemm",
    "plan_gemm",
    "GemmDispatch",
    "DispatchGroup",
    "configure",
    "gemm_threads",
    "default_threads",
    "tuning",
    "GemmTuning",
    "GemmStats",
    "stats",
    "reset_stats",
    "reset",
    "shutdown",
    "DEFAULT_MAX_THREADS",
]
