"""Compiled inference plans: one-pass layer planning with shape-specialized dispatch.

An :class:`InferencePlan` is compiled once per (engine, input shape/dtype)
by tracing a single inference through the model and pre-binding, per
layer, everything the hot path otherwise re-decides on every call:

* packed weight operands (``PackedConvWeights`` frozen up front),
* im2col geometry (output H/W, row counts) from the observed input shape,
* the GEMM blocking decision, frozen via :func:`repro.core.gemm.plan_gemm`
  into a :class:`~repro.core.gemm.GemmDispatch`,
* the exec-path choice — ``auto`` reduced to one precomputed
  row-count compare against ``sparse_crossover * rows``,
* a shared :class:`~repro.core.gemm.DispatchGroup` per run of consecutive
  sparse-capable conv layers, so the run amortizes dispatch bookkeeping
  (thread-count/tuning snapshot, pool lookup) into one snapshot instead
  of N per-call re-reads.  This batches the *dispatch*, not the GEMMs
  themselves — consecutive layers are data-dependent, so their GEMMs
  cannot be fused into one call.

Two plan modes:

``flat``
    The traced leaf calls form a linear chain (verified by array
    *identity*: each step consumed exactly the previous step's output).
    ``run()`` is then a plain loop over numpy step closures — no Tensor
    allocation, no autograd tape wiring, no backward-index precompute
    (max-pool's scatter indices are the single largest non-GEMM cost of
    the unplanned path).
``graph``
    The model's forward has structure a flat tape cannot honor
    (residual adds, concats, repeated modules).  The model walks its own
    Tensor graph as before, but every instrumented conv routes through
    its pre-bound plan step, keeping the frozen operands and dispatch.

Bit-exactness contract
----------------------
Every flat step mirrors the exact numpy expression tree of the Tensor op
it replaces (e.g. ReLU is ``x * (x > 0)``, not ``np.maximum``; global
average pooling is ``sum * (1.0 / count)``, not ``np.mean``; BatchNorm's
subtraction is ``x + (-mean)``), so planned output is bit-identical
(``==``) to the unplanned path — pinned by ``tests/core/test_plan.py``.

Staleness
---------
A plan never goes stale silently.  ``valid()`` re-checks, by object
identity, every piece of state a step froze (packed operands, weight and
buffer arrays, exec-path config, instance-level ``run`` monkeypatches);
the engine recompiles on mismatch.  Deliberately *not* frozen: the mask
threshold (``effective_threshold`` is read per call so threshold sweeps
hit the planned path unchanged) and the ``ColumnCache`` (built through
``executor._build_cache`` so an installed ``cache_provider`` — e.g. the
sweep column cache — keeps working).

Records: the planned conv fast path maintains ``sensitive_total``, MAC
counters and the ``exec_*`` extras (everything serving reads).  It skips
``per_channel_sensitive`` / ``last_mask`` upkeep — those feed the
accelerator mask dumps, which drive the unplanned ``forward()`` path.

When tracing is enabled, planned conv steps delegate to ``executor.run``
under the usual ``engine.layer`` span so profiles keep their span tree;
the plan counts these as re-evaluated (vs frozen) dispatches.
"""

from __future__ import annotations

import numpy as np

from repro.core import gemm
from repro.core.masks import mask_from_magnitude
from repro.core.odq import ODQConvExecutor
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.tensor import Tensor
from repro.obs import trace


class PlanStep:
    """One pre-bound operation of a flat plan.  Stateless steps are
    always valid; stateful ones override :meth:`valid`."""

    kind = "?"

    def run(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def valid(self) -> bool:
        return True

    def describe(self) -> dict:
        return {"kind": self.kind}


class PassStep(PlanStep):
    """Identity: eval-mode dropout, Identity modules, and pools whose
    window exceeds the (shape-specialized) input."""

    kind = "pass"

    def __init__(self, reason: str, module=None) -> None:
        self.reason = reason
        self.module = module

    def run(self, x: np.ndarray) -> np.ndarray:
        return x

    def valid(self) -> bool:
        m = self.module
        if isinstance(m, Dropout):
            # Train-mode dropout with p > 0 is no longer an identity.
            return not m.training or m.p <= 0.0
        return True

    def describe(self) -> dict:
        return {"kind": self.kind, "reason": self.reason}


class ReLUStep(PlanStep):
    kind = "relu"

    def run(self, x: np.ndarray) -> np.ndarray:
        return x * (x > 0)


class FlattenStep(PlanStep):
    kind = "flatten"

    def run(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)


class MaxPoolStep(PlanStep):
    """``F.max_pool2d`` forward only — skips the backward scatter-index
    precompute (divmod + 4 index grids + zeros) the Tensor op pays."""

    kind = "maxpool"

    def __init__(self, module: MaxPool2d, in_shape: tuple) -> None:
        self.module = module
        self.kernel = module.kernel_size
        self.stride = module.stride
        _, _, h, w = in_shape
        self.oh = (h - self.kernel) // self.stride + 1
        self.ow = (w - self.kernel) // self.stride + 1

    def run(self, x: np.ndarray) -> np.ndarray:
        n, c = x.shape[0], x.shape[1]
        k, s = self.kernel, self.stride
        sn, sc, sh, sw = x.strides
        patches = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, self.oh, self.ow, k, k),
            strides=(sn, sc, sh * s, sw * s, sh, sw),
            writeable=False,
        ).reshape(n, c, self.oh, self.ow, k * k)
        arg = patches.argmax(axis=-1)
        return np.take_along_axis(patches, arg[..., None], axis=-1)[..., 0]

    def valid(self) -> bool:
        return (
            self.module.kernel_size == self.kernel
            and self.module.stride == self.stride
        )

    def describe(self) -> dict:
        return {"kind": self.kind, "kernel": self.kernel, "stride": self.stride}


class AvgPoolStep(PlanStep):
    kind = "avgpool"

    def __init__(self, module: AvgPool2d, in_shape: tuple) -> None:
        self.module = module
        self.kernel = module.kernel_size
        self.stride = module.stride
        _, _, h, w = in_shape
        self.oh = (h - self.kernel) // self.stride + 1
        self.ow = (w - self.kernel) // self.stride + 1

    def run(self, x: np.ndarray) -> np.ndarray:
        n, c = x.shape[0], x.shape[1]
        k, s = self.kernel, self.stride
        sn, sc, sh, sw = x.strides
        patches = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, self.oh, self.ow, k, k),
            strides=(sn, sc, sh * s, sw * s, sh, sw),
            writeable=False,
        )
        return patches.mean(axis=(-1, -2))

    def valid(self) -> bool:
        return (
            self.module.kernel_size == self.kernel
            and self.module.stride == self.stride
        )

    def describe(self) -> dict:
        return {"kind": self.kind, "kernel": self.kernel, "stride": self.stride}


class GlobalAvgPoolStep(PlanStep):
    kind = "gap"

    def __init__(self, in_shape: tuple) -> None:
        _, _, h, w = in_shape
        # Tensor.mean computes sum * (1.0 / count); mirror that exactly
        # (multiply by the reciprocal, not np.mean).
        self.inv = 1.0 / (h * w)

    def run(self, x: np.ndarray) -> np.ndarray:
        return x.sum(axis=(2, 3)) * self.inv


class LinearStep(PlanStep):
    """``F.linear`` with the GEMM route frozen by :func:`gemm.plan_gemm`."""

    kind = "linear"

    def __init__(self, module: Linear, in_shape: tuple) -> None:
        self.module = module
        self._w_src = module.weight.data
        self._b_src = None if module.bias is None else module.bias.data
        m_rows, k = in_shape
        n = module.out_features
        self.dispatch = gemm.plan_gemm(
            m_rows, k, n, self._w_src.dtype, b_sample=self._w_src.T
        )

    def run(self, x: np.ndarray) -> np.ndarray:
        out = self.dispatch.run(x, self.module.weight.data.T)
        if self._b_src is not None:
            out = out + self._b_src
        return out

    def valid(self) -> bool:
        m = self.module
        if m.weight.data is not self._w_src:
            return False
        if self._b_src is None:
            return m.bias is None
        return m.bias is not None and m.bias.data is self._b_src

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "shape": [self.dispatch.m, self.dispatch.k, self.dispatch.n],
            "dispatch": self.dispatch.kind,
        }


class BatchNormStep(PlanStep):
    """Eval-mode BatchNorm2d with the per-channel constants pre-reshaped.

    Mirrors the Tensor expression tree exactly: subtraction is
    ``x + (-mean)`` and the scale is ``(var + eps) ** -0.5``.
    """

    kind = "batchnorm"

    def __init__(self, module: BatchNorm2d) -> None:
        self.module = module
        self._rm_src = module.running_mean
        self._rv_src = module.running_var
        self._g_src = module.gamma.data
        self._b_src = module.beta.data
        self._eps = module.eps
        self.neg_mean4 = -(module.running_mean.reshape(1, -1, 1, 1))
        self.inv_std4 = (
            module.running_var.reshape(1, -1, 1, 1) + module.eps
        ) ** -0.5
        self.gamma4 = module.gamma.data.reshape(1, -1, 1, 1)
        self.beta4 = module.beta.data.reshape(1, -1, 1, 1)

    def run(self, x: np.ndarray) -> np.ndarray:
        xhat = (x + self.neg_mean4) * self.inv_std4
        return xhat * self.gamma4 + self.beta4

    def valid(self) -> bool:
        m = self.module
        return (
            not m.training
            and m.running_mean is self._rm_src
            and m.running_var is self._rv_src
            and m.gamma.data is self._g_src
            and m.beta.data is self._b_src
            and m.eps == self._eps
        )


class PlannedConvStep(PlanStep):
    """One instrumented conv with its per-call re-decisions pre-bound.

    ``fast=True`` (an unpatched, frozen :class:`ODQConvExecutor`) runs a
    streamlined mirror of ``ODQConvExecutor.run``: frozen packed
    operands, frozen 2-D bias, one frozen :class:`GemmDispatch` for both
    the predictor and dense GEMMs (same (rows, ckk, c_out) shape), the
    ``auto`` branch reduced to one compare against a precomputed row
    limit, and the sparse gather GEMM issued through the run's shared
    :class:`DispatchGroup`.  Otherwise (non-ODQ scheme, subclass, or an
    instance-level ``run`` monkeypatch) the step delegates to
    ``executor.run`` — still profiting from the flat tape around it.
    """

    kind = "conv"

    def __init__(self, ex, in_shape: tuple, counters: dict) -> None:
        self.ex = ex
        self.counters = counters
        self.fast = (
            type(ex) is ODQConvExecutor
            and ex.frozen
            and "run" not in ex.__dict__
        )
        self.sparse_group: gemm.DispatchGroup | None = None
        self.in_shape = tuple(in_shape)
        if not self.fast:
            self.dispatch = None
            return
        n, _, h, w = in_shape
        oh, ow = ex.info.output_hw(h, w)
        self.rows = n * oh * ow
        self.ckk = ex._packed.wmat_full.shape[0]
        self.c_out = ex.info.out_channels
        self.packed = ex._packed
        self.bias2d = ex._bias2d()
        self._bias_src = None if ex.conv.bias is None else ex.conv.bias.data
        self.path_mode = ex.exec_path
        self.crossover = ex.sparse_crossover
        # auto reduced to a single precomputed row-fraction compare.
        self.row_limit = self.crossover * self.rows
        self.shift_f = float(1 << self.packed.high_shift)
        self.dispatch = gemm.plan_gemm(
            self.rows, self.ckk, self.c_out, np.float64,
            b_sample=self.packed.wmat_full,
        )

    def valid(self) -> bool:
        ex = self.ex
        if not self.fast:
            # A delegating step freezes no executor state; delegation
            # stays correct even if the executor later qualifies for the
            # fast path (it would just be slower until a recompile).
            return True
        if not (ex.frozen and ex._packed is self.packed):
            return False
        if "run" in ex.__dict__:
            return False
        if ex.exec_path != self.path_mode or ex.sparse_crossover != self.crossover:
            return False
        if self._bias_src is None:
            return ex.conv.bias is None
        return ex.conv.bias is not None and ex.conv.bias.data is self._bias_src

    def run(self, x: np.ndarray) -> np.ndarray:
        ex = self.ex
        if not self.fast or trace.enabled():
            self.counters["reevaluated"] += 1
            if trace.enabled():
                with trace.span("engine.layer", layer=ex.info.name, mode="run"):
                    return ex.run(x)
            return ex.run(x)
        self.counters["frozen"] += 1
        ex._note_shapes(x)
        cache = ex._build_cache(x)
        scale = cache.qp_a.scale * ex.qp_w.scale
        packed = self.packed

        hh2d = self.dispatch.run(cache.cols_high, packed.wmat_high)
        partial2d = scale * (
            hh2d * self.shift_f
            + (cache.e_low - cache.qp_a.zero_point) * packed.w_sum
        )
        if self.bias2d is not None:
            partial2d = partial2d + self.bias2d
        partial = cache.to_nchw(partial2d)
        if ex.collect_partials:
            flat = np.abs(partial).reshape(-1)
            step = max(1, flat.size // 4096)
            ex.record.extra.setdefault("partial_abs_samples", []).append(flat[::step])

        # Threshold is read per call (not frozen) so sweeps that mutate
        # executor thresholds hit the planned path unchanged.
        mask = mask_from_magnitude(partial, ex.effective_threshold)
        any_rows = mask.mask.any(axis=1).reshape(-1)
        n_sense_rows = int(np.count_nonzero(any_rows))

        path = self.path_mode
        if path == "auto":
            path = "sparse" if n_sense_rows <= self.row_limit else "dense"

        if path == "dense":
            acc2d = self.dispatch.run(cache.cols, packed.wmat_full)
            full2d = scale * (acc2d - cache.qp_a.zero_point * packed.w_sum)
            if self.bias2d is not None:
                full2d = full2d + self.bias2d
            full = cache.to_nchw(full2d)
            out = np.where(mask.mask, full, partial)
            rows_computed = cache.rows
            flops_full = cache.rows * self.ckk * self.c_out
        else:
            out2d = partial2d
            sel = np.flatnonzero(any_rows)
            if sel.size:
                group = self.sparse_group
                mm = gemm.pgemm if group is None else group.gemm
                acc_rows = mm(cache.full_rows(sel), packed.wmat_full)
                full_rows = scale * (
                    acc_rows - cache.qp_a.zero_point * packed.w_sum
                )
                if self.bias2d is not None:
                    full_rows = full_rows + self.bias2d
                ni, rem = np.divmod(sel, cache.oh * cache.ow)
                oi, oj = np.divmod(rem, cache.ow)
                mask_rows = mask.mask[ni, :, oi, oj]
                out2d[sel] = np.where(mask_rows, full_rows, out2d[sel])
            out = partial
            rows_computed = n_sense_rows
            flops_full = n_sense_rows * self.ckk * self.c_out

        rec = ex.record
        rec.sensitive_total += mask.sensitive_count
        ex._note_exec_path(
            path, cache.rows, rows_computed, flops_full,
            cache.rows * self.ckk * self.c_out,
        )
        mpo = ex.info.macs_per_output
        n_out = partial.size
        rec.macs["pred_int2"] += n_out * mpo
        rec.macs["exec_int4"] += mask.sensitive_count * mpo
        return out

    def describe(self) -> dict:
        d = {"kind": self.kind, "layer": self.ex.info.name, "fast": self.fast}
        if self.fast:
            d.update(
                path=self.path_mode,
                rows=self.rows,
                row_limit=self.row_limit if self.path_mode == "auto" else None,
                dispatch=self.dispatch.kind,
                sparse_batched=self.sparse_group is not None,
            )
        return d


_LEAF_STEP_TYPES = (
    Identity, ReLU, Flatten, Linear, BatchNorm2d,
    MaxPool2d, AvgPool2d, GlobalAvgPool2d, Dropout,
)


class InferencePlan:
    """A compiled, shape-specialized execution recipe for one engine."""

    def __init__(self, engine, input_shape, input_dtype, mode, steps,
                 conv_steps, counters, sparse_groups) -> None:
        self.engine = engine
        self.input_shape = tuple(input_shape)
        self.input_dtype = str(input_dtype)
        self.mode = mode  # "flat" | "graph"
        self.steps = steps
        self.conv_steps = conv_steps  # name -> PlannedConvStep
        self.counters = counters  # {"frozen": n, "reevaluated": n}
        self.sparse_groups = sparse_groups
        self.executions = 0

    def valid(self) -> bool:
        if self.mode == "flat":
            return all(step.valid() for step in self.steps)
        return all(step.valid() for step in self.conv_steps.values())

    def run(self, x: np.ndarray) -> np.ndarray:
        self.executions += 1
        if self.mode == "flat":
            out = x
            for step in self.steps:
                out = step.run(out)
            return out
        engine = self.engine
        engine._active_plan = self
        try:
            return engine.model(Tensor(x)).data
        finally:
            engine._active_plan = None

    # -- introspection -------------------------------------------------------

    def summary(self) -> dict:
        """Compact digest for ``session.describe()`` and the profile table."""
        return {
            "input_shape": list(self.input_shape),
            "input_dtype": self.input_dtype,
            "mode": self.mode,
            "steps": len(self.steps) if self.mode == "flat" else len(self.conv_steps),
            "conv_steps": len(self.conv_steps),
            "fast_conv_steps": sum(
                1 for s in self.conv_steps.values() if s.fast
            ),
            "sparse_batched_layers": sum(len(g) for g in self.sparse_groups),
            "executions": self.executions,
            "dispatch_frozen": self.counters["frozen"],
            "dispatch_reevaluated": self.counters["reevaluated"],
        }

    def describe(self) -> dict:
        """Full step-by-step listing (the ``repro plan`` CLI output)."""
        if self.mode == "flat":
            steps = [step.describe() for step in self.steps]
        else:
            steps = [step.describe() for step in self.conv_steps.values()]
        return {**self.summary(), "step_list": steps}


class _TraceEntry:
    __slots__ = ("module", "x", "out")

    def __init__(self, module, x, out) -> None:
        self.module = module
        self.x = x
        self.out = out


def _trace_leaves(engine, x: np.ndarray):
    """Run one inference with leaf forwards instrumented.

    Returns ``(tape, output Tensor)``.  The traced call *is* a full
    unplanned inference (records, spans, autograd all unchanged), so its
    output doubles as the result of the batch that triggered the compile.
    """
    from repro.core.pipeline import InstrumentedConv

    tape: list[_TraceEntry] = []
    wrapped: list = []

    def instrument(module) -> None:
        orig = module.forward

        def traced(t):
            out = orig(t)
            tape.append(_TraceEntry(module, t, out))
            return out

        module.__dict__["forward"] = traced
        wrapped.append(module)

    for _, m in engine.model.named_modules():
        if "forward" in m.__dict__:
            continue  # already instance-patched: leave it alone
        if isinstance(m, InstrumentedConv) or type(m) in _LEAF_STEP_TYPES:
            instrument(m)

    xt = Tensor(x)
    try:
        out_t = engine.model(xt)
    finally:
        for m in wrapped:
            m.__dict__.pop("forward", None)
    return tape, xt, out_t


def _is_linear_chain(tape, xt, out_t) -> bool:
    """True when the traced calls form one pass-the-baton chain.

    Verified by array *identity*: step i consumed exactly step i-1's
    output and nothing else reached the model output.  Residual adds,
    concats, and untraced custom modules all break identity and fall
    back to graph mode.
    """
    if not tape:
        return False
    if tape[0].x.data is not xt.data:
        return False
    for prev, cur in zip(tape, tape[1:]):
        if cur.x.data is not prev.out.data:
            return False
    return out_t.data is tape[-1].out.data


def _flat_step_for(entry, counters):
    """Map one traced leaf call to a flat step, or None if unsupported."""
    from repro.core.pipeline import InstrumentedConv

    m = entry.module
    in_shape = entry.x.data.shape
    if isinstance(m, InstrumentedConv):
        return PlannedConvStep(m.executor, in_shape, counters)
    if isinstance(m, Identity):
        return PassStep("identity")
    if isinstance(m, ReLU):
        return ReLUStep()
    if isinstance(m, Flatten):
        return FlattenStep()
    if isinstance(m, Dropout):
        if m.training and m.p > 0.0:
            return None  # stochastic: not plannable
        return PassStep("dropout-eval", module=m)
    if isinstance(m, (MaxPool2d, AvgPool2d)):
        if min(in_shape[2], in_shape[3]) < m.kernel_size:
            return PassStep("pool-smaller-than-window")
        cls = MaxPoolStep if isinstance(m, MaxPool2d) else AvgPoolStep
        return cls(m, in_shape)
    if isinstance(m, GlobalAvgPool2d):
        return GlobalAvgPoolStep(in_shape)
    if isinstance(m, Linear):
        return LinearStep(m, in_shape)
    if isinstance(m, BatchNorm2d):
        if m.training:
            return None  # running-stat updates: not plannable
        return BatchNormStep(m)
    return None


def _link_sparse_groups(conv_steps_in_order) -> list:
    """Give each run of >=2 consecutive sparse-capable fast conv steps a
    shared DispatchGroup (one dispatch snapshot per run instead of N)."""
    groups: list[list[PlannedConvStep]] = []
    current: list[PlannedConvStep] = []
    for step in conv_steps_in_order:
        if step.fast and step.path_mode in ("sparse", "auto"):
            current.append(step)
        else:
            if len(current) >= 2:
                groups.append(current)
            current = []
    if len(current) >= 2:
        groups.append(current)
    for members in groups:
        group = gemm.DispatchGroup()
        for step in members:
            step.sparse_group = group
    return groups


def compile_plan(engine, x: np.ndarray):
    """Compile a plan for ``engine`` specialized to ``x``'s shape/dtype.

    Returns ``(plan, output)`` where ``output`` is the (bit-exact,
    unplanned) inference result of ``x`` itself — the compile pass costs
    one traced inference, never an extra forward.
    """
    tape, xt, out_t = _trace_leaves(engine, x)
    counters = {"frozen": 0, "reevaluated": 0}

    steps: list[PlanStep] | None = None
    if _is_linear_chain(tape, xt, out_t):
        candidate = [_flat_step_for(entry, counters) for entry in tape]
        if all(step is not None for step in candidate):
            steps = candidate

    from repro.core.pipeline import InstrumentedConv

    if steps is not None:
        conv_in_order = [s for s in steps if isinstance(s, PlannedConvStep)]
        mode = "flat"
    else:
        # Graph mode: the model keeps walking its own forward; convs
        # route through pre-bound steps in traced execution order.
        conv_in_order = [
            PlannedConvStep(e.module.executor, e.x.data.shape, counters)
            for e in tape
            if isinstance(e.module, InstrumentedConv)
        ]
        steps = []
        mode = "graph"

    sparse_groups = _link_sparse_groups(conv_in_order)
    conv_steps = {step.ex.info.name: step for step in conv_in_order}
    plan = InferencePlan(
        engine, x.shape, x.dtype, mode, steps, conv_steps, counters,
        sparse_groups,
    )
    return plan, out_t.data


__all__ = [
    "InferencePlan",
    "PlanStep",
    "PlannedConvStep",
    "compile_plan",
]
