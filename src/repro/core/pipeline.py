"""Quantized inference engine.

Takes a trained model and a :class:`~repro.core.schemes.Scheme`, replaces
every convolution with an instrumented executor, calibrates quantization
ranges on sample data, and then serves quantized inference while
collecting per-layer :class:`~repro.core.base.LayerRecord` statistics.

The engine is the glue reproducing the paper's methodology end-to-end:

    trained net --calibrate--> quantized inference --masks--> accelerator
    (Fig. 18 accuracy)                              (Figs 9-11, 19-21)
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict

import numpy as np

from repro.core.base import ConvExecutor, LayerRecord
from repro.core.schemes import Scheme
from repro.nn.layers import Conv2d, Module, swap_modules
from repro.nn.tensor import Tensor
from repro.nn.trainer import iterate_minibatches
from repro.obs import trace
from repro.obs.log import get_logger

_log = get_logger("repro.core.pipeline")


class InstrumentedConv(Module):
    """Stand-in module that routes a conv through its scheme executor."""

    def __init__(self, executor: ConvExecutor, engine: "QuantizedInferenceEngine") -> None:
        super().__init__()
        self.executor = executor
        self.engine = engine

    def forward(self, x: Tensor) -> Tensor:
        if self.engine.capture_inputs:
            self.executor.record.extra["last_input"] = x.data
        calibrating = self.engine.mode == "calibrate"
        if not calibrating:
            # Graph-mode plans: the model walks its own forward, but each
            # conv routes through its pre-bound plan step (frozen packed
            # operands, frozen GEMM dispatch, precomputed auto compare).
            plan = self.engine._active_plan
            if plan is not None:
                step = plan.conv_steps.get(self.executor.info.name)
                if step is not None:
                    return Tensor(step.run(x.data))
        fn = self.executor.calibrate if calibrating else self.executor.run
        if trace.enabled():
            with trace.span(
                "engine.layer",
                layer=self.executor.info.name,
                mode="calibrate" if calibrating else "run",
            ):
                return Tensor(fn(x.data))
        return Tensor(fn(x.data))


class QuantizedInferenceEngine:
    """Applies a quantization scheme to a model for instrumented inference.

    The model is mutated in place (convs swapped for instrumented twins);
    use :meth:`restore` to undo.  Only ``Conv2d`` layers are quantized —
    matching the paper's focus ("our focus is on inference time, with a
    particular emphasis on the convolutional layers"); BN, pooling and the
    classifier head run in floating point.

    Reuse & threading
    -----------------
    One engine is long-lived and reusable: :meth:`calibrate` once, then
    call :meth:`infer` any number of times (``repro.serve`` keeps engines
    in a session cache and streams batches through them).  Mode switching
    (``calibrate`` ↔ ``run``) and inference are serialized by an internal
    lock, so a calibration can never interleave with a concurrent
    ``infer``.  The engine is *thread-confinable*, not thread-parallel:
    for N concurrent workers use :meth:`clone` to give each worker its own
    engine (sharing nothing mutable), which is what the serving worker
    pool does.
    """

    #: Valid engine modes (see :attr:`mode`).
    MODES = ("calibrate", "run")

    def __init__(self, model: Module, scheme: Scheme, skip_first_conv: bool = False) -> None:
        self.model = model
        self.scheme = scheme
        self._mode = "calibrate"
        self._lock = threading.RLock()
        #: When true, each conv's latest input batch is stored in
        #: ``record.extra["last_input"]`` (used by the motivation study).
        self.capture_inputs = False
        self.executors: "OrderedDict[str, ConvExecutor]" = OrderedDict()
        self._originals: list[tuple[Module, str, int | None, Conv2d]] = []
        #: When true, :meth:`infer` compiles and reuses shape-specialized
        #: :class:`~repro.core.plan.InferencePlan`s (see that module).
        #: ``forward``/``evaluate``/calibration always run unplanned.
        self.use_plan = True
        #: Max distinct (shape, dtype) specializations kept (LRU).
        self.plan_cache_limit = 8
        self._init_plan_state()
        self._install(skip_first_conv)

    def _init_plan_state(self) -> None:
        self._plans: "OrderedDict[tuple, object]" = OrderedDict()
        self._active_plan = None
        self._plan_stats = {
            "compiles": 0, "hits": 0, "invalidated": 0, "evictions": 0,
        }

    # -- mode handling -------------------------------------------------------------

    @property
    def mode(self) -> str:
        """Current phase: ``"calibrate"`` (observing FP ranges) or ``"run"``."""
        return self._mode

    @mode.setter
    def mode(self, value: str) -> None:
        if value not in self.MODES:
            raise ValueError(f"unknown engine mode {value!r}; expected one of {self.MODES}")
        with self._lock:
            self._mode = value

    @property
    def calibrated(self) -> bool:
        """True once every executor has frozen quantization parameters."""
        return bool(self.executors) and all(ex.frozen for ex in self.executors.values())

    # -- cloning -------------------------------------------------------------------

    def __deepcopy__(self, memo: dict) -> "QuantizedInferenceEngine":
        # Locks are not deep-copyable; everything else (model, executors,
        # frozen qparams, records) is plain data.  The memo ensures the
        # clone's InstrumentedConvs point at the clone, not the original.
        cls = self.__class__
        clone = cls.__new__(cls)
        memo[id(self)] = clone
        for key, value in self.__dict__.items():
            if key == "_lock":
                setattr(clone, key, threading.RLock())
            elif key in ("_plans", "_active_plan", "_plan_stats"):
                # Plans pre-bind this engine's executors (and may hold
                # thread-pool handles); clones recompile lazily.
                continue
            else:
                setattr(clone, key, copy.deepcopy(value, memo))
        clone._init_plan_state()
        return clone

    def clone(self) -> "QuantizedInferenceEngine":
        """An independent engine (own model/executors/records/lock).

        Calibration state is carried over, so a calibrated engine clones
        into a ready-to-``infer`` engine — this is how the serving worker
        pool confines one engine per worker thread without recalibrating.
        """
        with self._lock:
            return copy.deepcopy(self)

    # -- installation -------------------------------------------------------------

    def _install(self, skip_first_conv: bool) -> None:
        engine = self
        counter = {"conv": 0}
        names = {id(m): n for n, m in self.model.named_modules()}

        def transform(m: Module) -> Module:
            if isinstance(m, Conv2d) and not isinstance(m, InstrumentedConv):
                idx = counter["conv"]
                counter["conv"] += 1
                if skip_first_conv and idx == 0:
                    return m
                name = names.get(id(m), f"conv{idx}")
                executor = engine.scheme.make_executor(m, f"C{idx + 1}:{name}")
                engine.executors[executor.info.name] = executor
                return InstrumentedConv(executor, engine)
            return m

        swap_modules(self.model, transform)
        if not self.executors:
            raise ValueError("model contains no Conv2d layers to quantize")

    def restore(self) -> None:
        """Put the original Conv2d modules back."""

        def transform(m: Module) -> Module:
            if isinstance(m, InstrumentedConv):
                return m.executor.conv
            return m

        swap_modules(self.model, transform)
        self.executors.clear()
        self._plans.clear()

    # -- calibration ---------------------------------------------------------------

    def calibrate(self, x: np.ndarray, batch_size: int = 128) -> None:
        """Run FP forward passes to collect ranges, then freeze qparams.

        Safe to call again later (recalibration): observers accumulate the
        new ranges and ``freeze`` recomputes quantization parameters.  The
        engine only transitions to ``run`` mode if calibration completes —
        a failure leaves it in ``calibrate`` mode with ``infer`` refusing
        to serve stale state.
        """
        with self._lock, trace.span(
            "engine.calibrate", images=len(x), scheme=self.scheme.name
        ):
            self.mode = "calibrate"
            self.model.eval()
            for start in range(0, len(x), batch_size):
                self.model(Tensor(x[start : start + batch_size]))
            for executor in self.executors.values():
                executor.freeze()
            # Re-freezing replaces packed operands and qparams; compiled
            # plans pre-bind those, so they are stale by construction.
            self._plans.clear()
            self.mode = "run"
        _log.debug(
            "engine_calibrated",
            scheme=self.scheme.name,
            images=len(x),
            layers=len(self.executors),
        )

    # -- inference -------------------------------------------------------------------

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Quantized inference on one batch (explicit serving entry point).

        ``x`` is an NCHW float array; returns the logits array.  Requires
        a completed :meth:`calibrate`.  Serialized with mode switches via
        the engine lock, so a concurrent recalibration can never observe a
        half-switched engine.
        """
        x = np.asarray(x)
        if x.ndim != 4:
            raise ValueError(f"expected NCHW batch (4 dims), got shape {x.shape}")
        if x.dtype not in (np.float32, np.float64):
            x = x.astype(np.float64)  # the cast Tensor() would apply
        with self._lock:
            if self.mode != "run":
                raise RuntimeError("engine not calibrated; call calibrate() first")
            self.model.eval()
            if trace.enabled():
                with trace.span(
                    "engine.infer", batch=int(x.shape[0]), scheme=self.scheme.name
                ):
                    return self._infer_locked(x)
            return self._infer_locked(x)

    def _infer_locked(self, x: np.ndarray) -> np.ndarray:
        """Planned dispatch for one batch; falls back to the legacy path.

        Plans specialize on the observed (shape, dtype) and transparently
        recompile on shape change (keyed, LRU-bounded) or when a staleness
        probe fails (re-freeze, exec-path change, monkeypatched executor).
        """
        if not self.use_plan or self.capture_inputs:
            return self.model(Tensor(x)).data
        key = (x.shape, x.dtype.str)
        plan = self._plans.get(key)
        if plan is not None:
            if plan.valid():
                self._plans.move_to_end(key)
                self._plan_stats["hits"] += 1
                return plan.run(x)
            del self._plans[key]
            self._plan_stats["invalidated"] += 1
        from repro.core.plan import compile_plan

        plan, out = compile_plan(self, x)
        self._plans[key] = plan
        self._plan_stats["compiles"] += 1
        while len(self._plans) > self.plan_cache_limit:
            self._plans.popitem(last=False)
            self._plan_stats["evictions"] += 1
        return out

    def plan_stats(self) -> dict:
        """Plan-cache counters plus a per-plan summary (profile table)."""
        return {
            **self._plan_stats,
            "cached": len(self._plans),
            "limit": self.plan_cache_limit,
            "enabled": self.use_plan,
            "plans": [p.summary() for p in self._plans.values()],
        }

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Back-compat alias of :meth:`infer` (without the ndim check)."""
        x = np.asarray(x)
        with self._lock:
            if self.mode != "run":
                raise RuntimeError("engine not calibrated; call calibrate() first")
            self.model.eval()
            return self.model(Tensor(x)).data

    def evaluate(self, x: np.ndarray, y: np.ndarray, batch_size: int = 128) -> float:
        """Top-1 accuracy under the quantization scheme."""
        if len(x) == 0:
            raise ValueError("cannot evaluate on an empty dataset")
        correct = 0
        for xb, yb in iterate_minibatches(x, y, batch_size):
            logits = self.forward(xb)
            correct += int((logits.argmax(axis=1) == yb).sum())
        return correct / len(x)

    # -- results -----------------------------------------------------------------------

    @property
    def records(self) -> "OrderedDict[str, LayerRecord]":
        return OrderedDict(
            (name, ex.record) for name, ex in self.executors.items()
        )

    def reset_records(self) -> None:
        with self._lock:
            for ex in self.executors.values():
                ex.record = LayerRecord(info=ex.info)

    def per_layer_sensitive_fraction(self) -> "OrderedDict[str, float]":
        """Output-sensitive mask density per layer (serving ``/metrics``)."""
        return OrderedDict(
            (name, rec.sensitive_fraction) for name, rec in self.records.items()
        )

    def total_macs(self) -> dict[str, int]:
        """Aggregate MAC counts by precision class across all layers."""
        totals: dict[str, int] = {}
        for rec in self.records.values():
            for key, val in rec.macs.items():
                totals[key] = totals.get(key, 0) + val
        return totals

    def mean_sensitive_fraction(self) -> float:
        """Output-sensitive fraction across all layers (ODQ schemes)."""
        total = sum(r.outputs_total for r in self.records.values())
        sens = sum(r.sensitive_total for r in self.records.values())
        return sens / total if total else 0.0


def run_scheme(
    model: Module,
    scheme: Scheme,
    x_calib: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    batch_size: int = 128,
) -> tuple[float, "OrderedDict[str, LayerRecord]"]:
    """Convenience one-shot: calibrate, evaluate, restore.

    Returns (top-1 accuracy, per-layer records).  The model is returned to
    its original modules even if evaluation raises.
    """
    engine = QuantizedInferenceEngine(model, scheme)
    try:
        engine.calibrate(x_calib, batch_size)
        acc = engine.evaluate(x_test, y_test, batch_size)
        records = engine.records
    finally:
        engine.restore()
    return acc, records


__all__ = ["InstrumentedConv", "QuantizedInferenceEngine", "run_scheme"]
