"""Quantized inference engine.

Takes a trained model and a :class:`~repro.core.schemes.Scheme`, replaces
every convolution with an instrumented executor, calibrates quantization
ranges on sample data, and then serves quantized inference while
collecting per-layer :class:`~repro.core.base.LayerRecord` statistics.

The engine is the glue reproducing the paper's methodology end-to-end:

    trained net --calibrate--> quantized inference --masks--> accelerator
    (Fig. 18 accuracy)                              (Figs 9-11, 19-21)
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.core.base import ConvExecutor, LayerRecord
from repro.core.schemes import Scheme
from repro.nn.layers import Conv2d, Module, swap_modules
from repro.nn.tensor import Tensor
from repro.nn.trainer import iterate_minibatches


class InstrumentedConv(Module):
    """Stand-in module that routes a conv through its scheme executor."""

    def __init__(self, executor: ConvExecutor, engine: "QuantizedInferenceEngine"):
        super().__init__()
        self.executor = executor
        self.engine = engine

    def forward(self, x: Tensor) -> Tensor:
        if self.engine.capture_inputs:
            self.executor.record.extra["last_input"] = x.data
        if self.engine.mode == "calibrate":
            return Tensor(self.executor.calibrate(x.data))
        return Tensor(self.executor.run(x.data))


class QuantizedInferenceEngine:
    """Applies a quantization scheme to a model for instrumented inference.

    The model is mutated in place (convs swapped for instrumented twins);
    use :meth:`restore` to undo.  Only ``Conv2d`` layers are quantized —
    matching the paper's focus ("our focus is on inference time, with a
    particular emphasis on the convolutional layers"); BN, pooling and the
    classifier head run in floating point.
    """

    def __init__(self, model: Module, scheme: Scheme, skip_first_conv: bool = False):
        self.model = model
        self.scheme = scheme
        self.mode = "calibrate"
        #: When true, each conv's latest input batch is stored in
        #: ``record.extra["last_input"]`` (used by the motivation study).
        self.capture_inputs = False
        self.executors: "OrderedDict[str, ConvExecutor]" = OrderedDict()
        self._originals: list[tuple[Module, str, int | None, Conv2d]] = []
        self._install(skip_first_conv)

    # -- installation -------------------------------------------------------------

    def _install(self, skip_first_conv: bool) -> None:
        engine = self
        counter = {"conv": 0}
        names = {id(m): n for n, m in self.model.named_modules()}

        def transform(m: Module) -> Module:
            if isinstance(m, Conv2d) and not isinstance(m, InstrumentedConv):
                idx = counter["conv"]
                counter["conv"] += 1
                if skip_first_conv and idx == 0:
                    return m
                name = names.get(id(m), f"conv{idx}")
                executor = engine.scheme.make_executor(m, f"C{idx + 1}:{name}")
                engine.executors[executor.info.name] = executor
                return InstrumentedConv(executor, engine)
            return m

        swap_modules(self.model, transform)
        if not self.executors:
            raise ValueError("model contains no Conv2d layers to quantize")

    def restore(self) -> None:
        """Put the original Conv2d modules back."""

        def transform(m: Module) -> Module:
            if isinstance(m, InstrumentedConv):
                return m.executor.conv
            return m

        swap_modules(self.model, transform)
        self.executors.clear()

    # -- calibration ---------------------------------------------------------------

    def calibrate(self, x: np.ndarray, batch_size: int = 128) -> None:
        """Run FP forward passes to collect ranges, then freeze qparams."""
        self.mode = "calibrate"
        self.model.eval()
        for start in range(0, len(x), batch_size):
            self.model(Tensor(x[start : start + batch_size]))
        for executor in self.executors.values():
            executor.freeze()
        self.mode = "run"

    # -- inference -------------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.mode != "run":
            raise RuntimeError("engine not calibrated; call calibrate() first")
        self.model.eval()
        return self.model(Tensor(x)).data

    def evaluate(self, x: np.ndarray, y: np.ndarray, batch_size: int = 128) -> float:
        """Top-1 accuracy under the quantization scheme."""
        correct = 0
        for xb, yb in iterate_minibatches(x, y, batch_size):
            logits = self.forward(xb)
            correct += int((logits.argmax(axis=1) == yb).sum())
        return correct / len(x)

    # -- results -----------------------------------------------------------------------

    @property
    def records(self) -> "OrderedDict[str, LayerRecord]":
        return OrderedDict(
            (name, ex.record) for name, ex in self.executors.items()
        )

    def reset_records(self) -> None:
        for ex in self.executors.values():
            ex.record = LayerRecord(info=ex.info)

    def total_macs(self) -> dict[str, int]:
        """Aggregate MAC counts by precision class across all layers."""
        totals: dict[str, int] = {}
        for rec in self.records.values():
            for key, val in rec.macs.items():
                totals[key] = totals.get(key, 0) + val
        return totals

    def mean_sensitive_fraction(self) -> float:
        """Output-sensitive fraction across all layers (ODQ schemes)."""
        total = sum(r.outputs_total for r in self.records.values())
        sens = sum(r.sensitive_total for r in self.records.values())
        return sens / total if total else 0.0


def run_scheme(
    model: Module,
    scheme: Scheme,
    x_calib: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    batch_size: int = 128,
) -> tuple[float, "OrderedDict[str, LayerRecord]"]:
    """Convenience one-shot: calibrate, evaluate, restore.

    Returns (top-1 accuracy, per-layer records).  The model is returned to
    its original modules even if evaluation raises.
    """
    engine = QuantizedInferenceEngine(model, scheme)
    try:
        engine.calibrate(x_calib, batch_size)
        acc = engine.evaluate(x_test, y_test, batch_size)
        records = engine.records
    finally:
        engine.restore()
    return acc, records


__all__ = ["InstrumentedConv", "QuantizedInferenceEngine", "run_scheme"]
