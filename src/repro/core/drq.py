"""DRQ baseline: input-directed region-based dynamic quantization.

Re-implementation of the comparison scheme (Song et al., ISCA 2020) as the
ODQ paper describes it (Sections 1-2): the input feature map of each conv
layer is partitioned into regions; a region whose mean magnitude exceeds a
threshold is *sensitive* and computed with high-precision inputs and
weights, otherwise with low-precision ones.  The paper's motivation study
(Figs 2-5) quantifies this scheme's two failure modes, which
``repro.core.stats`` reproduces on top of this executor.

The precision pairs evaluated in the paper are INT8/INT4 ("DRQ 8-4") and
INT4/INT2 ("DRQ 4-2").

DRQ learns its input threshold during training; offline we calibrate it
per layer so that a configurable fraction of input regions is sensitive
(default 50%, the regime DRQ's own evaluation reports), which preserves
the scheme's behaviour without its training loop.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import ConvExecutor, float_conv2d
from repro.core.masks import SensitivityMask
from repro.nn.layers import Conv2d
from repro.quant.observer import MinMaxObserver, Observer
from repro.quant.uniform import QParams, fake_quantize, symmetric_qparams
from repro.utils.im2col import im2col


def region_mean_magnitude(x: np.ndarray, region: int) -> np.ndarray:
    """Per-region mean |x|: (N, C, H, W) -> (N, 1, ceil(H/r), ceil(W/r)).

    Regions are non-overlapping ``region x region`` spatial tiles averaged
    over all channels (DRQ compares "the sum of input features in a
    region" against its threshold).  Edge tiles average over the valid
    remainder.
    """
    n, c, h, w = x.shape
    mag = np.abs(x).mean(axis=1, keepdims=True)
    rh = -(-h // region)
    rw = -(-w // region)
    pad_h, pad_w = rh * region - h, rw * region - w
    if pad_h or pad_w:
        mag = np.pad(mag, ((0, 0), (0, 0), (0, pad_h), (0, pad_w)), mode="edge")
    return mag.reshape(n, 1, rh, region, rw, region).mean(axis=(3, 5))


def upsample_mask(region_mask: np.ndarray, region: int, h: int, w: int) -> np.ndarray:
    """Expand a per-region mask back to per-pixel resolution (H, W)."""
    up = np.repeat(np.repeat(region_mask, region, axis=2), region, axis=3)
    return up[:, :, :h, :w]


class DRQConvExecutor(ConvExecutor):
    """One convolution under input-directed (DRQ-style) quantization.

    Parameters
    ----------
    hi_bits / lo_bits:
        Precision used for sensitive / insensitive input regions (weights
        are quantized to the matching width for each part).
    region:
        Spatial tile size of the sensitivity analysis (DRQ uses small
        square regions; 2 keeps the mask fine-grained at CIFAR scale).
    target_sensitive:
        Calibrated fraction of sensitive input regions.
    threshold:
        Absolute region-magnitude threshold; overrides ``target_sensitive``
        when given (mirrors DRQ's learned threshold).
    """

    def __init__(
        self,
        conv: Conv2d,
        name: str,
        hi_bits: int = 8,
        lo_bits: int = 4,
        region: int = 2,
        target_sensitive: float = 0.5,
        threshold: float | None = None,
        observer: Observer | None = None,
        keep_masks: bool = True,
    ) -> None:
        super().__init__(conv, name)
        if hi_bits <= lo_bits:
            raise ValueError("hi_bits must exceed lo_bits")
        if not 0.0 <= target_sensitive <= 1.0:
            raise ValueError("target_sensitive must be in [0, 1]")
        self.hi_bits = hi_bits
        self.lo_bits = lo_bits
        self.region = region
        self.target_sensitive = target_sensitive
        self.threshold = threshold
        self.observer = observer or MinMaxObserver()
        self.keep_masks = keep_masks
        self._region_samples: list[np.ndarray] = []

        self.qp_a_hi: QParams | None = None
        self.qp_a_lo: QParams | None = None
        self._w_hi: np.ndarray | None = None
        self._w_lo: np.ndarray | None = None

    # -- calibration ------------------------------------------------------------

    def calibrate(self, x: np.ndarray) -> np.ndarray:
        self.observer.observe(x)
        if self.threshold is None:
            self._region_samples.append(
                region_mean_magnitude(x, self.region).reshape(-1)
            )
        return self.reference_forward(x)

    def freeze(self) -> None:
        w = self.conv.weight.data
        qp_w_hi = symmetric_qparams(float(np.max(np.abs(w))), self.hi_bits)
        qp_w_lo = symmetric_qparams(float(np.max(np.abs(w))), self.lo_bits)
        self._w_hi = fake_quantize(w, qp_w_hi)
        self._w_lo = fake_quantize(w, qp_w_lo)
        self.qp_a_hi = self.observer.qparams(self.hi_bits, signed=False)
        self.qp_a_lo = self.observer.qparams(self.lo_bits, signed=False)
        if self.threshold is None:
            if len(self._region_samples) == 0:
                raise RuntimeError("no calibration data for DRQ threshold")
            pool = np.concatenate(self._region_samples)
            if pool.size == 0:
                raise RuntimeError("calibration batches were all empty")
            self.threshold = float(
                np.quantile(pool, 1.0 - self.target_sensitive)
            )
            self._region_samples.clear()
        super().freeze()

    # -- inference -----------------------------------------------------------------

    def input_mask(self, x: np.ndarray) -> np.ndarray:
        """Per-pixel boolean input-sensitivity mask (N, 1, H, W)."""
        region_mask = region_mean_magnitude(x, self.region) > self.threshold
        return upsample_mask(region_mask, self.region, x.shape[2], x.shape[3])

    def mixed_precision_output(
        self, x: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        """Convolution with per-pixel mixed-precision inputs.

        Sensitive pixels contribute through the (hi-bit input, hi-bit
        weight) path; insensitive pixels through the (lo, lo) path.  The
        two partial convolutions sum to the mixed-precision output.
        """
        x_hi = fake_quantize(x, self.qp_a_hi) * mask
        x_lo = fake_quantize(x, self.qp_a_lo) * ~mask
        out = float_conv2d(x_hi, self._w_hi, None, self.conv.stride, self.conv.padding)
        out += float_conv2d(x_lo, self._w_lo, None, self.conv.stride, self.conv.padding)
        if self.conv.bias is not None:
            out = out + self.conv.bias.data.reshape(1, -1, 1, 1)
        return out

    def low_precision_output(self, x: np.ndarray) -> np.ndarray:
        """All-low-precision output (used by the Eq.-1 'extra precision' metric)."""
        x_lo = fake_quantize(x, self.qp_a_lo)
        out = float_conv2d(x_lo, self._w_lo, None, self.conv.stride, self.conv.padding)
        if self.conv.bias is not None:
            out = out + self.conv.bias.data.reshape(1, -1, 1, 1)
        return out

    def _mac_split(
        self, mask: np.ndarray, mask_cols: np.ndarray | None = None
    ) -> tuple[int, int]:
        """(hi, lo) MAC counts implied by a per-pixel input mask.

        The count of sensitive input pixels per output window is a
        convolution of the mask with an all-ones kernel — i.e. the row
        sums of the mask's im2col matrix.  Callers holding the column
        matrix already (see :meth:`run`) pass it via ``mask_cols`` and
        the conv collapses to one vectorized ``sum``; this is the DRQ
        side of the shared column-cache machinery
        (:mod:`repro.core.colcache`).
        """
        k, s, p = self.info.kernel_size, self.info.stride, self.info.padding
        if mask_cols is None:
            mask_cols = im2col(mask.astype(np.float64), k, s, p)
        hi_pixels = float(mask_cols.sum())  # sensitive input pixels over all windows
        total = self.record.out_h * self.record.out_w * mask.shape[0] * k * k
        hi = int(round(hi_pixels)) * self.info.in_channels * self.info.out_channels
        total_macs = total * self.info.in_channels * self.info.out_channels
        return hi, total_macs - hi

    def run(self, x: np.ndarray) -> np.ndarray:
        if not self.frozen:
            raise RuntimeError(f"executor {self.info.name} not frozen; calibrate first")
        self._note_shapes(x)
        mask = self.input_mask(x)
        out = self.mixed_precision_output(x, mask)

        hi, lo = self._mac_split(mask)
        self.record.macs["drq_hi"] += hi
        self.record.macs["drq_lo"] += lo
        # Track input sensitivity as a mask record (broadcast to channels
        # only logically; stored at (N,1,H,W) to stay compact).
        smask = SensitivityMask(mask, float(self.threshold))
        self.record.extra.setdefault("input_sensitive_total", 0)
        self.record.extra.setdefault("input_total", 0)
        self.record.extra["input_sensitive_total"] += int(mask.sum()) * self.info.in_channels
        self.record.extra["input_total"] += mask.size * self.info.in_channels
        if self.keep_masks:
            self.record.extra["last_input_mask"] = smask
        return out


__all__ = [
    "DRQConvExecutor",
    "region_mean_magnitude",
    "upsample_mask",
]
