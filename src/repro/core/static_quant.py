"""Static uniform quantization executors (the INT16 / INT8 baselines).

These reproduce the paper's DoReFa-Net static baselines of Table 2 /
Figures 18-21: every weight and activation of a layer is quantized to a
fixed width, and every MAC runs at that width.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import ConvExecutor, int_conv2d
from repro.nn.layers import Conv2d
from repro.obs import trace
from repro.quant.observer import MinMaxObserver, Observer
from repro.quant.uniform import QParams, quantize, symmetric_qparams


class FP32ConvExecutor(ConvExecutor):
    """Identity scheme: full-precision reference (accuracy upper bound)."""

    def run(self, x: np.ndarray) -> np.ndarray:
        self._note_shapes(x)
        self.record.macs["fp32"] += x.shape[0] * self.record.out_h * self.record.out_w \
            * self.info.out_channels * self.info.macs_per_output
        return self.reference_forward(x)


class StaticQuantConvExecutor(ConvExecutor):
    """Uniform static quantization at ``bits`` for weights and activations.

    Weights use symmetric signed quantization, activations affine unsigned
    (zero-point corrected in the integer domain so the computation matches
    an actual integer accelerator datapath, not just fake-quant).
    """

    def __init__(
        self,
        conv: Conv2d,
        name: str,
        bits: int,
        observer: Observer | None = None,
        mac_key: str | None = None,
    ) -> None:
        super().__init__(conv, name)
        if bits < 2:
            raise ValueError("static quantization needs >= 2 bits")
        self.bits = bits
        self.observer = observer or MinMaxObserver()
        self.mac_key = mac_key or f"int{bits}"
        self.qp_a: QParams | None = None
        self.qp_w: QParams | None = None
        self._qw: np.ndarray | None = None
        self._w_sum: np.ndarray | None = None

    def calibrate(self, x: np.ndarray) -> np.ndarray:
        self.observer.observe(x)
        return self.reference_forward(x)

    def freeze(self) -> None:
        w = self.conv.weight.data
        self.qp_w = symmetric_qparams(float(np.max(np.abs(w))), self.bits)
        self.qp_a = self.observer.qparams(self.bits, signed=False)
        self._qw = quantize(w, self.qp_w)
        # Per-output-channel weight sum for the zero-point correction term:
        # conv(x) = s_a*s_w*(conv(q, qw) - zp * sum(qw)).
        self._w_sum = self._qw.sum(axis=(1, 2, 3)).reshape(1, -1, 1, 1)
        super().freeze()

    def run(self, x: np.ndarray) -> np.ndarray:
        if not self.frozen:
            raise RuntimeError(f"executor {self.info.name} not frozen; calibrate first")
        self._note_shapes(x)
        name = self.info.name
        with trace.span("static.run", layer=name, bits=self.bits) as sp:
            with trace.span("static.quantize", layer=name):
                q = quantize(x, self.qp_a)
            with trace.span("static.full_result", layer=name):
                acc = int_conv2d(q, self._qw, self.conv.stride, self.conv.padding,
                                 pad_value=self.qp_a.zero_point)
            out = self.qp_a.scale * self.qp_w.scale * (acc - self.qp_a.zero_point * self._w_sum)
            if self.conv.bias is not None:
                out = out + self.conv.bias.data.reshape(1, -1, 1, 1)
            macs = x.shape[0] * self.record.out_h \
                * self.record.out_w * self.info.out_channels * self.info.macs_per_output
            self.record.macs[self.mac_key] += macs
            sp.add("macs_exec", macs)
        return out


__all__ = ["FP32ConvExecutor", "StaticQuantConvExecutor"]
