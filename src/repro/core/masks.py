"""Sensitivity bit masks.

The sensitivity predictor stores one bit per output feature ("1" =
sensitive, computed at full precision; "0" = insensitive, kept at the
predictor's 2-bit partial result).  The same structure also represents
DRQ's *input* sensitivity masks.  Masks are the interface between the
quantization core and the accelerator simulator: ``repro.core.pipeline``
dumps them, ``repro.accel.simulator`` consumes them — exactly the paper's
methodology (Section 5.2: "we use Pytorch to dump the binary mask maps for
inference, which are then fed into our simulator").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SensitivityMask:
    """Boolean mask over an output feature map batch (N, C, H, W)."""

    mask: np.ndarray
    threshold: float

    def __post_init__(self) -> None:
        self.mask = np.asarray(self.mask, dtype=bool)
        if self.mask.ndim != 4:
            raise ValueError("mask must be (N, C, H, W)")

    @property
    def shape(self) -> tuple[int, ...]:
        return self.mask.shape

    @property
    def total(self) -> int:
        """Total output features across the batch."""
        return int(self.mask.size)

    @property
    def sensitive_count(self) -> int:
        return int(self.mask.sum())

    @property
    def sensitive_fraction(self) -> float:
        return self.sensitive_count / self.total if self.total else 0.0

    @property
    def insensitive_fraction(self) -> float:
        return 1.0 - self.sensitive_fraction

    def per_channel_counts(self) -> np.ndarray:
        """Sensitive-output count per output channel, summed over the batch.

        This is the per-OFM workload vector consumed by the accelerator's
        workload scheduler (Figs 14-16).
        """
        return self.mask.sum(axis=(0, 2, 3)).astype(np.int64)

    def per_image_channel_counts(self) -> np.ndarray:
        """Shape (N, C) sensitive counts: one OFM workload row per image."""
        return self.mask.sum(axis=(2, 3)).astype(np.int64)


def mask_from_magnitude(values: np.ndarray, threshold: float) -> SensitivityMask:
    """Build a mask by thresholding ``|values|`` (the paper's predictor rule)."""
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    return SensitivityMask(np.abs(values) > threshold, threshold)


__all__ = ["SensitivityMask", "mask_from_magnitude"]
