"""Adaptive threshold selection (Section 3, last paragraph; Fig. 22; Table 3).

The paper's procedure: start from a relatively large threshold taken from
the distribution of predictor outputs, run ODQ inference, and *halve* the
threshold until accuracy meets expectation.  One threshold is used for
every layer of a model ("In the same DNN model, we use the same threshold
across all layers, which greatly simplifies the design").

We reproduce the procedure verbatim, plus a dense sweep helper for the
Fig.-22 threshold-analysis curve.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.core.odq_qat import finetune_odq
from repro.core.pipeline import QuantizedInferenceEngine, run_scheme
from repro.core.schemes import odq_scheme
from repro.nn.layers import Module


@dataclass
class ThresholdSearchResult:
    """Outcome of the adaptive halving search."""

    threshold: float
    accuracy: float
    baseline_accuracy: float
    trace: list[tuple[float, float]] = field(default_factory=list)
    converged: bool = True

    @property
    def accuracy_drop(self) -> float:
        return self.baseline_accuracy - self.accuracy


def initial_threshold(
    model: Module,
    x_calib: np.ndarray,
    percentile: float = 75.0,
    total_bits: int = 4,
    low_bits: int = 2,
) -> float:
    """Pick the starting threshold from the predictor-output distribution.

    Mirrors the paper: "ODQ randomly selects N inputs ..., performs
    inference using the high-order bits ..., and generates the output
    distribution of each layer.  A relatively large initial threshold is
    chosen based on the output distribution."  We take the given
    percentile of |partial output| pooled over all layers.
    """
    scheme = odq_scheme(threshold=float("inf"), total_bits=total_bits, low_bits=low_bits)
    engine = QuantizedInferenceEngine(model, scheme)
    try:
        for executor in engine.executors.values():
            executor.collect_partials = True
        engine.calibrate(x_calib)
        engine.forward(x_calib)
        samples = [
            np.concatenate(ex.record.extra["partial_abs_samples"])
            for ex in engine.executors.values()
        ]
        pooled = np.concatenate(samples)
        # Trained nets quantize many weights/activations to tiny values whose
        # high planes are zero, so a large share of partials is exactly 0;
        # the "relatively large" starting threshold must come from the
        # non-trivial part of the distribution (halving from 0 would stall).
        nonzero = pooled[pooled > 0]
        if nonzero.size == 0:
            return 1e-6
        return float(np.percentile(nonzero, percentile))
    finally:
        engine.restore()


def _evaluate_threshold(
    model: Module,
    theta: float,
    x_calib: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    total_bits: int,
    low_bits: int,
    finetune: dict | None,
) -> tuple[float, Module]:
    """ODQ accuracy at one threshold, optionally with the paper's
    retraining step (on a scratch copy; the input model is untouched)."""
    candidate = model
    if finetune is not None:
        candidate = copy.deepcopy(model)
        finetune_odq(candidate, theta, **finetune)
        candidate.eval()
    acc, _ = run_scheme(
        candidate,
        odq_scheme(theta, total_bits=total_bits, low_bits=low_bits),
        x_calib,
        x_val,
        y_val,
    )
    return acc, candidate


def adaptive_threshold_search(
    model: Module,
    x_calib: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    max_accuracy_drop: float = 0.01,
    start_threshold: float | None = None,
    max_halvings: int = 12,
    total_bits: int = 4,
    low_bits: int = 2,
    finetune: dict | None = None,
) -> ThresholdSearchResult:
    """The paper's halving search for the per-model ODQ threshold.

    ``max_accuracy_drop`` is "accuracy meets the expectation": the search
    stops at the first threshold whose ODQ validation accuracy is within
    that drop of the full-precision model's accuracy.

    ``finetune`` enables the paper's retraining step per candidate
    threshold ("Weights are retrained after introducing the threshold to
    the model"); it is the keyword dict passed to
    :func:`repro.core.odq_qat.finetune_odq` (minus the threshold), e.g.
    ``{"x_train": ..., "y_train": ..., "epochs": 2, "lr": 0.005}``.
    Each candidate trains a scratch copy; the input model is untouched.
    """
    from repro.core.schemes import fp32_scheme

    baseline, _ = run_scheme(model, fp32_scheme(), x_calib, x_val, y_val)

    theta = (
        start_threshold
        if start_threshold is not None
        else initial_threshold(model, x_calib, total_bits=total_bits, low_bits=low_bits)
    )
    trace: list[tuple[float, float]] = []
    for _ in range(max_halvings):
        acc, _ = _evaluate_threshold(
            model, theta, x_calib, x_val, y_val, total_bits, low_bits, finetune
        )
        trace.append((theta, acc))
        if baseline - acc <= max_accuracy_drop:
            return ThresholdSearchResult(theta, acc, baseline, trace, converged=True)
        theta /= 2.0
    # Fall back to the best threshold seen.
    theta, acc = max(trace, key=lambda t: t[1])
    return ThresholdSearchResult(theta, acc, baseline, trace, converged=False)


@dataclass
class ThresholdSweepPoint:
    """One point of the Fig.-22 curve."""

    threshold: float
    accuracy: float
    insensitive_fraction: float  # share of INT2-only outputs
    sensitive_fraction: float  # share of INT4 outputs


def threshold_sweep(
    model: Module,
    x_calib: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    thresholds: np.ndarray | list[float],
    total_bits: int = 4,
    low_bits: int = 2,
    finetune: dict | None = None,
) -> list[ThresholdSweepPoint]:
    """Accuracy and INT4/INT2 mix across a threshold range (Fig. 22).

    ``finetune`` retrains a scratch copy per threshold (see
    :func:`adaptive_threshold_search`), matching the paper's procedure.
    """
    points = []
    for theta in thresholds:
        candidate = model
        if finetune is not None:
            candidate = copy.deepcopy(model)
            finetune_odq(candidate, float(theta), **finetune)
            candidate.eval()
        engine = QuantizedInferenceEngine(
            candidate, odq_scheme(float(theta), total_bits=total_bits, low_bits=low_bits)
        )
        try:
            engine.calibrate(x_calib)
            acc = engine.evaluate(x_val, y_val)
            sens = engine.mean_sensitive_fraction()
        finally:
            engine.restore()
        points.append(
            ThresholdSweepPoint(
                threshold=float(theta),
                accuracy=acc,
                insensitive_fraction=1.0 - sens,
                sensitive_fraction=sens,
            )
        )
    return points


__all__ = [
    "ThresholdSearchResult",
    "initial_threshold",
    "adaptive_threshold_search",
    "ThresholdSweepPoint",
    "threshold_sweep",
]
