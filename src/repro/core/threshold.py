"""Adaptive threshold selection (Section 3, last paragraph; Fig. 22; Table 3).

The paper's procedure: start from a relatively large threshold taken from
the distribution of predictor outputs, run ODQ inference, and *halve* the
threshold until accuracy meets expectation.  One threshold is used for
every layer of a model ("In the same DNN model, we use the same threshold
across all layers, which greatly simplifies the design").

We reproduce the procedure verbatim, plus a dense sweep helper for the
Fig.-22 threshold-analysis curve.
"""

from __future__ import annotations

import copy
import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.colcache import ColumnCache
from repro.core.odq import ODQConvExecutor
from repro.core.odq_qat import finetune_odq
from repro.core.pipeline import QuantizedInferenceEngine, run_scheme
from repro.core.schemes import odq_scheme
from repro.nn.layers import Module


class SweepColumnCache:
    """Content-addressed :class:`~repro.core.colcache.ColumnCache` store.

    The adaptive search and the Fig.-22 sweep run the *same* inputs
    through the *same* frozen engine once per candidate threshold.  The
    threshold only steers the mask/result-generation steps — the
    quantize→pad→im2col prep of a layer whose input bytes are unchanged
    is identical across the whole sweep.  Installing this provider on the
    engine's ODQ executors (:meth:`install`) keys each layer's prep by
    ``(layer, input-id, compensate)``, where the input id is a BLAKE2b
    fingerprint of the input bytes, so the prep is paid once per distinct
    input instead of once per candidate threshold.

    Correctness does not rest on any sweep-invariance assumption: a
    changed input (deeper layers *do* see threshold-dependent inputs)
    changes the fingerprint and misses.  A small per-layer LRU bounds
    memory — sweep-invariant entries (the first conv always; every conv
    at ``threshold=inf`` or in single-conv models) are re-hit every
    iteration and therefore never evicted.

    :attr:`prep_calls` counts actual cache constructions per layer (the
    quantity the sweep amortizes); :attr:`hits`/:attr:`misses` summarize
    reuse.  Store and counters are guarded by an internal lock: sweep
    drivers are single-threaded, but an engine whose executors carry this
    provider can be shared with multi-threaded callers (repro.serve
    workers), and the LRU bookkeeping must not interleave.  The expensive
    cache *construction* happens outside the lock; a racing duplicate
    build is benign (content-addressed, last write wins).
    """

    def __init__(self, capacity_per_layer: int = 8) -> None:
        if capacity_per_layer < 1:
            raise ValueError("capacity_per_layer must be >= 1")
        self.capacity_per_layer = capacity_per_layer
        self._lock = threading.Lock()
        self._store: "OrderedDict[tuple, ColumnCache]" = OrderedDict()
        self._per_layer: dict[str, int] = {}
        self.prep_calls: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self._installed: list[ODQConvExecutor] = []

    @staticmethod
    def fingerprint(x: np.ndarray) -> bytes:
        """BLAKE2b digest of the input's bytes (plus shape/dtype)."""
        arr = np.ascontiguousarray(x)
        h = hashlib.blake2b(digest_size=16)
        h.update(str((arr.shape, arr.dtype.str)).encode())
        h.update(arr.view(np.uint8).data)
        return h.digest()

    def __call__(self, executor: ODQConvExecutor, x: np.ndarray,
                 compensate: bool) -> ColumnCache:
        layer = executor.info.name
        key = (layer, self.fingerprint(x), bool(compensate))
        with self._lock:
            cache = self._store.get(key)
            if cache is not None:
                self._store.move_to_end(key)
                self.hits += 1
                return cache
            self.misses += 1
            self.prep_calls[layer] = self.prep_calls.get(layer, 0) + 1
        cache = executor._fresh_cache(x, compensate)
        with self._lock:
            self._store[key] = cache
            n = self._per_layer.get(layer, 0) + 1
            self._per_layer[layer] = n
            if n > self.capacity_per_layer:
                # Evict this layer's least-recently-used entry.
                for k in self._store:
                    if k[0] == layer:
                        del self._store[k]
                        self._per_layer[layer] = n - 1
                        break
        return cache

    # -- wiring ------------------------------------------------------------

    def install(self, engine: QuantizedInferenceEngine) -> int:
        """Set this store as the cache provider on every ODQ executor."""
        count = 0
        for ex in engine.executors.values():
            if isinstance(ex, ODQConvExecutor):
                ex.cache_provider = self
                self._installed.append(ex)
                count += 1
        return count

    def uninstall(self) -> None:
        for ex in self._installed:
            if ex.cache_provider is self:
                ex.cache_provider = None
        self._installed.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "prep_calls": dict(self.prep_calls),
                "entries": len(self._store),
            }


@dataclass
class ThresholdSearchResult:
    """Outcome of the adaptive halving search."""

    threshold: float
    accuracy: float
    baseline_accuracy: float
    trace: list[tuple[float, float]] = field(default_factory=list)
    converged: bool = True

    @property
    def accuracy_drop(self) -> float:
        return self.baseline_accuracy - self.accuracy


def initial_threshold(
    model: Module,
    x_calib: np.ndarray,
    percentile: float = 75.0,
    total_bits: int = 4,
    low_bits: int = 2,
) -> float:
    """Pick the starting threshold from the predictor-output distribution.

    Mirrors the paper: "ODQ randomly selects N inputs ..., performs
    inference using the high-order bits ..., and generates the output
    distribution of each layer.  A relatively large initial threshold is
    chosen based on the output distribution."  We take the given
    percentile of |partial output| pooled over all layers.
    """
    scheme = odq_scheme(threshold=float("inf"), total_bits=total_bits, low_bits=low_bits)
    engine = QuantizedInferenceEngine(model, scheme)
    try:
        for executor in engine.executors.values():
            executor.collect_partials = True
        engine.calibrate(x_calib)
        engine.forward(x_calib)
        samples = [
            np.concatenate(ex.record.extra["partial_abs_samples"])
            for ex in engine.executors.values()
        ]
        pooled = np.concatenate(samples)
        # Trained nets quantize many weights/activations to tiny values whose
        # high planes are zero, so a large share of partials is exactly 0;
        # the "relatively large" starting threshold must come from the
        # non-trivial part of the distribution (halving from 0 would stall).
        nonzero = pooled[pooled > 0]
        if nonzero.size == 0:
            return 1e-6
        return float(np.percentile(nonzero, percentile))
    finally:
        engine.restore()


class _SharedSweepEngine:
    """One calibrated ODQ engine reused across candidate thresholds.

    The threshold is read *per call* by the executors (it steers only the
    mask and result-generation steps), while calibration and freezing
    depend only on ``(model weights, x_calib)`` — so one engine calibrated
    once produces byte-identical results to a fresh engine per candidate,
    at one calibration instead of N.  A :class:`SweepColumnCache` rides
    along so the quantize→pad→im2col prep of sweep-invariant layer inputs
    is also paid once for the whole sweep.

    Only valid when no per-candidate retraining happens (``finetune``
    changes the weights, which invalidates both reuses).
    """

    def __init__(
        self,
        model: Module,
        x_calib: np.ndarray,
        total_bits: int,
        low_bits: int,
        cache_capacity: int = 8,
    ) -> None:
        self.engine = QuantizedInferenceEngine(
            model, odq_scheme(0.0, total_bits=total_bits, low_bits=low_bits)
        )
        self.cache = SweepColumnCache(cache_capacity)
        self.cache.install(self.engine)
        self.engine.calibrate(x_calib)

    def evaluate_at(
        self, theta: float, x_val: np.ndarray, y_val: np.ndarray
    ) -> tuple[float, float]:
        """(accuracy, mean sensitive fraction) at one threshold."""
        for ex in self.engine.executors.values():
            if isinstance(ex, ODQConvExecutor):
                ex.threshold = float(theta)
        self.engine.reset_records()
        acc = self.engine.evaluate(x_val, y_val)
        return acc, self.engine.mean_sensitive_fraction()

    def close(self) -> None:
        self.cache.uninstall()
        self.engine.restore()


def _evaluate_threshold(
    model: Module,
    theta: float,
    x_calib: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    total_bits: int,
    low_bits: int,
    finetune: dict | None,
) -> tuple[float, Module]:
    """ODQ accuracy at one threshold, optionally with the paper's
    retraining step (on a scratch copy; the input model is untouched)."""
    candidate = model
    if finetune is not None:
        candidate = copy.deepcopy(model)
        finetune_odq(candidate, theta, **finetune)
        candidate.eval()
    acc, _ = run_scheme(
        candidate,
        odq_scheme(theta, total_bits=total_bits, low_bits=low_bits),
        x_calib,
        x_val,
        y_val,
    )
    return acc, candidate


def adaptive_threshold_search(
    model: Module,
    x_calib: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    max_accuracy_drop: float = 0.01,
    start_threshold: float | None = None,
    max_halvings: int = 12,
    total_bits: int = 4,
    low_bits: int = 2,
    finetune: dict | None = None,
) -> ThresholdSearchResult:
    """The paper's halving search for the per-model ODQ threshold.

    ``max_accuracy_drop`` is "accuracy meets the expectation": the search
    stops at the first threshold whose ODQ validation accuracy is within
    that drop of the full-precision model's accuracy.

    ``finetune`` enables the paper's retraining step per candidate
    threshold ("Weights are retrained after introducing the threshold to
    the model"); it is the keyword dict passed to
    :func:`repro.core.odq_qat.finetune_odq` (minus the threshold), e.g.
    ``{"x_train": ..., "y_train": ..., "epochs": 2, "lr": 0.005}``.
    Each candidate trains a scratch copy; the input model is untouched.

    Without retraining the candidates share one calibrated engine and a
    :class:`SweepColumnCache` (see :class:`_SharedSweepEngine`): the
    results are byte-identical to the per-candidate rebuild, but the
    calibration pass and each layer's quantize→pad→im2col prep for
    unchanged inputs are paid once for the whole search.
    """
    from repro.core.schemes import fp32_scheme

    baseline, _ = run_scheme(model, fp32_scheme(), x_calib, x_val, y_val)

    theta = (
        start_threshold
        if start_threshold is not None
        else initial_threshold(model, x_calib, total_bits=total_bits, low_bits=low_bits)
    )
    trace: list[tuple[float, float]] = []
    shared = (
        None
        if finetune is not None
        else _SharedSweepEngine(model, x_calib, total_bits, low_bits)
    )
    try:
        for _ in range(max_halvings):
            if shared is not None:
                acc, _ = shared.evaluate_at(theta, x_val, y_val)
            else:
                acc, _ = _evaluate_threshold(
                    model, theta, x_calib, x_val, y_val,
                    total_bits, low_bits, finetune,
                )
            trace.append((theta, acc))
            if baseline - acc <= max_accuracy_drop:
                return ThresholdSearchResult(
                    theta, acc, baseline, trace, converged=True
                )
            theta /= 2.0
    finally:
        if shared is not None:
            shared.close()
    # Fall back to the best threshold seen.
    theta, acc = max(trace, key=lambda t: t[1])
    return ThresholdSearchResult(theta, acc, baseline, trace, converged=False)


@dataclass
class ThresholdSweepPoint:
    """One point of the Fig.-22 curve."""

    threshold: float
    accuracy: float
    insensitive_fraction: float  # share of INT2-only outputs
    sensitive_fraction: float  # share of INT4 outputs


def threshold_sweep(
    model: Module,
    x_calib: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    thresholds: np.ndarray | list[float],
    total_bits: int = 4,
    low_bits: int = 2,
    finetune: dict | None = None,
) -> list[ThresholdSweepPoint]:
    """Accuracy and INT4/INT2 mix across a threshold range (Fig. 22).

    ``finetune`` retrains a scratch copy per threshold (see
    :func:`adaptive_threshold_search`), matching the paper's procedure.

    Without retraining, all points share one calibrated engine plus a
    :class:`SweepColumnCache` — byte-identical
    :class:`ThresholdSweepPoint` values, but one calibration and (for
    sweep-invariant layer inputs) one im2col prep per layer for the
    entire sweep instead of one per point.
    """
    points = []
    if finetune is None:
        shared = _SharedSweepEngine(model, x_calib, total_bits, low_bits)
        try:
            for theta in thresholds:
                acc, sens = shared.evaluate_at(float(theta), x_val, y_val)
                points.append(
                    ThresholdSweepPoint(
                        threshold=float(theta),
                        accuracy=acc,
                        insensitive_fraction=1.0 - sens,
                        sensitive_fraction=sens,
                    )
                )
        finally:
            shared.close()
        return points
    for theta in thresholds:
        candidate = copy.deepcopy(model)
        finetune_odq(candidate, float(theta), **finetune)
        candidate.eval()
        engine = QuantizedInferenceEngine(
            candidate, odq_scheme(float(theta), total_bits=total_bits, low_bits=low_bits)
        )
        try:
            engine.calibrate(x_calib)
            acc = engine.evaluate(x_val, y_val)
            sens = engine.mean_sensitive_fraction()
        finally:
            engine.restore()
        points.append(
            ThresholdSweepPoint(
                threshold=float(theta),
                accuracy=acc,
                insensitive_fraction=1.0 - sens,
                sensitive_fraction=sens,
            )
        )
    return points


__all__ = [
    "SweepColumnCache",
    "ThresholdSearchResult",
    "initial_threshold",
    "adaptive_threshold_search",
    "ThresholdSweepPoint",
    "threshold_sweep",
]
