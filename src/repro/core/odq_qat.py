"""ODQ-aware fine-tuning (the paper's threshold-in-the-loop retraining).

Section 3: "Weights are retrained after introducing the threshold to the
model to capture sensitivity information in the input feature maps."
Post-training ODQ alone degrades accuracy badly — insensitive outputs are
frozen at the predictor's coarse 2-bit partial, a forward semantics the
network never saw during training.  Retraining *with the ODQ forward
pass* lets the network adapt: weights move so that genuinely important
outputs clear the threshold and the rest tolerate the partial value.

:class:`ODQAwareConv2d` runs the exact inference-time mixed computation
(via :func:`repro.core.odq.odq_mixed_conv`) in its forward pass and a
straight-through estimator in its backward pass (gradients as if the
layer were an ordinary convolution with the dequantized INT4 weights —
the standard fake-quant STE, extended to ignore the mask discontinuity).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.config import ODQ_LOW_BITS, ODQ_TOTAL_BITS
from repro.core.gemm import pgemm
from repro.core.odq import odq_mixed_conv, odq_weight_qparams
from repro.nn.layers import Conv2d, Module, swap_modules
from repro.nn.loss import cross_entropy
from repro.nn.optim import SGD
from repro.nn.tensor import Tensor
from repro.nn.trainer import Trainer, TrainHistory
from repro.quant.uniform import affine_qparams, dequantize, quantize
from repro.utils.im2col import col2im


class ODQAwareConv2d(Conv2d):
    """Conv2d whose forward pass is the ODQ two-step mixed computation.

    Activation ranges are taken per batch (min/max), mirroring how BN
    statistics behave in training mode; the final calibration at
    deployment replays the same computation with frozen observers.
    """

    def __init__(
        self,
        *args: Any,
        threshold: float,
        total_bits: int = ODQ_TOTAL_BITS,
        low_bits: int = ODQ_LOW_BITS,
        weight_percentile: float = 97.0,
        threshold_mode: str = "absolute",
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.threshold = threshold
        self.total_bits = total_bits
        self.low_bits = low_bits
        self.weight_percentile = weight_percentile
        self.threshold_mode = threshold_mode
        #: EMA of the layer's full-result std (drives scaled thresholds;
        #: frozen outside training mode so eval is deterministic).
        self.output_std_ema: float | None = None
        #: Sensitive fraction of the latest forward batch (diagnostics).
        self.last_sensitive_fraction = 0.0

    @classmethod
    def from_conv(cls, conv: Conv2d, threshold: float, **kwargs: Any) -> "ODQAwareConv2d":
        layer = cls(
            conv.in_channels,
            conv.out_channels,
            conv.kernel_size,
            conv.stride,
            conv.padding,
            bias=conv.bias is not None,
            threshold=threshold,
            **kwargs,
        )
        layer.weight = conv.weight
        layer.bias = conv.bias
        return layer

    def to_conv(self) -> Conv2d:
        """Return a plain Conv2d sharing this layer's parameters."""
        conv = Conv2d(
            self.in_channels,
            self.out_channels,
            self.kernel_size,
            self.stride,
            self.padding,
            bias=self.bias is not None,
        )
        conv.weight = self.weight
        conv.bias = self.bias
        return conv

    def forward(self, x: Tensor) -> Tensor:
        x_data = x.data
        qp_a = affine_qparams(float(x_data.min()), float(x_data.max()), self.total_bits)
        qp_w = odq_weight_qparams(self.weight.data, self.total_bits, self.weight_percentile)

        if self.threshold_mode == "scaled":
            sigma = self.output_std_ema if self.output_std_ema else 1.0
            threshold = self.threshold * sigma
        else:
            threshold = self.threshold
        result = odq_mixed_conv(
            x_data,
            self.weight.data,
            None if self.bias is None else self.bias.data,
            self.stride,
            self.padding,
            threshold,
            qp_a,
            qp_w,
            self.low_bits,
            with_cache=True,
        )
        out_data = result["out"]
        if self.threshold_mode == "scaled" and self.training:
            batch_std = float(result["full"].std())  # repro: noqa[NUM401] — dense conv output; nonempty whenever forward ran
            if self.output_std_ema is None:
                self.output_std_ema = batch_std
            else:
                self.output_std_ema = 0.9 * self.output_std_ema + 0.1 * batch_std
        self.last_sensitive_fraction = result["mask"].sensitive_fraction

        # STE backward: gradients of an ordinary conv over the
        # *dequantized* operands (fake-quant straight-through).  The
        # forward pass's column cache already holds the quantized input
        # columns (zero-point padded — which dequantizes to the real-0
        # padding an ordinary conv uses), so the dequantized column
        # matrix is one affine transform instead of a second im2col.
        w_deq = dequantize(quantize(self.weight.data, qp_w), qp_w)
        k, s, p = self.kernel_size, self.stride, self.padding
        cache = result["cache"]
        cols = (cache.cols - qp_a.zero_point) * qp_a.scale
        c_out = self.out_channels
        wmat = w_deq.reshape(c_out, -1).T

        weight_t, bias_t, x_t = self.weight, self.bias, x

        def backward(g: np.ndarray) -> None:
            gmat = np.asarray(g).transpose(0, 2, 3, 1).reshape(-1, c_out)
            if weight_t.requires_grad:
                weight_t._accumulate(pgemm(cols.T, gmat).T.reshape(weight_t.shape))
            if bias_t is not None and bias_t.requires_grad:
                bias_t._accumulate(gmat.sum(axis=0))
            if x_t.requires_grad:
                x_t._accumulate(col2im(pgemm(gmat, wmat.T), x_t.shape, k, s, p))

        parents = (x, self.weight) if self.bias is None else (x, self.weight, self.bias)
        return Tensor.from_op(out_data, parents, backward, "odq_conv")


def convert_to_odq_qat(
    model: Module,
    threshold: float,
    total_bits: int = ODQ_TOTAL_BITS,
    low_bits: int = ODQ_LOW_BITS,
    weight_percentile: float = 97.0,
    threshold_mode: str = "absolute",
) -> Module:
    """Swap every Conv2d for an :class:`ODQAwareConv2d` (in place)."""

    def transform(m: Module) -> Module:
        if isinstance(m, Conv2d) and not isinstance(m, ODQAwareConv2d):
            return ODQAwareConv2d.from_conv(
                m,
                threshold,
                total_bits=total_bits,
                low_bits=low_bits,
                weight_percentile=weight_percentile,
                threshold_mode=threshold_mode,
            )
        return m

    return swap_modules(model, transform)


def convert_from_odq_qat(model: Module) -> Module:
    """Undo :func:`convert_to_odq_qat`, keeping the fine-tuned weights."""

    def transform(m: Module) -> Module:
        if isinstance(m, ODQAwareConv2d):
            return m.to_conv()
        return m

    return swap_modules(model, transform)


def finetune_odq(
    model: Module,
    threshold: float,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray | None = None,
    y_test: np.ndarray | None = None,
    epochs: int = 2,
    lr: float = 0.01,
    batch_size: int = 32,
    weight_percentile: float = 97.0,
    rng: np.random.Generator | None = None,
    keep_best: bool = True,
    threshold_mode: str = "absolute",
) -> TrainHistory:
    """Fine-tune ``model`` under ODQ forward semantics, then restore it.

    This is the reproduction of the paper's retraining step; the returned
    model has ordinary ``Conv2d`` layers with ODQ-adapted weights, ready
    for the quantized inference engine.

    ``keep_best`` (with a test split provided) restores the epoch with
    the highest ODQ-forward test accuracy — low-bit STE training is
    noisy, and the paper's accept/reject loop implies keeping a
    satisfactory checkpoint rather than blindly the last one.
    """
    convert_to_odq_qat(
        model, threshold,
        weight_percentile=weight_percentile,
        threshold_mode=threshold_mode,
    )
    try:
        # Seed each layer's output-std EMA with one training-mode forward so
        # scaled thresholds are meaningful from the first gradient step.
        model.train()
        model(Tensor(x_train[: min(len(x_train), batch_size)]))
        trainer = Trainer(
            model,
            SGD(model.parameters(), lr=lr, momentum=0.9),
            loss_fn=cross_entropy,
            batch_size=batch_size,
            rng=rng if rng is not None else np.random.default_rng(0),
            grad_clip=5.0,
        )
        if keep_best and x_test is not None and y_test is not None:
            history = TrainHistory()
            best_acc, best_state = -1.0, None
            for _ in range(epochs):
                h = trainer.fit(x_train, y_train, x_test, y_test, epochs=1)
                history.train_loss += h.train_loss
                history.train_acc += h.train_acc
                history.test_acc += h.test_acc
                if h.test_acc[-1] > best_acc:
                    best_acc = h.test_acc[-1]
                    best_state = model.state_dict()
            if best_state is not None:
                model.load_state_dict(best_state)
        else:
            history = trainer.fit(x_train, y_train, x_test, y_test, epochs=epochs)
    finally:
        convert_from_odq_qat(model)
    return history


__all__ = [
    "ODQAwareConv2d",
    "convert_to_odq_qat",
    "convert_from_odq_qat",
    "finetune_odq",
]
