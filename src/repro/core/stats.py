"""Motivation-study metrics (Section 2, Figures 2-5) and shared statistics.

These quantify the two failure modes of input-directed quantization that
motivate ODQ:

* Fig. 2 — sensitive outputs are computed from large fractions of
  *low-precision* inputs (bucketed 0-25 / 25-50 / 50-75 / 75-100 %);
* Fig. 3 — the resulting *precision loss* on sensitive outputs;
* Fig. 4 — insensitive outputs consume *high-precision* inputs
  (same buckets);
* Fig. 5 — the *extra precision* (Eq. 1) wasted on insensitive outputs:
  ``max |O_IDQ - O_LP_input|``.

Output sensitivity is defined the same way the ODQ predictor defines it:
``|output| > threshold`` on the full-precision output feature map.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.drq import DRQConvExecutor
from repro.core.base import float_conv2d

#: The paper's Fig. 2/4 histogram bucket edges (fractions).
BUCKET_EDGES = (0.0, 0.25, 0.50, 0.75, 1.0 + 1e-9)
BUCKET_LABELS = ("0-25%", "25-50%", "50-75%", "75-100%")


@dataclass
class MotivationLayerStats:
    """Figures 2-5 numbers for one convolution layer."""

    layer: str
    #: Fig. 2: share of *sensitive* outputs per low-precision-input bucket.
    lowprec_input_buckets: np.ndarray
    #: Fig. 3: mean |O_fp - O_drq| over sensitive outputs.
    precision_loss_sensitive: float
    #: Fig. 4: share of *insensitive* outputs per high-precision-input bucket.
    highprec_input_buckets: np.ndarray
    #: Fig. 5: Eq. 1 extra precision over insensitive outputs.
    extra_precision_insensitive: float
    sensitive_fraction: float


def _bucket_shares(fractions: np.ndarray) -> np.ndarray:
    """Histogram fractions into the four paper buckets (shares sum to 1)."""
    if fractions.size == 0:
        return np.zeros(len(BUCKET_LABELS))
    hist, _ = np.histogram(fractions, bins=BUCKET_EDGES)
    return hist / fractions.size


def input_fraction_per_output(
    input_mask: np.ndarray, kernel: int, stride: int, padding: int
) -> np.ndarray:
    """Per-output-position fraction of masked input pixels in its window.

    ``input_mask`` is the (N, 1, H, W) boolean DRQ sensitivity mask; the
    result has shape (N, 1, OH, OW) with values in [0, 1].  Padding pixels
    count as unmasked (they contribute zero MAC value either way, matching
    how the paper counts "input features involved in computing").
    """
    ones = np.ones((1, 1, kernel, kernel))
    counts = float_conv2d(input_mask.astype(np.float64), ones, None, stride, padding)
    return counts / (kernel * kernel)


def motivation_stats_for_layer(
    executor: DRQConvExecutor,
    x: np.ndarray,
    output_threshold: float,
) -> MotivationLayerStats:
    """Compute the Fig. 2-5 metrics for one calibrated DRQ conv layer.

    Parameters
    ----------
    executor:
        A frozen :class:`DRQConvExecutor` for the layer.
    x:
        The layer's input feature-map batch (float).
    output_threshold:
        Output-sensitivity threshold applied to the *full-precision*
        output magnitudes (the ODQ notion of sensitivity).
    """
    if not executor.frozen:
        raise RuntimeError("executor must be frozen")
    info = executor.info

    o_fp = executor.reference_forward(x)
    out_sensitive = np.abs(o_fp) > output_threshold

    in_mask = executor.input_mask(x)
    o_drq = executor.mixed_precision_output(x, in_mask)
    o_lp = executor.low_precision_output(x)

    frac_hi = input_fraction_per_output(
        in_mask, info.kernel_size, info.stride, info.padding
    )
    frac_lo = 1.0 - frac_hi
    # Broadcast the per-position fractions across output channels.
    frac_hi_b = np.broadcast_to(frac_hi, o_fp.shape)
    frac_lo_b = np.broadcast_to(frac_lo, o_fp.shape)

    sens = out_sensitive
    insens = ~out_sensitive

    err = np.abs(o_fp - o_drq)
    precision_loss = float(err[sens].mean()) if sens.any() else 0.0
    extra_precision = float(np.abs(o_drq - o_lp)[insens].max()) if insens.any() else 0.0

    return MotivationLayerStats(
        layer=info.name,
        lowprec_input_buckets=_bucket_shares(frac_lo_b[sens]),
        precision_loss_sensitive=precision_loss,
        highprec_input_buckets=_bucket_shares(frac_hi_b[insens]),
        extra_precision_insensitive=extra_precision,
        sensitive_fraction=float(sens.mean()),
    )


def odq_precision_loss_for_layer(
    o_fp: np.ndarray, o_odq: np.ndarray, output_threshold: float
) -> float:
    """ODQ's precision loss on sensitive outputs (Section 6.1 per-layer list).

    Under ODQ, sensitive outputs are computed at full INT4 precision, so
    the only loss is quantization rounding — the numbers the paper lists
    (0.02-0.1 per layer) against DRQ's 0.1-1+ in Fig. 3.
    """
    sens = np.abs(o_fp) > output_threshold
    if not sens.any():
        return 0.0
    return float(np.abs(o_fp - o_odq)[sens].mean())


__all__ = [
    "BUCKET_EDGES",
    "BUCKET_LABELS",
    "MotivationLayerStats",
    "input_fraction_per_output",
    "motivation_stats_for_layer",
    "odq_precision_loss_for_layer",
]
