"""Phase-level profiling of the quantized-inference pipeline.

Turns a span trace (see :mod:`repro.obs.trace`) plus the engine's
per-layer :class:`~repro.core.base.LayerRecord` statistics into the
paper-style accounting the motivation study needs at runtime:

* per layer × phase (``quantize``, ``predict_partial``, ``mask``,
  ``full_result``) wall-clock totals and per-call distributions;
* MACs computed (predictor INT2 + executor INT4) vs. MACs *skipped*
  (the dense-INT4 work ODQ's insensitive outputs avoided);
* per-layer sensitive ratio (the knob Figs. 9-11 sweep);
* per-layer result-generation path (``dense`` vs ``sparse``, see
  :mod:`repro.core.odq`) and the *effective speedup* the chosen path
  delivered — the measured phase times re-priced at the dense path's
  FLOP count, reconciling ``macs_skipped`` against wall-clock reality.

:func:`profile_inference` is the driver behind ``repro profile``: it
builds a model session, enables the tracer, streams a few batches
through the engine, and returns a :class:`ProfileResult` whose
``report.render()`` is the terminal artefact and whose ``spans`` feed
the JSONL / Chrome exporters.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

from repro.obs.hist import Histogram
from repro.obs.trace import SpanRecord
from repro.obs.exporters import ascii_rollup
from repro.utils.report import ascii_table, format_percent

#: Executor phases reported per layer, in pipeline order.
PHASES = ("quantize", "predict_partial", "mask", "full_result")


@dataclass
class PhaseStat:
    """Aggregated timing of one (layer, phase) cell."""

    layer: str
    phase: str
    calls: int = 0
    total_us: float = 0.0
    hist: Histogram = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        if self.hist is None:
            self.hist = Histogram(f"{self.layer}.{self.phase}_ms", reservoir=1024)

    def add(self, duration_us: float) -> None:
        self.calls += 1
        self.total_us += duration_us
        self.hist.observe(duration_us / 1000.0)

    @property
    def total_ms(self) -> float:
        return self.total_us / 1000.0

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.calls if self.calls else 0.0


@dataclass
class LayerProfile:
    """Everything the report knows about one conv layer."""

    name: str
    phases: "OrderedDict[str, PhaseStat]" = field(default_factory=OrderedDict)
    macs_pred: int = 0
    macs_exec: int = 0
    macs_skipped: int = 0
    outputs: int = 0
    sensitive: int = 0
    #: Result-generation dispatch census (``{"dense": n, "sparse": m}``).
    path_calls: dict = field(default_factory=dict)
    rows: int = 0            #: spatial output rows seen by full_result
    rows_computed: int = 0   #: rows the chosen path actually computed
    flops_full: int = 0          #: full-result GEMM FLOPs actually spent
    flops_full_dense: int = 0    #: FLOPs the dense path would have spent

    def phase(self, phase: str) -> PhaseStat:
        stat = self.phases.get(phase)
        if stat is None:
            stat = self.phases[phase] = PhaseStat(self.name, phase)
        return stat

    @property
    def total_ms(self) -> float:
        return sum(p.total_ms for p in self.phases.values())

    @property
    def sensitive_ratio(self) -> float:
        return self.sensitive / self.outputs if self.outputs else 0.0

    @property
    def macs_computed(self) -> int:
        return self.macs_pred + self.macs_exec

    @property
    def skip_ratio(self) -> float:
        dense = self.macs_exec + self.macs_skipped
        return self.macs_skipped / dense if dense else 0.0

    @property
    def exec_path_summary(self) -> str:
        """Human-readable dispatch census: ``dense``, ``sparse``, or a mix."""
        if not self.path_calls:
            return "-"
        if len(self.path_calls) == 1:
            return next(iter(self.path_calls))
        return "|".join(
            f"{p}:{n}" for p, n in sorted(self.path_calls.items())
        )

    @property
    def effective_speedup(self) -> float | None:
        """Measured end-to-end speedup the chosen path delivered.

        Re-prices the measured ``full_result`` phase time at the dense
        path's FLOP count and compares against the layer's actual total:

        ``(other_phases_ms + full_ms * flops_dense / flops_actual)
        / total_ms``

        This reconciles the *theoretical* ``macs_skipped`` census with
        wall-clock reality — gather/scatter overhead and the sparse
        GEMM's doubled operand width both show up here, so the column
        reads below the skip ratio at high density and near ``1.00x``
        for the dense path.  ``None`` when the layer never ran the
        instrumented full-result phase (or it spent zero FLOPs).
        """
        full = self.phases.get("full_result")
        if (
            full is None
            or full.total_ms <= 0.0
            or self.total_ms <= 0.0
            or self.flops_full <= 0
            or self.flops_full_dense <= 0
        ):
            return None
        dense_full_ms = full.total_ms * (self.flops_full_dense / self.flops_full)
        other_ms = self.total_ms - full.total_ms
        return (other_ms + dense_full_ms) / self.total_ms


@dataclass
class GemmPoolStat:
    """Aggregate of every ``gemm.pool`` span in the trace.

    One row of the GEMM-parallelism section: how often the row-blocked
    pool path actually engaged, how wide it ran, and how much work it
    carried.  GEMMs below the crossover take the direct path and emit
    no span — their absence from this table *is* the signal that the
    pool is not mis-firing on small layers.
    """

    calls: int = 0
    total_us: float = 0.0
    blocks: int = 0
    rows: int = 0
    flops: int = 0
    threads: int = 0          #: pool width observed (max across spans)
    max_blocks: int = 0       #: widest single-call fan-out
    min_rows_per_block: int = 0
    max_rows_per_block: int = 0

    def add_span(self, s: SpanRecord) -> None:
        self.calls += 1
        self.total_us += s.duration_us
        self.blocks += int(s.counters.get("blocks", 0)) if s.counters else 0
        self.rows += int(s.counters.get("rows", 0)) if s.counters else 0
        self.flops += int(s.counters.get("flops", 0)) if s.counters else 0
        self.threads = max(self.threads, int(s.attrs.get("threads", 0)))
        self.max_blocks = max(self.max_blocks, int(s.attrs.get("blocks", 0)))
        rpb = int(s.attrs.get("rows_per_block", 0))
        if rpb:
            self.min_rows_per_block = (
                rpb if not self.min_rows_per_block
                else min(self.min_rows_per_block, rpb)
            )
            self.max_rows_per_block = max(self.max_rows_per_block, rpb)

    @property
    def total_ms(self) -> float:
        return self.total_us / 1000.0

    @property
    def mean_blocks(self) -> float:
        return self.blocks / self.calls if self.calls else 0.0

    @property
    def gflops_rate(self) -> float:
        """Aggregate pooled throughput in GFLOP/s (wall-clock of the spans)."""
        sec = self.total_us / 1e6
        return (self.flops / 1e9) / sec if sec > 0 else 0.0


class ProfileReport:
    """Per-layer, per-phase rollup of one traced inference run."""

    def __init__(self):
        self.layers: "OrderedDict[str, LayerProfile]" = OrderedDict()
        self.spans: list[SpanRecord] = []
        self.gemm = GemmPoolStat()

    # -- construction --------------------------------------------------------

    @classmethod
    def from_spans(cls, spans: Sequence[SpanRecord], records=None) -> "ProfileReport":
        """Build the report from finished spans (+ optional engine records).

        Phase timing comes from ``odq.<phase>`` spans carrying a ``layer``
        attribute (any executor emitting that shape participates — the
        static/DRQ executors emit ``quantize``/``full_result`` only).
        MAC and sensitivity accounting comes from the span counters and,
        when given, the engine's ``records`` mapping overrides them with
        the exact census.
        """
        report = cls()
        report.spans = list(spans)
        for s in report.spans:
            if s.name == "gemm.pool":
                report.gemm.add_span(s)
                continue
            layer_name = s.attrs.get("layer")
            if layer_name is None:
                continue
            prefix, _, phase = s.name.rpartition(".")
            if prefix not in ("odq", "static", "drq"):
                continue
            layer = report._layer(layer_name)
            if phase in PHASES:
                layer.phase(phase).add(s.duration_us)
            if phase == "full_result":
                path = s.attrs.get("path")
                if path is not None:
                    layer.path_calls[path] = layer.path_calls.get(path, 0) + 1
                if s.counters:
                    layer.rows += int(s.counters.get("rows", 0))
                    layer.rows_computed += int(s.counters.get("rows_computed", 0))
                    layer.flops_full += int(s.counters.get("flops_full", 0))
                    layer.flops_full_dense += int(
                        s.counters.get("flops_full_dense", 0)
                    )
            if s.counters:
                layer.macs_pred += int(s.counters.get("macs_pred", 0))
                layer.macs_exec += int(s.counters.get("macs_exec", 0))
                layer.macs_skipped += int(s.counters.get("macs_skipped", 0))
                layer.outputs += int(s.counters.get("outputs", 0))
                layer.sensitive += int(s.counters.get("sensitive", 0))
        if records is not None:
            report._merge_records(records)
        return report

    def _layer(self, name: str) -> LayerProfile:
        layer = self.layers.get(name)
        if layer is None:
            layer = self.layers[name] = LayerProfile(name)
        return layer

    def _merge_records(self, records) -> None:
        """Overwrite MAC/sensitivity tallies with the engine's exact census."""
        for name, rec in records.items():
            layer = self._layer(name)
            layer.macs_pred = int(rec.macs.get("pred_int2", 0))
            layer.macs_exec = int(rec.macs.get("exec_int4", 0))
            layer.outputs = int(rec.outputs_total)
            layer.sensitive = int(rec.sensitive_total)
            insensitive = rec.outputs_total - rec.sensitive_total
            layer.macs_skipped = int(insensitive * rec.info.macs_per_output)
            extra = getattr(rec, "extra", None) or {}
            if "exec_path_calls" in extra:
                layer.path_calls = dict(extra["exec_path_calls"])
                layer.rows = int(extra.get("exec_rows_total", layer.rows))
                layer.rows_computed = int(
                    extra.get("exec_rows_computed", layer.rows_computed)
                )
                layer.flops_full = int(
                    extra.get("exec_flops_full", layer.flops_full)
                )
                layer.flops_full_dense = int(
                    extra.get("exec_flops_full_dense", layer.flops_full_dense)
                )

    # -- rendering -----------------------------------------------------------

    @property
    def total_ms(self) -> float:
        return sum(l.total_ms for l in self.layers.values())

    def phase_totals(self) -> "OrderedDict[str, float]":
        """Network-wide total milliseconds per phase."""
        totals: "OrderedDict[str, float]" = OrderedDict((p, 0.0) for p in PHASES)
        for layer in self.layers.values():
            for phase, stat in layer.phases.items():
                totals[phase] = totals.get(phase, 0.0) + stat.total_ms
        return OrderedDict((p, t) for p, t in totals.items() if t > 0.0)

    def render(self, title: str = "per-layer phase profile") -> str:
        """The terminal artefact: phase-timing + MAC tables + phase split."""
        grand = self.total_ms or 1.0
        timing_rows = []
        for layer in self.layers.values():
            for phase in PHASES:
                stat = layer.phases.get(phase)
                if stat is None:
                    continue
                timing_rows.append([
                    layer.name,
                    phase,
                    stat.calls,
                    f"{stat.total_ms:.3f}",
                    f"{stat.mean_ms:.3f}",
                    f"{stat.hist.percentile(95):.3f}",
                    format_percent(stat.total_ms / grand),
                ])
        parts = []
        if timing_rows:
            parts.append(ascii_table(
                ["layer", "phase", "calls", "total ms", "mean ms", "p95 ms", "share"],
                timing_rows,
                title=title,
            ))
        mac_rows = [
            [
                layer.name,
                format_percent(layer.sensitive_ratio),
                f"{layer.macs_pred:,}",
                f"{layer.macs_exec:,}",
                f"{layer.macs_skipped:,}",
                format_percent(layer.skip_ratio),
            ]
            for layer in self.layers.values()
            if layer.outputs or layer.macs_computed
        ]
        if mac_rows:
            parts.append(ascii_table(
                ["layer", "sensitive", "MACs pred(INT2)", "MACs exec(INT4)",
                 "MACs skipped", "skip ratio"],
                mac_rows,
                title="MAC census (computed vs skipped)",
            ))
        path_rows = []
        for layer in self.layers.values():
            if not layer.path_calls:
                continue
            speedup = layer.effective_speedup
            flop_share = (
                format_percent(layer.flops_full / layer.flops_full_dense)
                if layer.flops_full_dense
                else "-"
            )
            path_rows.append([
                layer.name,
                layer.exec_path_summary,
                f"{layer.rows_computed:,}/{layer.rows:,}",
                flop_share,
                "-" if speedup is None else f"{speedup:.2f}x",
            ])
        if path_rows:
            parts.append(ascii_table(
                ["layer", "path", "rows computed", "full-result FLOPs",
                 "effective speedup"],
                path_rows,
                title="result generation (dense vs sparse dispatch)",
            ))
        if self.gemm.calls:
            g = self.gemm
            rpb = (
                f"{g.min_rows_per_block}-{g.max_rows_per_block}"
                if g.min_rows_per_block != g.max_rows_per_block
                else f"{g.max_rows_per_block}"
            )
            parts.append(ascii_table(
                ["pooled GEMMs", "threads", "blocks (mean/max)",
                 "rows/block", "rows", "GFLOP", "pool ms", "GFLOP/s"],
                [[
                    g.calls,
                    g.threads,
                    f"{g.mean_blocks:.1f}/{g.max_blocks}",
                    rpb,
                    f"{g.rows:,}",
                    f"{g.flops / 1e9:.2f}",
                    f"{g.total_ms:.3f}",
                    f"{g.gflops_rate:.2f}",
                ]],
                title="GEMM parallelism (row-blocked pool, repro.core.gemm)",
            ))
        totals = self.phase_totals()
        if totals:
            rows = [[p, f"{t:.3f}", format_percent(t / grand)] for p, t in totals.items()]
            parts.append(ascii_table(["phase", "total ms", "share"], rows,
                                     title="phase split (predict vs full-result)"))
        return "\n\n".join(parts) if parts else "(no layer phases captured)"

    def render_flame(self) -> str:
        """Aggregated ASCII call tree of the underlying spans."""
        return ascii_rollup(self.spans)


@dataclass
class ProfileResult:
    """Output of :func:`profile_inference`."""

    report: ProfileReport
    spans: list[SpanRecord]
    records: "OrderedDict"
    session: dict
    images: int
    batches: int
    infer_seconds: float
    plan: dict = field(default_factory=dict)

    def render_plan(self) -> str:
        """Compiled-plan table: steps, specialization traffic, dispatch.

        ``dispatch frozen`` counts conv executions that used their
        pre-bound fast path; ``re-evaluated`` counts delegations back to
        ``executor.run`` (always the case under tracing, which is why a
        traced profile shows re-evaluated dispatches — span parity is
        deliberate).
        """
        plan = self.plan
        if not plan:
            return ""
        head = (
            f"plans: enabled={plan.get('enabled')} "
            f"cached={plan.get('cached')}/{plan.get('limit')} "
            f"compiles={plan.get('compiles')} hits={plan.get('hits')} "
            f"invalidated={plan.get('invalidated')} "
            f"evictions={plan.get('evictions')}"
        )
        rows = [
            [
                "x".join(str(d) for d in p.get("input_shape", [])),
                p.get("mode", "?"),
                p.get("steps", 0),
                f"{p.get('fast_conv_steps', 0)}/{p.get('conv_steps', 0)}",
                p.get("sparse_batched_layers", 0),
                p.get("executions", 0),
                p.get("dispatch_frozen", 0),
                p.get("dispatch_reevaluated", 0),
            ]
            for p in plan.get("plans", [])
        ]
        if not rows:
            return head
        table = ascii_table(
            ["input", "mode", "steps", "fast convs", "sparse-batched",
             "runs", "dispatch frozen", "re-evaluated"],
            rows,
            title="compiled inference plans (repro.core.plan)",
        )
        return head + "\n\n" + table

    def render(self) -> str:
        head = (
            f"repro profile — model={self.session.get('model')} "
            f"scheme={self.session.get('scheme')} "
            f"threshold={self.session.get('threshold')} "
            f"images={self.images} batches={self.batches} "
            f"infer={self.infer_seconds * 1000.0:.1f}ms"
        )
        parts = [head, self.report.render()]
        plan_part = self.render_plan()
        if plan_part:
            parts.append(plan_part)
        return "\n\n".join(parts)


def profile_inference(
    model: str,
    scheme: str,
    threshold: float | None = None,
    dataset: str = "mnist",
    images: int = 8,
    batches: int = 1,
    calib_images: int = 32,
    train_epochs: int = 0,
    exec_path: str = "auto",
    gemm_threads: int | None = None,
    use_plan: bool = True,
    tracer=None,
) -> ProfileResult:
    """Build a session, trace ``batches`` inference batches, report.

    Reuses :class:`~repro.serve.session.ModelSession` so the profiled
    pipeline is byte-identical to what serving runs.  The tracer is
    enabled only around the measured ``infer`` calls — session build and
    calibration are traced too (they appear in the flame view) but the
    per-phase report counts only ``run``-mode spans because calibration
    executes the FP reference path, not the ODQ phases.

    With ``use_plan`` (the default) the compiled-plan table is appended
    to the report.  Note that while the tracer is *collecting*, planned
    conv steps delegate back to ``executor.run`` so the per-phase span
    breakdown stays complete — the plan table will therefore count those
    dispatches as re-evaluated, not frozen; the hit/compile traffic is
    still representative.  ``use_plan=False`` (``--no-plan``) profiles
    the legacy per-call path.
    """
    import time as _time

    import numpy as np

    from repro.obs import trace as trace_mod
    from repro.serve.config import ServeConfig
    from repro.serve.session import ModelSession

    tracer = tracer or trace_mod.get_tracer()
    config = ServeConfig(
        model=model,
        scheme=scheme,
        threshold=threshold,
        dataset=dataset,
        train_epochs=train_epochs,
        calib_images=calib_images,
        exec_path=exec_path,
        gemm_threads=gemm_threads,
        use_plan=use_plan,
    )
    session = ModelSession(config)
    engine = session.engine
    engine.reset_records()

    rng = np.random.default_rng(config.seed)
    sample = session.sample_inputs
    if len(sample) < images:
        reps = -(-images // len(sample))
        sample = np.concatenate([sample] * reps)[:images]
    else:
        sample = sample[:images]
    noise = rng.normal(0.0, 1e-3, size=(batches,) + sample.shape)

    with tracer.collect(reset=True):
        t0 = _time.perf_counter()
        for b in range(batches):
            engine.infer(sample + noise[b])
        infer_seconds = _time.perf_counter() - t0
        spans = tracer.spans()

    records = engine.records
    report = ProfileReport.from_spans(spans, records)
    return ProfileResult(
        report=report,
        spans=spans,
        records=records,
        session=session.describe(),
        images=int(sample.shape[0]),
        batches=batches,
        infer_seconds=infer_seconds,
        plan={"warmed": session.stats.plan_warmed, **engine.plan_stats()},
    )


__all__ = [
    "PHASES",
    "PhaseStat",
    "GemmPoolStat",
    "LayerProfile",
    "ProfileReport",
    "ProfileResult",
    "profile_inference",
]
