"""Structured logging for the repro package.

Replaces ad-hoc ``print()`` with leveled, field-carrying log events that
render two ways:

* **human** — ``HH:MM:SS.mmm LEVEL logger event key=value …`` (default);
* **JSON lines** — one ``{"ts": …, "level": …, "event": …, …}`` object
  per line, for log shippers and offline analysis.

Diagnostics go to **stderr** so they never corrupt CLI table output or
piped stdout.  User-facing CLI/benchmark output goes through
:func:`console`, which writes plain text to stdout in human mode and a
JSON record in ``--log-json`` mode — one formatter, two audiences.

Configuration: :func:`configure` from code, ``--log-level`` /
``--log-json`` from the CLI, or the environment::

    REPRO_LOG_LEVEL=debug   # debug|info|warning|error
    REPRO_LOG_JSON=1        # emit JSON lines

The module is dependency-free and thread-safe (one lock around stream
writes; loggers themselves are immutable).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import deque

#: Numeric severities (stdlib-compatible ordering).
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}
_LEVEL_NAMES = {v: k for k, v in LEVELS.items()}

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def _level_no(level: int | str) -> int:
    if isinstance(level, int):
        return level
    try:
        return LEVELS[level.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {sorted(LEVELS)}"
        ) from None


class _Config:
    """Mutable process-wide logging configuration."""

    def __init__(self):
        #: Guards every mutation of the fields below; created once so a
        #: concurrent ``reset()`` can never swap it out from under a waiter.
        self.lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        self.level = _level_no(os.environ.get("REPRO_LOG_LEVEL", "info") or "info")
        self.json_mode = (
            os.environ.get("REPRO_LOG_JSON", "").strip().lower() in _TRUTHY
        )
        #: Diagnostic stream (log events).  ``None`` means "current
        #: sys.stderr" so pytest capsys / redirects keep working.
        self.stream = None
        #: User-facing stream (``console``).  ``None`` → current stdout.
        self.console_stream = None
        #: Optional :class:`RecordBuffer` mirroring every emitted record
        #: (replica telemetry shipping).  ``None`` = off.
        self.buffer = None


_CONFIG = _Config()


def configure(
    level: int | str | None = None,
    json_mode: bool | None = None,
    stream=None,
    console_stream=None,
) -> None:
    """Adjust global logging; ``None`` keeps the current value."""
    with _CONFIG.lock:
        if level is not None:
            _CONFIG.level = _level_no(level)
        if json_mode is not None:
            _CONFIG.json_mode = bool(json_mode)
        if stream is not None:
            _CONFIG.stream = stream
        if console_stream is not None:
            _CONFIG.console_stream = console_stream


def reset() -> None:
    """Restore defaults (re-reading the environment).  Used by tests."""
    _CONFIG.reset()
    with _REGISTRY_LOCK:
        _LOGGERS.clear()


def get_level() -> int:
    return _CONFIG.level


def json_mode() -> bool:
    return _CONFIG.json_mode


# -- formatting ---------------------------------------------------------------


def format_human(record: dict) -> str:
    """``HH:MM:SS.mmm LEVEL logger event key=value``."""
    ts = record.get("ts", time.time())
    frac = int((ts % 1) * 1000)
    clock = time.strftime("%H:%M:%S", time.localtime(ts))
    level = str(record.get("level", "info")).upper()
    parts = [f"{clock}.{frac:03d}", f"{level:<7}", str(record.get("logger", "-")),
             str(record.get("event", ""))]
    for key, value in record.items():
        if key in ("ts", "level", "logger", "event"):
            continue
        if isinstance(value, float):
            value = f"{value:.6g}"
        parts.append(f"{key}={value}")
    return " ".join(parts)


def format_json(record: dict) -> str:
    return json.dumps(record, default=str, separators=(",", ":"))


def _emit(record: dict) -> None:
    line = format_json(record) if _CONFIG.json_mode else format_human(record)
    stream = _CONFIG.stream or sys.stderr
    with _CONFIG.lock:
        stream.write(line + "\n")
        try:
            stream.flush()
        except (OSError, ValueError):  # pragma: no cover - closed stream
            pass
        if _CONFIG.buffer is not None:
            _CONFIG.buffer.append(record)


# -- record buffering (telemetry shipping) ------------------------------------


class RecordBuffer:
    """Bounded mirror of emitted log records.

    Replica processes install one so their structured log records can be
    batched over the telemetry channel alongside spans; the stream
    output above is unaffected.  The deque is bounded — under sustained
    traffic old records are dropped (counted in :attr:`dropped`) rather
    than growing without bound between ships.
    """

    def __init__(self, capacity: int = 2048):
        self._records: "deque[dict]" = deque(maxlen=capacity)
        self._capacity = capacity
        self._lock = threading.Lock()
        self.dropped = 0

    def append(self, record: dict) -> None:
        with self._lock:
            if len(self._records) == self._capacity:
                self.dropped += 1
            self._records.append(record)

    def drain(self) -> list[dict]:
        """Atomically take (and clear) all buffered records."""
        with self._lock:
            out = list(self._records)
            self._records.clear()
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def install_buffer(capacity: int = 2048) -> RecordBuffer:
    """Attach (or replace) the process-wide record buffer; returns it."""
    buf = RecordBuffer(capacity)
    with _CONFIG.lock:
        _CONFIG.buffer = buf
    return buf


def remove_buffer() -> None:
    with _CONFIG.lock:
        _CONFIG.buffer = None


# -- loggers ------------------------------------------------------------------


class Logger:
    """A named source of structured log events.

    ``logger.info("batch_done", batch=8, ms=12.3)`` — the first argument
    is the machine-matchable *event* name; keyword arguments become
    structured fields.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def log(self, level: int | str, event: str, **fields) -> None:
        no = _level_no(level)
        if no < _CONFIG.level:
            return
        record = {
            "ts": time.time(),
            "level": _LEVEL_NAMES.get(no, str(no)),
            "logger": self.name,
            "event": event,
        }
        record.update(fields)
        _emit(record)

    def debug(self, event: str, **fields) -> None:
        self.log(10, event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log(20, event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log(30, event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log(40, event, **fields)

    def isEnabledFor(self, level: int | str) -> bool:  # noqa: N802 — stdlib-style
        return _level_no(level) >= _CONFIG.level


_LOGGERS: dict[str, Logger] = {}
_REGISTRY_LOCK = threading.Lock()


def get_logger(name: str) -> Logger:
    """Get-or-create the named logger (cached, thread-safe)."""
    with _REGISTRY_LOCK:
        logger = _LOGGERS.get(name)
        if logger is None:
            logger = _LOGGERS[name] = Logger(name)
        return logger


# -- user-facing console ------------------------------------------------------


def console(*parts, sep: str = " ", err: bool = False) -> None:
    """User-facing output (CLI tables, benchmark results).

    Human mode: plain text to stdout (stderr when ``err``) — exactly like
    ``print``, so terminal tables keep their layout.  JSON mode: the text
    is wrapped in a ``{"event": "console", "text": …}`` record so that a
    ``--log-json`` run produces *only* machine-parsable lines.
    """
    text = sep.join(str(p) for p in parts)
    if _CONFIG.json_mode:
        record = {"ts": time.time(), "level": "info", "logger": "console",
                  "event": "console", "text": text}
        stream = (_CONFIG.console_stream or sys.stdout) if not err else (
            _CONFIG.stream or sys.stderr)
        with _CONFIG.lock:
            stream.write(format_json(record) + "\n")
        return
    stream = _CONFIG.console_stream or sys.stdout
    if err:
        stream = _CONFIG.stream or sys.stderr
    with _CONFIG.lock:
        stream.write(text + "\n")
        try:
            stream.flush()
        except (OSError, ValueError):  # pragma: no cover - closed stream
            pass


__all__ = [
    "LEVELS",
    "Logger",
    "RecordBuffer",
    "configure",
    "reset",
    "get_level",
    "json_mode",
    "get_logger",
    "console",
    "format_human",
    "format_json",
    "install_buffer",
    "remove_buffer",
]
