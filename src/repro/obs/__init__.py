"""`repro.obs` — tracing, structured logging, and phase-level profiling.

The observability subsystem for the ODQ reproduction:

* :mod:`repro.obs.trace` — low-overhead span tracer (thread-local
  stacks, counters, global no-op fast path; ``REPRO_TRACE=1``);
* :mod:`repro.obs.log` — structured logging (human or JSON lines;
  ``REPRO_LOG_LEVEL`` / ``REPRO_LOG_JSON``), plus :func:`console` for
  user-facing CLI output;
* :mod:`repro.obs.hist` — the reservoir :class:`Histogram` shared with
  ``repro.serve.metrics``;
* :mod:`repro.obs.exporters` — JSONL, Chrome trace-event JSON,
  Prometheus text exposition, ASCII rollup;
* :mod:`repro.obs.collector` — merges replica telemetry batches (spans,
  log records, sensitivity samples) into one multi-lane timeline
  (imported lazily by the serving/cluster tiers);
* :mod:`repro.obs.drift` — EWMA drift monitor for per-layer sensitivity
  vs the calibration baseline (imported lazily alongside the collector);
* :mod:`repro.obs.profile` — per-layer per-phase profiling behind
  ``repro profile`` (imported lazily; not re-exported here to keep
  ``repro.core`` → ``repro.obs`` import edges acyclic).

See ``docs/observability.md`` for the full guide.
"""

from repro.obs import exporters, log, trace
from repro.obs.hist import DEFAULT_RESERVOIR, Histogram
from repro.obs.log import configure, console, get_logger
from repro.obs.trace import get_tracer, span, traced

__all__ = [
    "trace",
    "log",
    "exporters",
    "Histogram",
    "DEFAULT_RESERVOIR",
    "configure",
    "console",
    "get_logger",
    "get_tracer",
    "span",
    "traced",
]
