"""Reservoir histogram shared by serving metrics and the profiler.

Historically this type lived in ``repro.serve.metrics``; it moved here so
``repro.obs.profile`` can reuse it for per-phase latency distributions
instead of duplicating the implementation.  ``repro.serve.metrics``
re-exports it, so existing imports keep working.

Edge behavior (regression-tested in ``tests/serve/test_metrics_edge.py``):

* empty reservoir → ``percentile``/``summary`` return 0.0, never raise;
* single sample → every percentile returns that sample;
* NaN observations are **dropped** (counted in :attr:`dropped_nan`) so a
  single bad measurement cannot poison ``sorted()`` and turn every
  percentile into NaN;
* a zero-size reservoir degenerates gracefully (exact count/sum kept,
  percentiles report 0.0).
"""

from __future__ import annotations

import math
import threading
from collections import deque

#: Default reservoir size for histogram percentile estimation.
DEFAULT_RESERVOIR = 8192


class Histogram:
    """Observation stream with exact count/sum and reservoir percentiles."""

    def __init__(self, name: str, help: str = "", reservoir: int = DEFAULT_RESERVOIR):
        self.name = name
        self.help = help
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._values: deque[float] = deque(maxlen=max(0, int(reservoir)))
        self._lock = threading.Lock()
        #: NaN observations silently dropped (they would poison percentiles).
        self.dropped_nan = 0

    def observe(self, value: float) -> None:
        v = float(value)
        if math.isnan(v):
            with self._lock:
                self.dropped_nan += 1
            return
        with self._lock:
            self._count += 1
            self._sum += v
            self._min = min(self._min, v)
            self._max = max(self._max, v)
            self._values.append(v)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile over the reservoir (p in [0,100]).

        Empty reservoir → 0.0; single sample → that sample.  Out-of-range
        or NaN ``p`` raises ``ValueError`` (NaN fails the range check).
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            data = sorted(self._values)
        if not data:
            return 0.0
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(data) - 1)
        frac = rank - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def summary(self) -> dict:
        with self._lock:
            count, total = self._count, self._sum
            vmin = self._min if self._count else 0.0
            vmax = self._max if self._count else 0.0
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": vmin,
            "max": vmax,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


__all__ = ["Histogram", "DEFAULT_RESERVOIR"]
