"""Trace and metrics exporters.

Four output formats, all dependency-free:

* :func:`spans_to_jsonl` / :func:`write_jsonl` — one JSON object per
  finished span per line, for offline analysis (``jq``-friendly);
* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome trace-event
  JSON (complete "X" events) that loads directly in ``chrome://tracing``
  / Perfetto;
* :func:`prometheus_text` — Prometheus text exposition (version 0.0.4)
  of a :class:`~repro.serve.metrics.MetricsRegistry` snapshot, used by
  the serving ``/metrics?format=prom`` endpoint;
* :func:`ascii_rollup` — terminal flame-style rollup of a span list
  (aggregated call tree with total/self time).
"""

from __future__ import annotations

import json
import re
from collections import OrderedDict
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.trace import SpanRecord

# -- JSONL --------------------------------------------------------------------


def spans_to_jsonl(spans: Iterable[SpanRecord]) -> str:
    """One JSON object per span per line (trailing newline included)."""
    lines = [json.dumps(s.as_dict(), separators=(",", ":")) for s in spans]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(spans: Iterable[SpanRecord], path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(spans_to_jsonl(spans))
    return path


# -- Chrome trace-event format ------------------------------------------------


def chrome_trace(spans: Iterable[SpanRecord], process_name: str = "repro") -> dict:
    """Chrome ``chrome://tracing`` trace-event JSON (complete events).

    Timestamps/durations are microseconds (the format's native unit), so
    span ``start_us``/``duration_us`` map through directly.  Thread names
    are attached via ``thread_name`` metadata events so worker threads
    show up labeled in the timeline.
    """
    events: list[dict] = []
    seen_threads: dict[int, str] = {}
    for s in spans:
        if s.thread_id not in seen_threads:
            seen_threads[s.thread_id] = s.thread_name
        args = dict(s.attrs)
        if s.counters:
            args.update(s.counters)
        events.append({
            "name": s.name,
            "ph": "X",
            "ts": s.start_us,
            "dur": s.duration_us,
            "pid": 1,
            "tid": s.thread_id,
            "args": args,
        })
    meta = [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "args": {"name": process_name},
    }]
    meta.extend({
        "name": "thread_name",
        "ph": "M",
        "pid": 1,
        "tid": tid,
        "args": {"name": tname},
    } for tid, tname in seen_threads.items())
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    spans: Iterable[SpanRecord], path: str | Path, process_name: str = "repro"
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(spans, process_name)))
    return path


# -- Prometheus text exposition ----------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, namespace: str) -> str:
    clean = _NAME_RE.sub("_", name)
    if namespace and not clean.startswith(namespace + "_"):
        clean = f"{namespace}_{clean}"
    return clean


def _split_labeled(name: str) -> tuple[str, dict]:
    """Extract embedded labels from a registry metric name.

    Two label syntaxes nest inside flat registry names:

    * ``"base@k=v,k2=v2"`` — explicit labels, e.g. the replica tier's
      ``requests_total@replica=0`` → ``{"replica": "0"}``.  A malformed
      pair (no ``=``) falls back to treating the whole suffix as an
      opaque label value under ``label``.
    * ``"base:rest"`` — legacy layer shorthand:
      ``sensitive_ratio:C1:features.0`` → ``{"layer": "C1:features.0"}``.
    """
    if "@" in name:
        base, _, spec = name.partition("@")
        labels: dict = {}
        for pair in spec.split(","):
            key, eq, value = pair.partition("=")
            if eq and key:
                labels[key.strip()] = value.strip()
            else:
                labels["label"] = pair.strip()
        return base, labels
    if ":" in name:
        base, layer = name.split(":", 1)
        return base, {"layer": layer}
    return name, {}


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in labels.items())
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _escape_help(text: str) -> str:
    """Escape a HELP string per the exposition format (`\\` and newline)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def prometheus_text(snapshot, namespace: str = "repro",
                    help_texts: dict | None = None) -> str:
    """Render a metrics snapshot as Prometheus text exposition format.

    ``snapshot`` is either a ``MetricsRegistry``-like object exposing
    ``as_dict()`` or the dict itself (``{"counters": {}, "gauges": {},
    "histograms": {name: summary}}``).  Histograms render as Prometheus
    *summaries* (quantile series + ``_sum`` / ``_count``).  Colon-labeled
    names (``sensitive_ratio:<layer>``) become a ``layer`` label;
    ``@k=v,…`` suffixes (``requests_total@replica=0``) become arbitrary
    labels.

    ``help_texts`` maps *raw registry names* (labels still embedded) to
    help strings; each family's first non-empty help renders as a
    ``# HELP`` line immediately before its ``# TYPE``.
    """
    if hasattr(snapshot, "help_texts") and help_texts is None:
        help_texts = snapshot.help_texts()
    if hasattr(snapshot, "as_dict"):
        snapshot = snapshot.as_dict()
    help_texts = help_texts or {}
    out: list[str] = []
    typed: "OrderedDict[str, str]" = OrderedDict()

    def header(name: str, kind: str, *keys: str) -> None:
        if typed.get(name) != kind:
            help_text = next(
                (help_texts[k] for k in keys if help_texts.get(k)), ""
            )
            if help_text:
                out.append(f"# HELP {name} {_escape_help(help_text)}")
            out.append(f"# TYPE {name} {kind}")
            typed[name] = kind

    for name, value in snapshot.get("counters", {}).items():
        base, labels = _split_labeled(name)
        pname = _prom_name(base, namespace)
        if not pname.endswith("_total"):
            pname += "_total"
        header(pname, "counter", name, base)
        out.append(f"{pname}{_labels(labels)} {_fmt(value)}")

    for name, value in snapshot.get("gauges", {}).items():
        base, labels = _split_labeled(name)
        pname = _prom_name(base, namespace)
        header(pname, "gauge", name, base)
        out.append(f"{pname}{_labels(labels)} {_fmt(value)}")

    for name, summary in snapshot.get("histograms", {}).items():
        base, labels = _split_labeled(name)
        pname = _prom_name(base, namespace)
        header(pname, "summary", name, base)
        for q, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            qlabels = dict(labels)
            qlabels["quantile"] = q
            out.append(f"{pname}{_labels(qlabels)} {_fmt(summary.get(key, 0.0))}")
        out.append(f"{pname}_sum{_labels(labels)} {_fmt(summary.get('sum', 0.0))}")
        out.append(f"{pname}_count{_labels(labels)} {_fmt(summary.get('count', 0))}")

    return "\n".join(out) + ("\n" if out else "")


# -- ASCII rollup -------------------------------------------------------------


def _aggregate_paths(spans: Sequence[SpanRecord]) -> "OrderedDict[tuple, dict]":
    """Aggregate spans by call path (root→…→name), summing time/calls."""
    by_id = {s.span_id: s for s in spans}

    def path_of(s: SpanRecord) -> tuple:
        names: list[str] = []
        node: SpanRecord | None = s
        guard = 0
        while node is not None and guard < 64:
            names.append(node.name)
            node = by_id.get(node.parent_id) if node.parent_id else None
            guard += 1
        return tuple(reversed(names))

    agg: "OrderedDict[tuple, dict]" = OrderedDict()
    for s in sorted(spans, key=lambda s: (s.depth, s.start_us)):
        key = path_of(s)
        slot = agg.setdefault(key, {"calls": 0, "total_us": 0.0, "child_us": 0.0})
        slot["calls"] += 1
        slot["total_us"] += s.duration_us
        if len(key) > 1:
            parent = agg.get(key[:-1])
            if parent is not None:
                parent["child_us"] += s.duration_us
    return agg


def ascii_rollup(spans: Sequence[SpanRecord], width: int = 40) -> str:
    """Flame-style aggregated call tree with total/self time per path."""
    if not spans:
        return "(no spans recorded)"
    agg = _aggregate_paths(spans)
    total = sum(v["total_us"] for k, v in agg.items() if len(k) == 1) or 1.0
    # Depth-first ordering of paths.
    ordered = sorted(agg.items(), key=lambda kv: kv[0])
    lines = [f"{'span':<48} {'calls':>7} {'total ms':>10} {'self ms':>10}  share"]
    lines.append("-" * len(lines[0]))
    for path, stats in ordered:
        indent = "  " * (len(path) - 1)
        label = f"{indent}{path[-1]}"
        self_us = max(stats["total_us"] - stats["child_us"], 0.0)
        share = stats["total_us"] / total
        bar = "#" * max(1, int(round(share * width))) if share > 0.004 else ""
        lines.append(
            f"{label:<48} {stats['calls']:>7} "
            f"{stats['total_us'] / 1000.0:>10.3f} {self_us / 1000.0:>10.3f}  {bar}"
        )
    return "\n".join(lines)


__all__ = [
    "spans_to_jsonl",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "ascii_rollup",
]
