"""Low-overhead span tracer for the quantized-inference pipeline.

The paper's whole argument is about *where time goes* — sensitivity
prediction vs. result generation, predictor/executor pipeline balance,
PE idleness.  This module gives the repro first-class runtime visibility
into exactly that: nested, named **spans** with wall-clock timing,
attached attributes (layer name, batch size, …) and numeric counters
(MACs computed, MACs skipped, sensitive outputs).

Design constraints (in priority order):

1. **Near-zero cost when disabled.**  ``span(...)`` returns a shared
   no-op singleton when the tracer is off — no object allocation, no
   clock read, no lock.  Hot paths that want to skip even the keyword
   dict can guard with :func:`enabled`.
2. **Thread-correct.**  Span stacks are thread-local, so the serving
   worker pool's per-thread ``worker → engine.infer → engine.layer →
   odq.*`` nesting comes out right without any coordination; only the
   append of a *finished* span record takes a lock.
3. **Bounded memory.**  Finished spans go into a capped ring; overflow
   increments ``dropped`` instead of growing without bound under
   sustained serving traffic.

Usage::

    from repro.obs import trace

    with trace.span("odq.full_result", layer="C3:conv2") as sp:
        out = executor.full_result(x)
        sp.add("macs", n_macs)

    @trace.traced("accel.simulate")
    def simulate(...): ...

Enable globally with ``REPRO_TRACE=1`` in the environment, the CLI
``--trace`` flag, or :func:`enable` / :func:`Tracer.collect` from code.
Export finished spans with :mod:`repro.obs.exporters`.

Distributed tracing
-------------------

Spans parent through thread-local stacks, which stops at thread and
process boundaries.  A :class:`TraceContext` carries the identity of a
remote parent span — ``(trace_id, span_id, origin lane, request key)``
— across those boundaries: the HTTP tier mints one per request with
:func:`request_context`, the batcher/router serialize it alongside the
work (:meth:`TraceContext.to_wire` is a picklable tuple, small enough
for the cluster control pipe), and the consuming thread or replica
process re-activates it with :func:`activate`.  While a context is
active, every new span records the ``trace_id`` and thread-root spans
record a ``parent_ref`` (``"<lane>:<span_id>"``) pointing at the remote
parent, which is how :mod:`repro.obs.collector` stitches spans from
many processes into one tree per request.  Each process names its lane
with :func:`set_process_lane` (``"router"``, ``"replica-0"``, …).
"""

from __future__ import annotations

import functools
import os
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Default cap on retained finished spans.
DEFAULT_MAX_SPANS = 200_000

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def _env_enabled(var: str = "REPRO_TRACE") -> bool:
    return os.environ.get(var, "").strip().lower() in _TRUTHY


#: Name of this process's lane in merged multi-process traces.  The
#: router/front-end process keeps the default; replicas call
#: :func:`set_process_lane` ("replica-<id>") right after spawn.
_PROCESS_LANE = "main"
_LANE_LOCK = threading.Lock()


def set_process_lane(name: str) -> None:
    """Name this process's lane in merged traces (e.g. ``replica-0``)."""
    global _PROCESS_LANE
    with _LANE_LOCK:
        _PROCESS_LANE = str(name)


def process_lane() -> str:
    """This process's lane name (``"main"`` unless set)."""
    return _PROCESS_LANE


def new_trace_id() -> str:
    """A fresh 16-hex-digit request trace id."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The identity of a remote parent span, picklable for transport.

    ``origin`` is the :func:`process_lane` of the process that owns
    ``span_id`` — together they name the parent globally, so a span
    opened in another thread or process can parent under it even though
    span ids are only unique per-process.  ``key`` carries the client's
    replica-affinity/session key (purely informational here).
    """

    trace_id: str
    span_id: int
    origin: str
    key: str | None = None

    def parent_ref(self) -> str:
        """Globally-unique reference to the parenting span."""
        return f"{self.origin}:{self.span_id}"

    def to_wire(self) -> tuple:
        """Plain-tuple form for pipes/pickles (see :meth:`from_wire`)."""
        return (self.trace_id, self.span_id, self.origin, self.key)

    @classmethod
    def from_wire(cls, wire: tuple | None) -> "TraceContext | None":
        if wire is None:
            return None
        return cls(str(wire[0]), int(wire[1]), str(wire[2]), wire[3])

    def rebased(self, span_id: int, origin: str) -> "TraceContext":
        """The same trace, re-parented under a new local span.

        Used at hop points (router dispatch) so downstream spans parent
        under the hop's span instead of skipping a level.
        """
        return TraceContext(self.trace_id, span_id, origin, self.key)


@dataclass
class SpanRecord:
    """One finished span (immutable once emitted)."""

    name: str
    start_us: float          #: microseconds since the tracer epoch
    duration_us: float
    span_id: int
    parent_id: int | None
    depth: int               #: nesting depth within its thread (0 = root)
    thread_id: int
    thread_name: str
    attrs: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us

    @property
    def duration_ms(self) -> float:
        return self.duration_us / 1000.0

    def as_dict(self) -> dict:
        """JSON-safe representation (the JSONL exporter row)."""
        return {
            "name": self.name,
            "start_us": round(self.start_us, 3),
            "duration_us": round(self.duration_us, 3),
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "attrs": self.attrs,
            "counters": self.counters,
        }


class _NoopSpan:
    """Shared do-nothing span: the disabled-tracer fast path.

    A single module-level instance is returned from every ``span()``
    call while tracing is off, so the disabled path allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add(self, name: str, value: float = 1) -> None:
        pass

    def set(self, **attrs) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """A live span; becomes a :class:`SpanRecord` on ``__exit__``."""

    __slots__ = ("_tracer", "name", "attrs", "counters", "span_id",
                 "parent_id", "depth", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.counters: dict = {}
        self.span_id = 0
        self.parent_id: int | None = None
        self.depth = 0
        self._start = 0.0

    def add(self, name: str, value: float = 1) -> None:
        """Accumulate a numeric counter on this span."""
        self.counters[name] = self.counters.get(name, 0) + value

    def set(self, **attrs) -> None:
        """Attach/overwrite attributes after entry."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        stack = tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.depth = len(stack)
        self.span_id = tracer._next_id()
        ctx = tracer.current_context()
        if ctx is not None:
            attrs = self.attrs
            if "trace_id" not in attrs:
                attrs["trace_id"] = ctx.trace_id
            if self.parent_id is None and "parent_ref" not in attrs:
                # Thread-root span under an active context: parent to
                # the remote span the context names.
                attrs["parent_ref"] = ctx.parent_ref()
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        stack = tracer._stack()
        # Pop *this* span even if callers misnest (defensive).
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        thread = threading.current_thread()
        tracer._emit(SpanRecord(
            name=self.name,
            start_us=(self._start - tracer._epoch_perf) * 1e6,
            duration_us=(end - self._start) * 1e6,
            span_id=self.span_id,
            parent_id=self.parent_id,
            depth=self.depth,
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            attrs=self.attrs,
            counters=self.counters,
        ))
        return False


class Tracer:
    """Collects spans from any number of threads into one bounded buffer."""

    def __init__(self, enabled: bool = False, max_spans: int = DEFAULT_MAX_SPANS):
        self._enabled = enabled
        self._max_spans = max_spans
        self._lock = threading.Lock()
        self._spans: deque[SpanRecord] = deque(maxlen=max_spans)
        self._local = threading.local()
        self._id_lock = threading.Lock()
        self._next_span_id = 0
        self.dropped = 0
        self._reset_epoch()

    # -- state ---------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def _reset_epoch(self) -> None:
        #: Wall-clock anchor so exported timestamps are absolute-ish while
        #: intra-trace deltas keep perf_counter resolution.
        self.epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()

    def reset(self) -> None:
        """Drop all finished spans and restart the trace epoch."""
        with self._lock:
            self._spans.clear()
            self.dropped = 0
        self._reset_epoch()

    # -- span creation -------------------------------------------------------

    def span(self, name: str, **attrs):
        """Context manager timing one named region (no-op when disabled)."""
        if not self._enabled:
            return NOOP_SPAN
        return _ActiveSpan(self, name, attrs)

    def traced(self, name: str | None = None, **attrs):
        """Decorator form of :meth:`span`."""
        def decorate(fn):
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                if not self._enabled:
                    return fn(*args, **kwargs)
                with self.span(span_name, **attrs):
                    return fn(*args, **kwargs)

            return wrapper
        return decorate

    def current(self) -> "_ActiveSpan | _NoopSpan":
        """The innermost live span on this thread (no-op span if none)."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return NOOP_SPAN
        return stack[-1]

    # -- trace-context propagation -------------------------------------------

    @contextmanager
    def activate(self, ctx: "TraceContext | None"):
        """Make ``ctx`` the active trace context on this thread.

        While active, new spans record the trace id and thread-root
        spans parent to the context's remote span (``parent_ref``).
        ``activate(None)`` is a no-op so call sites can pass optional
        contexts through unconditionally.
        """
        if ctx is None:
            yield None
            return
        stack = self._ctx_stack()
        stack.append(ctx)
        try:
            yield ctx
        finally:
            stack.pop()

    def current_context(self) -> "TraceContext | None":
        """The innermost active :class:`TraceContext` on this thread."""
        stack = getattr(self._local, "ctx", None)
        if not stack:
            return None
        return stack[-1]

    def _ctx_stack(self) -> list:
        stack = getattr(self._local, "ctx", None)
        if stack is None:
            stack = []
            self._local.ctx = stack
        return stack

    @contextmanager
    def collect(self, reset: bool = True):
        """Temporarily enable the tracer; yields the tracer itself.

        Restores the previous enabled/disabled state on exit.  Used by
        ``repro profile`` and the tests.
        """
        previous = self._enabled
        if reset:
            self.reset()
        self._enabled = True
        try:
            yield self
        finally:
            self._enabled = previous

    # -- plumbing ------------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_id(self) -> int:
        with self._id_lock:
            self._next_span_id += 1
            return self._next_span_id

    def _emit(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._spans) == self._max_spans:
                self.dropped += 1
            self._spans.append(record)

    # -- results -------------------------------------------------------------

    def spans(self) -> list[SpanRecord]:
        """Snapshot of finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> list[SpanRecord]:
        """Atomically take (and clear) all finished spans.

        The replica telemetry loop uses this to ship each span exactly
        once; the epoch is deliberately left untouched so drained
        batches stay on one timeline.
        """
        with self._lock:
            out = list(self._spans)
            self._spans.clear()
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


#: The process-wide tracer; ``REPRO_TRACE=1`` turns it on at import time.
_GLOBAL = Tracer(enabled=_env_enabled())


def get_tracer() -> Tracer:
    return _GLOBAL


def enabled() -> bool:
    """Fast guard for hot paths that want to skip span kwargs entirely."""
    return _GLOBAL._enabled


def enable() -> None:
    _GLOBAL.enable()


def disable() -> None:
    _GLOBAL.disable()


def reset() -> None:
    _GLOBAL.reset()


def span(name: str, **attrs):
    """Module-level :meth:`Tracer.span` on the global tracer."""
    if not _GLOBAL._enabled:
        return NOOP_SPAN
    return _ActiveSpan(_GLOBAL, name, attrs)


def traced(name: str | None = None, **attrs):
    """Module-level :meth:`Tracer.traced` on the global tracer."""
    return _GLOBAL.traced(name, **attrs)


def current():
    """Innermost live span on the calling thread (global tracer)."""
    return _GLOBAL.current()


def collect(reset: bool = True):
    """Module-level :meth:`Tracer.collect` on the global tracer."""
    return _GLOBAL.collect(reset=reset)


def spans() -> list[SpanRecord]:
    return _GLOBAL.spans()


def drain() -> list[SpanRecord]:
    """Module-level :meth:`Tracer.drain` on the global tracer."""
    return _GLOBAL.drain()


def activate(ctx: TraceContext | None):
    """Module-level :meth:`Tracer.activate` on the global tracer."""
    return _GLOBAL.activate(ctx)


def current_context() -> TraceContext | None:
    """Module-level :meth:`Tracer.current_context` on the global tracer."""
    return _GLOBAL.current_context()


@contextmanager
def request_context(name: str, key: str | None = None, **attrs):
    """Mint and activate a fresh request trace: the trace-tree root.

    Opens a root span ``name`` (tagged ``trace_root`` so the collector
    can tell genuine roots from orphans), builds a :class:`TraceContext`
    parenting to it, and activates the context for the block.  Yields
    ``(span, ctx)``; when tracing is disabled both the span and the
    context are no-ops (``NOOP_SPAN``, ``None``) and nothing is minted.
    """
    if not _GLOBAL._enabled:
        yield NOOP_SPAN, None
        return
    tid = new_trace_id()
    with span(name, trace_id=tid, trace_root=True, **attrs) as sp:
        ctx = TraceContext(tid, sp.span_id, process_lane(), key)
        with _GLOBAL.activate(ctx):
            yield sp, ctx


__all__ = [
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "NOOP_SPAN",
    "DEFAULT_MAX_SPANS",
    "get_tracer",
    "enabled",
    "enable",
    "disable",
    "reset",
    "span",
    "traced",
    "current",
    "collect",
    "spans",
    "drain",
    "activate",
    "current_context",
    "request_context",
    "new_trace_id",
    "set_process_lane",
    "process_lane",
]
