"""Quantization drift monitor over the collected telemetry stream.

The paper's output-directed scheme fixes, at calibration time, which
outputs are *sensitive* (dense-path) per layer; the serving engines then
re-measure that ratio on live traffic.  When the live distribution
drifts from the calibration distribution, the calibrated sensitivity
thresholds stop being representative — accuracy and the dense/sparse
cost model both degrade silently.

:class:`DriftMonitor` watches the per-layer samples the telemetry
channel ships (or the thread-pool worker publishes directly): it keeps
an EWMA of each layer's ``sensitive_ratio`` and of its exec-path mix
(sparse-path fraction of dispatch calls), compares them against the
calibration baseline, and

* publishes ``drift_sensitive_ratio:<layer>`` / ``drift_delta:<layer>``
  / ``drift_sparse_frac:<layer>`` / ``drift_alert:<layer>`` gauges on
  the serving ``/metrics`` registry, and
* logs a single ``drift_exceeded`` warning per band crossing (re-armed
  when the layer returns inside the band), so a drifting layer does not
  flood the logs.

This is the signal the planned autoscaler / scheme-search consumers
will read; thresholds are configured via ``ServeConfig.drift_band``.
"""

from __future__ import annotations

import threading

from repro.obs.log import get_logger

_log = get_logger("repro.obs.drift")

#: Default EWMA smoothing factor (weight of the newest sample).
DEFAULT_ALPHA = 0.2

#: Default alert band: |EWMA - baseline| above this fires the alert.
DEFAULT_BAND = 0.15


class DriftMonitor:
    """EWMA drift tracking of per-layer sensitivity vs. a baseline.

    Parameters
    ----------
    baseline:
        ``{layer: calibration sensitive_ratio}``.  Layers that appear in
        samples but not here adopt their *first observed* ratio as
        baseline (self-anchoring), so echo-mode and partially calibrated
        engines still get drift coverage.
    alpha:
        EWMA smoothing factor in ``(0, 1]``; 1.0 tracks the latest
        sample exactly.
    band:
        Alert threshold on ``|ewma - baseline|``.
    metrics:
        Optional ``MetricsRegistry``; gauges are published per layer on
        every observation.
    """

    def __init__(self, baseline: dict[str, float] | None = None,
                 alpha: float = DEFAULT_ALPHA, band: float = DEFAULT_BAND,
                 metrics=None):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if band <= 0.0:
            raise ValueError(f"band must be positive, got {band}")
        self.alpha = float(alpha)
        self.band = float(band)
        self.metrics = metrics
        self._baseline: dict[str, float] = {
            k: float(v) for k, v in (baseline or {}).items()
        }
        self._ewma: dict[str, float] = {}
        self._sparse: dict[str, float] = {}
        self._alerting: set[str] = set()
        self._lock = threading.Lock()
        self.observations = 0

    # -- feeding -------------------------------------------------------------

    def observe(self, samples: dict[str, dict]) -> None:
        """Fold one batch of per-layer samples into the EWMAs.

        ``samples`` maps layer name to a dict with optional keys
        ``sensitive_ratio`` (float) and ``path_calls`` ({path: count});
        this is the shape both the telemetry payloads and
        :meth:`repro.serve.worker.WorkerPool.exec_census` produce.
        Thread-safe.
        """
        updates: list[tuple[str, float, float, float | None, bool, bool]] = []
        with self._lock:
            self.observations += 1
            for layer, sample in samples.items():
                ratio = sample.get("sensitive_ratio")
                if ratio is None:
                    continue
                ratio = float(ratio)
                base = self._baseline.setdefault(layer, ratio)
                prev = self._ewma.get(layer)
                ewma = ratio if prev is None else (
                    self.alpha * ratio + (1.0 - self.alpha) * prev
                )
                self._ewma[layer] = ewma
                sparse = _sparse_fraction(sample.get("path_calls"))
                if sparse is not None:
                    prev_s = self._sparse.get(layer)
                    sparse = sparse if prev_s is None else (
                        self.alpha * sparse + (1.0 - self.alpha) * prev_s
                    )
                    self._sparse[layer] = sparse
                exceeded = abs(ewma - base) > self.band
                crossed = exceeded and layer not in self._alerting
                if exceeded:
                    self._alerting.add(layer)
                else:
                    self._alerting.discard(layer)
                updates.append((layer, ewma, base, sparse, exceeded, crossed))
        for layer, ewma, base, sparse, exceeded, crossed in updates:
            self._publish(layer, ewma, base, sparse, exceeded)
            if crossed:
                _log.warning(
                    "drift_exceeded",
                    layer=layer,
                    ewma=round(ewma, 6),
                    baseline=round(base, 6),
                    delta=round(ewma - base, 6),
                    band=self.band,
                )

    def _publish(self, layer: str, ewma: float, base: float,
                 sparse: float | None, exceeded: bool) -> None:
        if self.metrics is None:
            return
        self.metrics.gauge(
            f"drift_sensitive_ratio:{layer}",
            "EWMA of the live per-layer sensitive-output ratio",
        ).set(ewma)
        self.metrics.gauge(
            f"drift_delta:{layer}",
            "EWMA sensitive ratio minus calibration baseline",
        ).set(ewma - base)
        self.metrics.gauge(
            f"drift_alert:{layer}",
            "1 when |drift_delta| exceeds the configured band",
        ).set(1.0 if exceeded else 0.0)
        if sparse is not None:
            self.metrics.gauge(
                f"drift_sparse_frac:{layer}",
                "EWMA fraction of exec-path dispatches taking a sparse path",
            ).set(sparse)

    # -- inspection ----------------------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """Per-layer drift state: ewma, baseline, delta, sparse, alert."""
        with self._lock:
            return {
                layer: {
                    "ewma": ewma,
                    "baseline": self._baseline[layer],
                    "delta": ewma - self._baseline[layer],
                    "sparse_frac": self._sparse.get(layer),
                    "alert": layer in self._alerting,
                }
                for layer, ewma in self._ewma.items()
            }

    def alerting(self) -> list[str]:
        """Layers currently outside the band (sorted)."""
        with self._lock:
            return sorted(self._alerting)


def _sparse_fraction(path_calls: dict | None) -> float | None:
    """Fraction of dispatch calls that took a sparse-skipping path.

    Path names come from the engine's result-generation dispatcher
    (e.g. ``dense``, ``sparse_gather``, ``sparse_skip``); anything not
    named ``dense`` counts as sparse.
    """
    if not path_calls:
        return None
    total = sum(int(c) for c in path_calls.values())
    if total <= 0:
        return None
    sparse = sum(int(c) for p, c in path_calls.items() if p != "dense")
    return sparse / total


def baseline_from_engine(engine) -> dict[str, float]:
    """Calibration baseline from an engine's layer records.

    Taken right after calibration (``ModelSession`` calibrates at
    build), each layer's ``sensitive_total / outputs_total`` is the
    calibration-set sensitive ratio the paper's scheme anchored on.
    """
    baseline: dict[str, float] = {}
    for name, rec in getattr(engine, "records", {}).items():
        if getattr(rec, "outputs_total", 0):
            baseline[name] = rec.sensitive_total / rec.outputs_total
    return baseline


__all__ = [
    "DriftMonitor",
    "baseline_from_engine",
    "DEFAULT_ALPHA",
    "DEFAULT_BAND",
]
