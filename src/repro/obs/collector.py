"""Telemetry collector: one merged timeline for the replica cluster.

Replica processes batch their finished spans, structured log records,
and per-layer sensitivity/exec-path samples and ship them over the
cluster control pipe (see ``repro/cluster/worker.py``).  The
:class:`TelemetryCollector` lives in the router/supervisor process and
merges those batches — plus the local process's own spans — into one
coherent multi-process timeline:

* **Lanes** — every record carries a ``proc`` lane name
  (``"main"``/``"router"`` for the local process, ``"replica-<id>"``
  for replicas); the merged Chrome trace gives each lane its own pid so
  Perfetto renders per-replica swimlanes.
* **Clock alignment** — each process's tracer timestamps spans relative
  to its *own* epoch (``perf_counter`` deltas anchored at
  ``epoch_wall``).  Payloads ship the replica's ``epoch_wall``; the
  collector re-bases every span onto absolute wall-clock microseconds
  (``ts_us = epoch_wall * 1e6 + start_us``), which is a shared clock —
  all processes run on one host — so cross-lane ordering is correct to
  wall-clock resolution.
* **Parentage** — spans parent locally via ``parent_id`` and across
  processes via the ``parent_ref`` attribute (``"<lane>:<span_id>"``)
  stamped by :class:`repro.obs.trace.TraceContext` activation;
  :func:`orphan_spans` verifies every request's spans form one tree.

An optional **spool file** receives every ingested record as a JSON
line as it arrives — ``repro trace-tail`` follows it live.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import IO, Iterable

from repro.obs import trace
from repro.obs.log import get_logger

_log = get_logger("repro.obs.collector")


def orphan_spans(records: Iterable[dict]) -> list[dict]:
    """Spans whose parent cannot be resolved within ``records``.

    A span is an orphan when its local ``parent_id`` or cross-process
    ``parent_ref`` names a span that is not present, or when it carries
    a ``trace_id`` with neither a parent nor the ``trace_root`` mark —
    i.e. request work that lost its place in the trace tree.
    """
    records = list(records)
    present = {(r["proc"], r["span_id"]) for r in records}
    orphans = []
    for r in records:
        attrs = r.get("attrs") or {}
        if r.get("parent_id") is not None:
            if (r["proc"], r["parent_id"]) not in present:
                orphans.append(r)
        elif attrs.get("parent_ref"):
            lane, _, sid = str(attrs["parent_ref"]).rpartition(":")
            try:
                key = (lane, int(sid))
            except ValueError:
                orphans.append(r)
                continue
            if key not in present:
                orphans.append(r)
        elif attrs.get("trace_id") and not attrs.get("trace_root"):
            orphans.append(r)
    return orphans


def trace_trees(records: Iterable[dict]) -> dict[str, dict]:
    """Group request spans by trace id: ``{trace_id: {roots, spans}}``.

    ``roots`` are the ``trace_root``-marked spans (exactly one per
    well-formed request trace); ``spans`` is every record carrying the
    trace id, root included.
    """
    trees: dict[str, dict] = {}
    for r in records:
        attrs = r.get("attrs") or {}
        tid = attrs.get("trace_id")
        if not tid:
            continue
        tree = trees.setdefault(tid, {"roots": [], "spans": []})
        tree["spans"].append(r)
        if attrs.get("trace_root"):
            tree["roots"].append(r)
    return trees


class TelemetryCollector:
    """Merges replica telemetry batches into one multi-lane timeline.

    Parameters
    ----------
    metrics:
        Optional registry (duck-typed ``MetricsRegistry``) receiving
        ``telemetry_batches_total`` / ``telemetry_spans_total`` per-lane
        counters; also handed to ``drift`` observations indirectly.
    drift:
        Optional :class:`repro.obs.drift.DriftMonitor`; every ingested
        payload's per-layer samples are fed to it.
    spool_path:
        Optional JSONL spool appended on every ingest (``repro
        trace-tail`` follows it).  Opened lazily, line-buffered.
    """

    def __init__(self, metrics=None, drift=None, spool_path: str | Path | None = None):
        self.metrics = metrics
        self.drift = drift
        self.spool_path = Path(spool_path) if spool_path else None
        self._spool: IO[str] | None = None
        self._lock = threading.Lock()
        self._spans: list[dict] = []   #: ingested remote spans (absolute ts_us)
        self._logs: list[dict] = []    #: ingested remote log records
        self._lanes: list[str] = []    #: remote lanes, in first-seen order
        self.batches = 0               #: telemetry payloads ingested

    # -- ingest (router I/O threads) -----------------------------------------

    def ingest(self, lane: str, payload: dict) -> None:
        """Fold one replica telemetry payload into the merged stream.

        ``payload`` is the dict the replica ships: ``{"lane", "pid",
        "epoch_wall", "spans": [span dicts], "logs": [log records],
        "samples": {layer: {...}}}``.  Thread-safe — each router I/O
        thread ingests its own replica's payloads.
        """
        lane = str(payload.get("lane") or lane)
        epoch_us = float(payload.get("epoch_wall", 0.0)) * 1e6
        spans = payload.get("spans") or []
        logs = payload.get("logs") or []
        rows: list[dict] = []
        for s in spans:
            rec = dict(s)
            rec["proc"] = lane
            rec["ts_us"] = epoch_us + float(rec.get("start_us", 0.0))
            rows.append(rec)
        log_rows = [{**r, "proc": lane} for r in logs]
        with self._lock:
            if lane not in self._lanes:
                self._lanes.append(lane)
            self._spans.extend(rows)
            self._logs.extend(log_rows)
            self.batches += 1
            self._spool_records(
                [{"kind": "span", **r} for r in rows]
                + [{"kind": "log", **r} for r in log_rows]
            )
        if self.metrics is not None:
            self.metrics.counter(
                f"telemetry_batches_total@lane={lane}",
                "telemetry payloads ingested from this lane",
            ).inc()
            if rows:
                self.metrics.counter(
                    f"telemetry_spans_total@lane={lane}",
                    "replica spans merged into the collector timeline",
                ).inc(len(rows))
        samples = payload.get("samples")
        if samples and self.drift is not None:
            self.drift.observe(samples)

    def _spool_records(self, records: list[dict]) -> None:
        """Append records to the spool (caller holds the lock)."""
        if self.spool_path is None or not records:
            return
        if self._spool is None:
            self.spool_path.parent.mkdir(parents=True, exist_ok=True)
            self._spool = self.spool_path.open("a", buffering=1)
        for rec in records:
            self._spool.write(json.dumps(rec, default=str,
                                         separators=(",", ":")) + "\n")

    def close(self) -> None:
        with self._lock:
            if self._spool is not None:
                self._spool.close()
                self._spool = None

    # -- merged views --------------------------------------------------------

    def local_records(self) -> list[dict]:
        """The local process's finished spans as merged-timeline records.

        Non-destructive snapshot of the global tracer (the CLI trace
        epilogue may still want the raw spans), re-based onto the same
        absolute wall-clock microseconds as ingested replica spans.
        """
        tracer = trace.get_tracer()
        epoch_us = tracer.epoch_wall * 1e6
        lane = trace.process_lane()
        out = []
        for s in tracer.spans():
            rec = s.as_dict()
            rec["proc"] = lane
            rec["ts_us"] = epoch_us + rec["start_us"]
            out.append(rec)
        return out

    def merged(self, include_local: bool = True) -> list[dict]:
        """All records — remote + (optionally) local — sorted by time."""
        with self._lock:
            rows = list(self._spans)
        if include_local:
            rows.extend(self.local_records())
        rows.sort(key=lambda r: r["ts_us"])
        return rows

    def log_records(self) -> list[dict]:
        with self._lock:
            return list(self._logs)

    def lanes(self, include_local: bool = True) -> list[str]:
        """Lane names in display order (local lane first)."""
        with self._lock:
            remote = list(self._lanes)
        lanes = [trace.process_lane()] if include_local else []
        lanes += [ln for ln in sorted(remote) if ln not in lanes]
        return lanes

    def orphans(self, include_local: bool = True) -> list[dict]:
        """Unparented request spans in the merged stream (should be [])."""
        return orphan_spans(self.merged(include_local=include_local))

    # -- export --------------------------------------------------------------

    def chrome_trace(self) -> dict:
        """Merged Chrome trace-event JSON with one pid (lane) per process.

        Timestamps are normalized to the earliest record so the trace
        opens at t=0; ``args`` carry span attrs/counters including
        ``trace_id``/``parent_ref`` for cross-lane tree inspection.
        """
        rows = self.merged()
        t0 = min((r["ts_us"] for r in rows), default=0.0)
        pids = {lane: i + 1 for i, lane in enumerate(self.lanes())}
        events: list[dict] = []
        threads: set[tuple[int, int]] = set()
        for r in rows:
            pid = pids.setdefault(r["proc"], len(pids) + 1)
            args = dict(r.get("attrs") or {})
            args.update(r.get("counters") or {})
            events.append({
                "name": r["name"],
                "ph": "X",
                "ts": r["ts_us"] - t0,
                "dur": r.get("duration_us", 0.0),
                "pid": pid,
                "tid": r.get("thread_id", 0),
                "args": args,
            })
            key = (pid, r.get("thread_id", 0))
            if key not in threads:
                threads.add(key)
                events.append({
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": key[1],
                    "args": {"name": r.get("thread_name", f"tid-{key[1]}")},
                })
        meta = [
            {"name": "process_name", "ph": "M", "pid": pid,
             "args": {"name": lane}}
            for lane, pid in pids.items()
        ]
        return {"traceEvents": meta + events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.chrome_trace(), default=str))
        return path

    def write_jsonl(self, path: str | Path) -> Path:
        """Merged records (spans then logs), one JSON object per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps({"kind": "span", **r}, default=str,
                            separators=(",", ":"))
                 for r in self.merged()]
        lines += [json.dumps({"kind": "log", **r}, default=str,
                             separators=(",", ":"))
                  for r in self.log_records()]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path


__all__ = ["TelemetryCollector", "orphan_spans", "trace_trees"]
