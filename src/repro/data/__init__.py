"""Synthetic datasets standing in for CIFAR-10/100 and MNIST."""

from repro.data.synthetic import (
    Dataset,
    make_synthetic_dataset,
    synthetic_cifar10,
    synthetic_cifar100,
    synthetic_mnist,
)

__all__ = [
    "Dataset",
    "make_synthetic_dataset",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "synthetic_mnist",
]
