"""Synthetic image-classification datasets (CIFAR/MNIST stand-ins).

The paper evaluates on CIFAR-10/100 and illustrates with MNIST; neither is
available offline, so we generate *learnable, structured* synthetic images
(DESIGN.md section 2).  Each class owns a deterministic prototype built
from band-limited Gaussian random fields plus a class-specific geometric
primitive; samples are augmented (shift, flip, contrast) and noised.  The
task difficulty is controlled by the noise level so quantization-induced
accuracy gaps are visible — which is what the paper's Figure 18 measures.

All generation is vectorized NumPy and fully deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.utils.rng import new_rng


@dataclass
class Dataset:
    """An in-memory split dataset with NCHW float images in roughly [0, 1]."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int
    name: str = "synthetic"

    def __post_init__(self):
        if len(self.x_train) != len(self.y_train):
            raise ValueError("train images/labels length mismatch")
        if len(self.x_test) != len(self.y_test):
            raise ValueError("test images/labels length mismatch")

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return tuple(self.x_train.shape[1:])


def _class_prototypes(
    num_classes: int, channels: int, size: int, rng: np.random.Generator
) -> np.ndarray:
    """One smooth prototype image per class, shape (C, channels, H, W).

    Prototypes combine a low-frequency random field (global colour/texture
    identity) and a class-indexed oriented stripe pattern (local edges for
    conv filters to latch onto).
    """
    protos = np.empty((num_classes, channels, size, size))
    yy, xx = np.mgrid[0:size, 0:size] / max(size - 1, 1)
    for c in range(num_classes):
        field = rng.normal(size=(channels, size, size))
        field = ndimage.gaussian_filter(field, sigma=(0, size / 8, size / 8))
        field = (field - field.min()) / max(np.ptp(field), 1e-9)
        angle = np.pi * c / num_classes
        freq = 2.0 + 3.0 * ((c * 7919) % num_classes) / max(num_classes, 1)
        stripes = 0.5 + 0.5 * np.sin(
            2 * np.pi * freq * (np.cos(angle) * xx + np.sin(angle) * yy)
        )
        protos[c] = 0.6 * field + 0.4 * stripes[None]
    return protos


def _augment(
    images: np.ndarray, rng: np.random.Generator, max_shift: int
) -> np.ndarray:
    """Random shift + horizontal flip + per-image contrast jitter."""
    n = len(images)
    out = images
    if max_shift > 0:
        shifts = rng.integers(-max_shift, max_shift + 1, size=(n, 2))
        out = np.stack(
            [np.roll(img, tuple(s), axis=(1, 2)) for img, s in zip(out, shifts)]
        )
    flips = rng.random(n) < 0.5
    out[flips] = out[flips, :, :, ::-1]
    contrast = rng.uniform(0.85, 1.15, size=(n, 1, 1, 1))
    return out * contrast


def make_synthetic_dataset(
    num_classes: int = 10,
    image_size: int = 32,
    channels: int = 3,
    num_train: int = 2048,
    num_test: int = 512,
    noise: float = 0.25,
    max_shift: int = 2,
    seed: int | np.random.Generator | None = None,
    name: str | None = None,
) -> Dataset:
    """Generate a class-conditional synthetic image dataset.

    ``noise`` is the standard deviation of the additive Gaussian noise as a
    fraction of the prototype dynamic range; around 0.25 the task is
    non-trivial but learnable by the scaled paper networks in a few epochs.
    """
    rng = new_rng(seed)
    protos = _class_prototypes(num_classes, channels, image_size, rng)

    def make_split(n: int) -> tuple[np.ndarray, np.ndarray]:
        y = rng.integers(0, num_classes, size=n)
        x = protos[y].copy()
        x = _augment(x, rng, max_shift)
        x += rng.normal(0.0, noise, size=x.shape)
        return np.clip(x, 0.0, 1.2).astype(np.float64), y.astype(np.int64)

    x_train, y_train = make_split(num_train)
    x_test, y_test = make_split(num_test)
    return Dataset(
        x_train,
        y_train,
        x_test,
        y_test,
        num_classes,
        name=name or f"synthetic{num_classes}",
    )


def synthetic_cifar10(**kwargs) -> Dataset:
    """CIFAR-10 stand-in: 10 classes, 32x32x3 (see DESIGN.md substitutions)."""
    kwargs.setdefault("num_classes", 10)
    kwargs.setdefault("name", "cifar10-syn")
    return make_synthetic_dataset(**kwargs)


def synthetic_cifar100(**kwargs) -> Dataset:
    """CIFAR-100 stand-in: 100 classes (harder task, larger accuracy gaps)."""
    kwargs.setdefault("num_classes", 100)
    kwargs.setdefault("name", "cifar100-syn")
    return make_synthetic_dataset(**kwargs)


def synthetic_mnist(**kwargs) -> Dataset:
    """MNIST stand-in: 10 classes, 28x28x1, used by the Fig.-1 example."""
    kwargs.setdefault("num_classes", 10)
    kwargs.setdefault("image_size", 28)
    kwargs.setdefault("channels", 1)
    kwargs.setdefault("noise", 0.2)
    kwargs.setdefault("name", "mnist-syn")
    return make_synthetic_dataset(**kwargs)


__all__ = [
    "Dataset",
    "make_synthetic_dataset",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "synthetic_mnist",
]
