"""Reverse-mode automatic differentiation over NumPy arrays.

This is the substrate that replaces PyTorch in the reproduction (see
DESIGN.md section 2).  It is a tape-based autograd in the micrograd style:
every operation records a backward closure plus its parents, and
``Tensor.backward`` walks the tape in reverse topological order.

Design constraints, in order:

1. *Correctness* — every primitive has a gradient check in
   ``tests/nn/test_autograd.py`` against central finite differences.
2. *Vectorization* — backward passes are expressed as whole-array NumPy
   expressions; the only Python loops in the package's hot paths are over
   kernel offsets (bounded by K*K), per the HPC guide's vectorization rule.
3. *Small surface* — only the ops the CNN models need are implemented;
   composite ops (batch norm, softmax, …) are built from these primitives
   so they inherit correct gradients.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

Array = np.ndarray


def _pgemm(a: Array, b: Array) -> Array:
    """Route 2-D products through the verified GEMM (:mod:`repro.core.gemm`).

    Imported lazily because ``repro.core``'s package init imports
    ``repro.nn`` modules; a module-level import here would cycle.  After
    the first call this is one ``sys.modules`` lookup — negligible next
    to the GEMM itself, and ``pgemm`` is bit-identical to ``a @ b``.
    """
    from repro.core.gemm import pgemm

    return pgemm(a, b)


def _unbroadcast(grad: Array, shape: tuple[int, ...]) -> Array:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes.

    NumPy broadcasting prepends singleton axes and stretches size-1 axes;
    the adjoint of a broadcast is therefore a sum over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched singleton axes.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with an autograd tape.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.  Stored as ``float64`` by default;
        float32 inputs are kept as-is.
    requires_grad:
        Whether gradients should flow into this tensor.  Gradients are
        accumulated in ``.grad`` (same shape as ``.data``).
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype not in (np.float32, np.float64):
            arr = arr.astype(np.float64)
        self.data: Array = arr
        self.grad: Array | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[Array], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._op: str = ""

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def _wrap(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    @classmethod
    def from_op(
        cls,
        data: Array,
        parents: Iterable["Tensor"],
        backward: Callable[[Array], None],
        op: str = "",
    ) -> "Tensor":
        """Create a tensor produced by an op, wiring the tape if needed."""
        parents = tuple(parents)
        out = cls(data, requires_grad=any(p.requires_grad for p in parents))
        if out.requires_grad:
            out._backward = backward
            out._parents = parents
            out._op = op
        return out

    # -- basic introspection ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag}, op={self._op!r})"

    def numpy(self) -> Array:
        """The underlying array (not a copy; treat as read-only)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    # -- gradient accumulation ---------------------------------------------------

    def _accumulate(self, grad: Array) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Array | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)

        # Iterative topological sort (avoids recursion limits on deep nets).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in visited:
                    stack.append((p, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -- arithmetic primitives ---------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = self._wrap(other)

        def backward(g: Array) -> None:
            self._accumulate(g)
            other._accumulate(g)

        return Tensor.from_op(self.data + other.data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: Array) -> None:
            self._accumulate(-g)

        return Tensor.from_op(-self.data, (self,), backward, "neg")

    def __sub__(self, other) -> "Tensor":
        return self + (-self._wrap(other))

    def __rsub__(self, other) -> "Tensor":
        return self._wrap(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._wrap(other)

        def backward(g: Array) -> None:
            self._accumulate(g * other.data)
            other._accumulate(g * self.data)

        return Tensor.from_op(self.data * other.data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._wrap(other)

        def backward(g: Array) -> None:
            self._accumulate(g / other.data)
            other._accumulate(-g * self.data / (other.data**2))

        return Tensor.from_op(self.data / other.data, (self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return self._wrap(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        def backward(g: Array) -> None:
            self._accumulate(g * exponent * self.data ** (exponent - 1))

        return Tensor.from_op(self.data**exponent, (self,), backward, "pow")

    def __matmul__(self, other) -> "Tensor":
        other = self._wrap(other)
        if self.ndim != 2 or other.ndim != 2:
            raise ValueError("matmul supports 2-D operands only")

        def backward(g: Array) -> None:
            self._accumulate(_pgemm(np.asarray(g), other.data.T))
            other._accumulate(_pgemm(self.data.T, np.asarray(g)))

        return Tensor.from_op(
            _pgemm(self.data, other.data), (self, other), backward, "matmul"
        )

    # -- elementwise nonlinearities ------------------------------------------------

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(g: Array) -> None:
            self._accumulate(g * mask)

        return Tensor.from_op(self.data * mask, (self,), backward, "relu")

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: Array) -> None:
            self._accumulate(g * out_data)

        return Tensor.from_op(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        def backward(g: Array) -> None:
            self._accumulate(g / self.data)

        return Tensor.from_op(np.log(self.data), (self,), backward, "log")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: Array) -> None:
            self._accumulate(g * (1.0 - out_data**2))

        return Tensor.from_op(out_data, (self,), backward, "tanh")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(g: Array) -> None:
            self._accumulate(g * 0.5 / out_data)

        return Tensor.from_op(out_data, (self,), backward, "sqrt")

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(g: Array) -> None:
            self._accumulate(g * sign)

        return Tensor.from_op(np.abs(self.data), (self,), backward, "abs")

    def clip(self, lo: float, hi: float) -> "Tensor":
        mask = (self.data >= lo) & (self.data <= hi)

        def backward(g: Array) -> None:
            self._accumulate(g * mask)

        return Tensor.from_op(np.clip(self.data, lo, hi), (self,), backward, "clip")

    # -- reductions --------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: Array) -> None:
            g = np.asarray(g)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor.from_op(out_data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=True)
        mask = self.data == out_data  # ties share gradient equally
        counts = mask.sum(axis=axis, keepdims=True)

        def backward(g: Array) -> None:
            g = np.asarray(g)
            if not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(g * mask / counts)

        data = out_data if keepdims else out_data.squeeze(axis=axis)
        return Tensor.from_op(data, (self,), backward, "max")

    # -- shape ops ----------------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        in_shape = self.data.shape

        def backward(g: Array) -> None:
            self._accumulate(np.asarray(g).reshape(in_shape))

        return Tensor.from_op(self.data.reshape(shape), (self,), backward, "reshape")

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = tuple(np.argsort(axes))

        def backward(g: Array) -> None:
            self._accumulate(np.asarray(g).transpose(inverse))

        return Tensor.from_op(self.data.transpose(axes), (self,), backward, "transpose")

    def __getitem__(self, idx) -> "Tensor":
        def backward(g: Array) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, idx, g)
            self._accumulate(full)

        return Tensor.from_op(self.data[idx], (self,), backward, "getitem")

    # -- composition helpers --------------------------------------------------------

    @staticmethod
    def concat(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate along ``axis`` (needed by DenseNet blocks)."""
        tensors = [Tensor._wrap(t) for t in tensors]
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(g: Array) -> None:
            g = np.asarray(g)
            for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(int(lo), int(hi))
                t._accumulate(g[tuple(sl)])

        data = np.concatenate([t.data for t in tensors], axis=axis)
        return Tensor.from_op(data, tensors, backward, "concat")

    def pad_channels(self, extra: int) -> "Tensor":
        """Zero-pad the channel dim of an NCHW tensor (ResNet option-A shortcut)."""
        if extra == 0:
            return self
        pad_width = [(0, 0), (0, extra), (0, 0), (0, 0)]
        c = self.data.shape[1]

        def backward(g: Array) -> None:
            self._accumulate(np.asarray(g)[:, :c])

        return Tensor.from_op(np.pad(self.data, pad_width), (self,), backward, "pad_channels")


__all__ = ["Tensor"]
