"""Minimal training loop used by examples, benchmarks and integration tests.

The paper trains its networks with DoReFa-style quantization-aware training
before running ODQ inference; :class:`Trainer` supports that by accepting
arbitrary models whose layers may include fake-quant wrappers (see
``repro.quant.dorefa``), since those are ordinary :class:`Module` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn.layers import Module
from repro.nn.loss import accuracy, cross_entropy
from repro.nn.optim import Optimizer
from repro.nn.tensor import Tensor
from repro.obs import trace
from repro.obs.log import get_logger

_log = get_logger("repro.nn.trainer")


@dataclass
class TrainHistory:
    """Per-epoch training curves."""

    train_loss: list[float] = field(default_factory=list)
    train_acc: list[float] = field(default_factory=list)
    test_acc: list[float] = field(default_factory=list)

    @property
    def final_test_acc(self) -> float:
        return self.test_acc[-1] if self.test_acc else float("nan")


def iterate_minibatches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
):
    """Yield (x_batch, y_batch) minibatches; shuffles when an RNG is given."""
    n = len(x)
    order = np.arange(n) if rng is None else rng.permutation(n)
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        yield x[idx], y[idx]


def evaluate(model: Module, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> float:
    """Top-1 accuracy of ``model`` on a dataset, in eval mode."""
    if len(x) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    was_training = model.training
    model.eval()
    correct = 0
    for xb, yb in iterate_minibatches(x, y, batch_size):
        logits = model(Tensor(xb))
        correct += int((logits.data.argmax(axis=1) == yb).sum())
    model.train(was_training)
    return correct / len(x)


class Trainer:
    """SGD training driver with optional LR schedule and epoch callbacks."""

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        scheduler=None,
        loss_fn: Callable = cross_entropy,
        batch_size: int = 64,
        rng: np.random.Generator | None = None,
        verbose: bool = False,
        grad_clip: float | None = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.loss_fn = loss_fn
        self.batch_size = batch_size
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.verbose = verbose
        #: Global-norm gradient clipping (needed by low-bit STE training,
        #: where forward/backward mismatch occasionally spikes gradients).
        self.grad_clip = grad_clip

    def _clip_gradients(self) -> None:
        if self.grad_clip is None:
            return
        total = 0.0
        for p in self.optimizer.params:
            if p.grad is not None:
                total += float((p.grad ** 2).sum())
        norm = total ** 0.5
        if norm > self.grad_clip:
            scale = self.grad_clip / (norm + 1e-12)
            for p in self.optimizer.params:
                if p.grad is not None:
                    p.grad *= scale

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_test: np.ndarray | None = None,
        y_test: np.ndarray | None = None,
        epochs: int = 1,
    ) -> TrainHistory:
        history = TrainHistory()
        with trace.span("train.fit", epochs=epochs, images=len(x_train)):
            for epoch in range(epochs):
                with trace.span("train.epoch", epoch=epoch + 1) as sp:
                    self.model.train()
                    losses, accs = [], []
                    for xb, yb in iterate_minibatches(
                        x_train, y_train, self.batch_size, self.rng
                    ):
                        logits = self.model(Tensor(xb))
                        loss = self.loss_fn(logits, yb)
                        self.optimizer.zero_grad()
                        loss.backward()
                        self._clip_gradients()
                        self.optimizer.step()
                        losses.append(loss.item())
                        accs.append(accuracy(logits, yb))
                    if self.scheduler is not None:
                        self.scheduler.step()
                    history.train_loss.append(float(np.mean(losses)))
                    history.train_acc.append(float(np.mean(accs)))
                    if x_test is not None and y_test is not None:
                        history.test_acc.append(evaluate(self.model, x_test, y_test))
                    sp.add("loss", history.train_loss[-1])
                    sp.add("acc", history.train_acc[-1])
                fields = dict(
                    epoch=epoch + 1,
                    epochs=epochs,
                    loss=round(history.train_loss[-1], 4),
                    acc=round(history.train_acc[-1], 3),
                )
                if history.test_acc:
                    fields["test_acc"] = round(history.test_acc[-1], 3)
                # verbose → operator-visible INFO; otherwise a DEBUG trail.
                _log.log("info" if self.verbose else "debug", "epoch", **fields)
        return history


__all__ = ["Trainer", "TrainHistory", "evaluate", "iterate_minibatches"]
