"""NumPy autograd CNN substrate (the reproduction's PyTorch replacement)."""

from repro.nn.tensor import Tensor
from repro.nn.layers import (
    Module,
    Identity,
    ReLU,
    Flatten,
    Sequential,
    Conv2d,
    Linear,
    BatchNorm2d,
    MaxPool2d,
    AvgPool2d,
    GlobalAvgPool2d,
    Dropout,
)
from repro.nn.loss import cross_entropy, mse_loss, accuracy, top_k_accuracy
from repro.nn.optim import SGD, Adam, StepLR, CosineLR
from repro.nn.trainer import Trainer, TrainHistory, evaluate, iterate_minibatches
from repro.nn import functional

__all__ = [
    "Tensor",
    "Module",
    "Identity",
    "ReLU",
    "Flatten",
    "Sequential",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Dropout",
    "cross_entropy",
    "mse_loss",
    "accuracy",
    "top_k_accuracy",
    "SGD",
    "Adam",
    "StepLR",
    "CosineLR",
    "Trainer",
    "TrainHistory",
    "evaluate",
    "iterate_minibatches",
    "functional",
]
