"""Module system: stateful layers composed over the autograd substrate.

The API deliberately mirrors a small subset of ``torch.nn`` so the model
definitions in ``repro.models`` read like their PyTorch originals, which
makes the reproduction auditable against the paper's described setups.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter`-like tensors and child modules as
    attributes; registration is automatic via ``__setattr__`` inspection in
    :meth:`named_parameters` / :meth:`named_modules` (no explicit registry
    to keep the implementation small).
    """

    def __init__(self):
        self.training = True

    # -- traversal -----------------------------------------------------------

    def children(self) -> Iterator["Module"]:
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, value in self.__dict__.items():
            items: list[tuple[str, Module]] = []
            if isinstance(value, Module):
                items.append((name, value))
            elif isinstance(value, (list, tuple)):
                items.extend(
                    (f"{name}.{i}", item)
                    for i, item in enumerate(value)
                    if isinstance(item, Module)
                )
            for child_name, child in items:
                full = f"{prefix}.{child_name}" if prefix else child_name
                yield from child.named_modules(full)

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for mod_name, module in self.named_modules(prefix):
            for name, value in module.__dict__.items():
                if isinstance(value, Tensor) and value.requires_grad:
                    yield (f"{mod_name}.{name}" if mod_name else name), value

    def parameters(self) -> list[Tensor]:
        return [p for _, p in self.named_parameters()]

    def modules_of_type(self, cls: type) -> list["Module"]:
        return [m for _, m in self.named_modules() if isinstance(m, cls)]

    # -- train / eval ----------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        for _, m in self.named_modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- (de)serialisation -------------------------------------------------------

    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        state: OrderedDict[str, np.ndarray] = OrderedDict()
        for name, p in self.named_parameters():
            state[name] = p.data.copy()
        for mod_name, module in self.named_modules():
            for name, value in module.__dict__.items():
                if isinstance(value, np.ndarray):  # buffers (BN running stats)
                    key = f"{mod_name}.{name}" if mod_name else name
                    state[key] = value.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        params = dict(self.named_parameters())
        buffers: dict[str, tuple[Module, str]] = {}
        for mod_name, module in self.named_modules():
            for name, value in module.__dict__.items():
                if isinstance(value, np.ndarray):
                    key = f"{mod_name}.{name}" if mod_name else name
                    buffers[key] = (module, name)
        for key, value in state.items():
            if key in params:
                params[key].data = np.asarray(value).copy()
            elif key in buffers:
                module, name = buffers[key]
                setattr(module, name, np.asarray(value).copy())
            else:
                raise KeyError(f"unexpected state key: {key}")

    # -- call ----------------------------------------------------------------------

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.flatten(x)


class Sequential(Module):
    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def append(self, module: Module) -> None:
        self.layers.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class Conv2d(Module):
    """2-D convolution layer with Kaiming-initialised weights."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        rng = new_rng(rng)
        self.weight = Tensor(
            init.kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size), rng
            ),
            requires_grad=True,
        )
        self.bias = (
            Tensor(np.zeros(out_channels), requires_grad=True) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding)

    @property
    def macs_per_output(self) -> int:
        """MAC operations needed for one output feature of this layer."""
        return self.in_channels * self.kernel_size * self.kernel_size


class Linear(Module):
    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = new_rng(rng)
        self.weight = Tensor(
            init.kaiming_normal((out_features, in_features), rng), requires_grad=True
        )
        self.bias = (
            Tensor(np.zeros(out_features), requires_grad=True) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class BatchNorm2d(Module):
    """Batch normalization over NCHW, built from autograd primitives.

    Running statistics use the standard exponential moving average so that
    ``eval()`` inference is deterministic — a requirement for the
    quantized-inference pipelines, which fold BN into per-channel affine
    transforms at calibration time.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Tensor(np.ones(num_features), requires_grad=True)
        self.beta = Tensor(np.zeros(num_features), requires_grad=True)
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            var = ((x - mean) ** 2).mean(axis=(0, 2, 3), keepdims=True)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean
                + self.momentum * mean.data.reshape(-1)
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var
                + self.momentum * var.data.reshape(-1)
            )
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        inv_std = (var + self.eps) ** -0.5
        xhat = (x - mean) * inv_std
        gamma = self.gamma.reshape(1, -1, 1, 1)
        beta = self.beta.reshape(1, -1, 1, 1)
        return xhat * gamma + beta

    def fold_affine(self) -> tuple[np.ndarray, np.ndarray]:
        """Return per-channel (scale, shift) equivalent at eval time."""
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        scale = self.gamma.data * inv_std
        shift = self.beta.data - self.running_mean * scale
        return scale, shift


class MaxPool2d(Module):
    """Max pool; becomes identity when the input is smaller than the window
    (lets paper topologies run unchanged on scaled-down test images)."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        if min(x.shape[2], x.shape[3]) < self.kernel_size:
            return x
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    """Average pool; identity on inputs smaller than the window (see MaxPool2d)."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        if min(x.shape[2], x.shape[3]) < self.kernel_size:
            return x
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        self.p = p
        self.rng = new_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, self.training)


def swap_modules(root: Module, transform) -> Module:
    """Recursively replace child modules of ``root``.

    ``transform(module)`` returns either the same object (recurse into it)
    or a replacement (installed, not recursed).  Used to install
    fake-quant twins (``repro.quant.dorefa``) and instrumented inference
    executors (``repro.core.pipeline``).
    """
    for name, value in list(root.__dict__.items()):
        if isinstance(value, Module):
            replacement = transform(value)
            if replacement is not value:
                setattr(root, name, replacement)
            else:
                swap_modules(value, transform)
        elif isinstance(value, list):
            for i, item in enumerate(value):
                if isinstance(item, Module):
                    replacement = transform(item)
                    if replacement is not item:
                        value[i] = replacement
                    else:
                        swap_modules(item, transform)
    return root


__all__ = [
    "Module",
    "Identity",
    "ReLU",
    "Flatten",
    "Sequential",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Dropout",
    "swap_modules",
]
