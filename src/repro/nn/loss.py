"""Loss functions and classification metrics."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax
from repro.nn.tensor import Tensor


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets``.

    Implemented as NLL of log-softmax so the gradient is the usual
    ``softmax - onehot`` and numerically stable for large logits.
    """
    targets = np.asarray(targets)
    n, c = logits.shape
    if targets.shape != (n,):
        raise ValueError(f"targets shape {targets.shape} != ({n},)")
    log_p = log_softmax(logits, axis=1)
    onehot = np.zeros((n, c))
    onehot[np.arange(n), targets] = 1.0
    return -(log_p * Tensor(onehot)).sum() * (1.0 / n)


def mse_loss(pred: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target
    return (diff * diff).mean()


def accuracy(logits: np.ndarray | Tensor, targets: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1]."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    return float((data.argmax(axis=1) == np.asarray(targets)).mean())


def top_k_accuracy(
    logits: np.ndarray | Tensor, targets: np.ndarray, k: int = 5
) -> float:
    """Top-k accuracy in [0, 1]."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    topk = np.argpartition(-data, kth=min(k, data.shape[1] - 1), axis=1)[:, :k]
    return float((topk == np.asarray(targets)[:, None]).any(axis=1).mean())


__all__ = ["cross_entropy", "mse_loss", "accuracy", "top_k_accuracy"]
