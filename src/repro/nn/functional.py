"""Differentiable neural-network primitives on :class:`~repro.nn.tensor.Tensor`.

Convolution is implemented as im2col + one GEMM, the standard HPC
formulation (and the one the paper's accelerator hardware mirrors with its
Im2col/Pack engine).  Backward passes reuse the cached column matrix, so
each conv costs three GEMMs total per training step.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor
from repro.utils.im2col import col2im, conv_output_size, im2col


def _pgemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-blocked parallel GEMM (see :mod:`repro.core.gemm`).

    Imported lazily: ``repro.core``'s package init imports
    ``repro.nn.layers`` (which imports this module), so a module-level
    ``from repro.core.gemm import pgemm`` would deadlock the import
    graph when ``repro.nn`` is imported first.  After the first call
    this is one ``sys.modules`` lookup — negligible next to a GEMM.
    """
    from repro.core.gemm import pgemm

    return pgemm(a, b)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution (cross-correlation) over an NCHW input.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filter bank of shape ``(C_out, C_in, K, K)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input channels {c_in} != weight channels {c_in_w}")
    if kh != kw:
        raise ValueError("only square kernels are supported")
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)

    cols = im2col(x.data, kh, stride, padding)  # (N*OH*OW, C*K*K)
    wmat = weight.data.reshape(c_out, -1).T  # (C*K*K, C_out)
    out_mat = _pgemm(cols, wmat)
    if bias is not None:
        out_mat = out_mat + bias.data.reshape(1, c_out)
    out_data = out_mat.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray) -> None:
        gmat = np.asarray(g).transpose(0, 2, 3, 1).reshape(-1, c_out)
        if weight.requires_grad:
            gw = _pgemm(cols.T, gmat).T.reshape(weight.shape)
            weight._accumulate(gw)
        if bias is not None and bias.requires_grad:
            bias._accumulate(gmat.sum(axis=0))
        if x.requires_grad:
            gcols = _pgemm(gmat, wmat.T)
            x._accumulate(col2im(gcols, x.shape, kh, stride, padding))

    return Tensor.from_op(out_data, parents, backward, "conv2d")


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight`` of shape (out, in)."""
    out = x @ weight.transpose()  # repro: noqa[DTY101] — Tensor.__matmul__ routes through core.gemm.pgemm
    if bias is not None:
        out = out + bias
    return out


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over NCHW input.  Defaults to non-overlapping windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1

    sn, sc, sh, sw = x.data.strides
    patches = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    ).reshape(n, c, oh, ow, kernel * kernel)
    arg = patches.argmax(axis=-1)
    out_data = np.take_along_axis(patches, arg[..., None], axis=-1)[..., 0]

    # Precompute flat scatter indices for the backward pass.
    ki, kj = np.divmod(arg, kernel)
    ii = np.arange(oh)[None, None, :, None] * stride + ki
    jj = np.arange(ow)[None, None, None, :] * stride + kj
    nn_idx = np.arange(n)[:, None, None, None]
    cc_idx = np.arange(c)[None, :, None, None]

    def backward(g: np.ndarray) -> None:
        gx = np.zeros_like(x.data)
        np.add.at(gx, (nn_idx, cc_idx, ii, jj), np.asarray(g))
        x._accumulate(gx)

    return Tensor.from_op(out_data, (x,), backward, "max_pool2d")


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling, expressed via autograd primitives where possible."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1

    sn, sc, sh, sw = x.data.strides
    patches = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    out_data = patches.mean(axis=(-1, -2))
    scale = 1.0 / (kernel * kernel)

    def backward(g: np.ndarray) -> None:
        g = np.asarray(g) * scale
        gx = np.zeros_like(x.data)
        for ki in range(kernel):
            for kj in range(kernel):
                gx[:, :, ki : ki + stride * oh : stride, kj : kj + stride * ow : stride] += g
        x._accumulate(gx)

    return Tensor.from_op(out_data, (x,), backward, "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial dims: (N, C, H, W) -> (N, C)."""
    return x.mean(axis=(2, 3))


def flatten(x: Tensor) -> Tensor:
    """Flatten all but the batch dimension."""
    return x.reshape(x.shape[0], -1)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax built from autograd primitives."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)  # repro: noqa[NUM402] — sum of exp() is strictly positive


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep) / keep
    return x * Tensor(mask)


__all__ = [
    "conv2d",
    "linear",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "flatten",
    "softmax",
    "log_softmax",
    "dropout",
]
