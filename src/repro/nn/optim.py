"""First-order optimisers and learning-rate schedules."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimiser over a list of parameters."""

    def __init__(self, params: list[Tensor], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with classical momentum and decoupled L2 weight decay."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            v *= self.momentum
            v += g
            p.data = p.data - self.lr * v


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * g * g
            p.data = p.data - self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


class StepLR:
    """Multiply the optimiser LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


class CosineLR:
    """Cosine annealing from the initial LR to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0):
        self.optimizer = optimizer
        self.t_max = max(t_max, 1)
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> None:
        self._epoch = min(self._epoch + 1, self.t_max)
        cos = 0.5 * (1 + np.cos(np.pi * self._epoch / self.t_max))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cos


__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "CosineLR"]
