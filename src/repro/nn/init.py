"""Weight initialisation schemes (He/Kaiming and Glorot/Xavier)."""

from __future__ import annotations

import numpy as np


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Fan-in / fan-out for dense (out, in) and conv (out, in, k, k) shapes."""
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:
        out_c, in_c, kh, kw = shape
        receptive = kh * kw
        return in_c * receptive, out_c * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He initialisation for ReLU networks: N(0, sqrt(2/fan_in))."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot initialisation: U(-a, a) with a = sqrt(6/(fan_in+fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    a = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-a, a, size=shape)


__all__ = ["kaiming_normal", "xavier_uniform"]
