"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``info``
    Print package version, experiment scale, and paper constants.
``table1`` / ``table2``
    Print the analytic accelerator tables (instant, no training).
``simulate <dump.npz>``
    Run a saved mask dump (see ``repro.accel.dump``) through the four
    Table-2 accelerator models and print normalized time/energy.
``quickstart``
    Run the end-to-end quickstart (train, ODQ-retrain, quantize, simulate).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_info(_args) -> int:
    import repro
    from repro.analysis.workbench import scale_from_env
    from repro.config import PAPER_THRESHOLDS

    print(f"repro {repro.__version__} — ODQ (ICPP 2023) reproduction")
    print(f"experiment scale: {scale_from_env()}")
    print(f"paper thresholds (Table 3): {PAPER_THRESHOLDS}")
    return 0


def _cmd_table1(_args) -> int:
    from repro.analysis.performance import render_table1

    print(render_table1())
    return 0


def _cmd_table2(_args) -> int:
    from repro.analysis.performance import render_table2

    print(render_table2())
    return 0


def _cmd_simulate(args) -> int:
    from repro.accel.dump import load_workloads
    from repro.accel.simulator import build_accelerator
    from repro.utils.report import ascii_table

    workloads = load_workloads(args.dump)
    print(f"loaded {len(workloads)} layer workloads from {args.dump}")
    sims = {name: build_accelerator(name).simulate(workloads)
            for name in ("INT16", "INT8", "DRQ", "ODQ")}
    ref = sims["INT16"]
    rows = [
        [
            name,
            f"{sim.total_cycles:,.0f}",
            f"{sim.normalized_time(ref):.4f}",
            f"{sim.normalized_energy(ref):.4f}",
        ]
        for name, sim in sims.items()
    ]
    print(ascii_table(["accelerator", "cycles", "norm. time", "norm. energy"], rows))
    return 0


def _cmd_quickstart(_args) -> int:
    import pathlib
    import runpy

    script = pathlib.Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    if script.exists():
        runpy.run_path(str(script), run_name="__main__")
        return 0
    print("examples/quickstart.py not found (installed without the repo checkout)")
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="ODQ (ICPP 2023) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="package and experiment-scale info")
    sub.add_parser("table1", help="print Table 1 (PE allocation frontier)")
    sub.add_parser("table2", help="print Table 2 (accelerator configs)")
    p_sim = sub.add_parser("simulate", help="simulate a saved mask dump")
    p_sim.add_argument("dump", help="path to a .npz mask dump")
    sub.add_parser("quickstart", help="run the end-to-end quickstart example")

    args = parser.parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "table1": _cmd_table1,
        "table2": _cmd_table2,
        "simulate": _cmd_simulate,
        "quickstart": _cmd_quickstart,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
