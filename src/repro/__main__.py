"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``info``
    Print package version, experiment scale, and paper constants.
``table1`` / ``table2``
    Print the analytic accelerator tables (instant, no training).
``simulate <dump.npz>``
    Run a saved mask dump (see ``repro.accel.dump``) through the four
    Table-2 accelerator models and print normalized time/energy.
``profile <model> <scheme>``
    Per-layer, per-phase profile of quantized inference (predict vs
    full-result time, MACs computed vs skipped); ``--trace-out`` writes
    a Chrome/JSONL trace.
``quickstart``
    Run the end-to-end quickstart (train, ODQ-retrain, quantize, simulate).
``serve``
    Start the batched quantized-inference HTTP server (``repro.serve``).
``check``
    Run the project-invariant static analyzer (``repro.checks``) over
    the source tree; see ``docs/static-analysis.md``.
``bench-serve``
    Closed-loop throughput comparison: naive rebuild-per-request vs
    cached session vs cached session + micro-batching; with
    ``--replicas N --trace --trace-out`` the trace file is the merged
    multi-process timeline from the telemetry collector.
``trace-tail``
    Follow a serving telemetry spool (``serve --telemetry-spool``) —
    spans and log records from every replica, one line each, live.

Global observability flags (valid before or after the command name):
``--trace`` (enable the span tracer), ``--trace-out PATH`` (write the
collected trace; format from ``--trace-format``), ``--log-level`` and
``--log-json`` (structured logging).  Environment equivalents:
``REPRO_TRACE``, ``REPRO_LOG_LEVEL``, ``REPRO_LOG_JSON``.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs import log as obslog
from repro.obs import trace
from repro.obs.log import console


def _cmd_info(_args) -> int:
    import repro
    from repro.analysis.workbench import scale_from_env
    from repro.config import PAPER_THRESHOLDS

    console(f"repro {repro.__version__} — ODQ (ICPP 2023) reproduction")
    console(f"experiment scale: {scale_from_env()}")
    console(f"paper thresholds (Table 3): {PAPER_THRESHOLDS}")
    return 0


def _cmd_table1(_args) -> int:
    from repro.analysis.performance import render_table1

    console(render_table1())
    return 0


def _cmd_table2(_args) -> int:
    from repro.analysis.performance import render_table2

    console(render_table2())
    return 0


def _cmd_simulate(args) -> int:
    from repro.accel.dump import load_workloads
    from repro.accel.simulator import build_accelerator
    from repro.utils.report import ascii_table

    workloads = load_workloads(args.dump)
    console(f"loaded {len(workloads)} layer workloads from {args.dump}")
    sims = {name: build_accelerator(name).simulate(workloads)
            for name in ("INT16", "INT8", "DRQ", "ODQ")}
    ref = sims["INT16"]
    rows = [
        [
            name,
            f"{sim.total_cycles:,.0f}",
            f"{sim.normalized_time(ref):.4f}",
            f"{sim.normalized_energy(ref):.4f}",
        ]
        for name, sim in sims.items()
    ]
    console(ascii_table(["accelerator", "cycles", "norm. time", "norm. energy"], rows))
    return 0


def _cmd_profile(args) -> int:
    from repro.obs.profile import profile_inference

    result = profile_inference(
        model=args.model,
        scheme=args.scheme,
        threshold=args.threshold,
        dataset=args.dataset,
        images=args.images,
        batches=args.batches,
        calib_images=args.calib_images,
        train_epochs=args.train_epochs,
        exec_path=args.exec_path,
        gemm_threads=args.gemm_threads,
        use_plan=not args.no_plan,
    )
    console(result.render())
    if args.flame:
        console("")
        console(result.report.render_flame())
    # Stash the spans so the shared --trace-out epilogue exports exactly
    # this run (the profiler resets the global tracer around its run).
    args._profile_spans = result.spans
    return 0


def _cmd_plan(args) -> int:
    """Build a session, compile its serving plan, and print the steps."""
    from repro.serve.config import ServeConfig
    from repro.serve.session import ModelSession
    from repro.utils.report import ascii_table

    config = ServeConfig(
        model=args.model,
        scheme=args.scheme,
        threshold=args.threshold,
        dataset=args.dataset,
        train_epochs=args.train_epochs,
        calib_images=args.calib_images,
        exec_path=args.exec_path,
        max_batch_size=args.batch_size,
    )
    session = ModelSession(config)
    stats = session.engine.plan_stats()
    console(
        f"repro plan — model={session.key.model} scheme={session.key.scheme} "
        f"threshold={session.key.threshold} exec_path={session.key.exec_path} "
        f"batch={config.max_batch_size}"
    )
    for plan in session.engine._plans.values():
        d = plan.describe()
        shape = "x".join(str(v) for v in d["input_shape"])
        console(
            f"\nplan input={shape} dtype={d['input_dtype']} mode={d['mode']} "
            f"steps={d['steps']} fast_convs={d['fast_conv_steps']}/"
            f"{d['conv_steps']} sparse_batched={d['sparse_batched_layers']}"
        )
        rows = []
        for i, step in enumerate(d["step_list"]):
            detail = ", ".join(
                f"{k}={v}" for k, v in step.items()
                if k != "kind" and v is not None
            )
            rows.append([i, step["kind"], detail])
        console(ascii_table(["#", "step", "detail"], rows))
    console(
        f"\ncache: {stats['cached']}/{stats['limit']} plans "
        f"(compiles={stats['compiles']} hits={stats['hits']} "
        f"invalidated={stats['invalidated']} evictions={stats['evictions']})"
    )
    return 0


def _cmd_quickstart(_args) -> int:
    import pathlib
    import runpy

    script = pathlib.Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    if script.exists():
        runpy.run_path(str(script), run_name="__main__")
        return 0
    console("examples/quickstart.py not found (installed without the repo checkout)")
    return 1


def _serve_config_from_args(args) -> "ServeConfig":  # noqa: F821 — lazy import
    from repro.serve.config import ServeConfig

    return ServeConfig(
        model=args.model,
        scheme=args.scheme,
        threshold=args.threshold,
        dataset=args.dataset,
        train_epochs=args.train_epochs,
        calib_images=args.calib_images,
        exec_path=args.exec_path,
        use_plan=not args.no_plan,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        workers=args.workers,
        replicas=_resolve_replicas(args.replicas),
        gemm_threads=args.gemm_threads,
        host=args.host,
        port=args.port,
        drift_band=args.drift_band,
        telemetry_spool=args.telemetry_spool,
    )


def _resolve_replicas(raw: str) -> int:
    """``--replicas N | auto`` → replica count (auto = one per usable core)."""
    if raw == "auto":
        from repro.cluster.sizing import recommended_replicas

        return recommended_replicas()
    try:
        return int(raw)
    except ValueError:
        raise SystemExit(
            f"--replicas must be an integer or 'auto', got {raw!r}"
        ) from None


def _add_serve_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="lenet", help="model registry name")
    parser.add_argument("--scheme", default="odq", help="quantization scheme name")
    parser.add_argument("--threshold", type=float, default=None,
                        help="sensitivity threshold for odq/drq schemes")
    parser.add_argument("--dataset", default="mnist",
                        help="synthetic dataset (mnist|cifar10|cifar100)")
    parser.add_argument("--train-epochs", type=int, default=0,
                        help="warm-up training epochs at session build (0 = none)")
    parser.add_argument("--calib-images", type=int, default=64,
                        help="calibration images per session")
    parser.add_argument("--exec-path", choices=["auto", "dense", "sparse"],
                        default="auto",
                        help="ODQ result-generation path (auto picks per "
                             "layer call from the sensitive-row fraction)")
    parser.add_argument("--max-batch-size", type=int, default=8,
                        help="micro-batch coalescing cap (images)")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="max time a batch is held open for more requests")
    parser.add_argument("--workers", type=int, default=2,
                        help="engine worker threads (ignored when --replicas > 1)")
    parser.add_argument("--replicas", default="1", metavar="N|auto",
                        help="engine replica processes (repro.cluster); 1 = "
                             "in-process thread pool, 'auto' = one per usable "
                             "core (sched_getaffinity, capped at 8)")
    parser.add_argument("--gemm-threads", type=int, default=None,
                        help="process-wide GEMM pool width (default: "
                             "REPRO_GEMM_THREADS or min(cpu, 8); 1 disables "
                             "intra-op parallelism; shared by all workers)")
    parser.add_argument("--no-plan", action="store_true",
                        help="disable compiled inference plans "
                             "(repro.core.plan); run the legacy per-call "
                             "path — speed knob only, results identical")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321,
                        help="bind port (0 = OS-assigned)")
    parser.add_argument("--drift-band", type=float, default=0.15,
                        help="sensitivity-drift alert band: warn when a "
                             "layer's EWMA sensitive-ratio departs its "
                             "calibration baseline by more than this")
    parser.add_argument("--telemetry-spool", default=None, metavar="PATH",
                        help="append every replica telemetry record to this "
                             "JSONL file (follow it with `repro trace-tail`)")


def _cmd_serve(args) -> int:
    from repro.serve.server import InferenceServer

    server = InferenceServer(_serve_config_from_args(args), verbose=args.verbose)
    server.start()
    console(f"repro.serve listening on {server.url}")
    console(f"session: {server.session.describe()}")
    console("endpoints: POST /predict · GET /healthz /metrics /stats  (Ctrl-C stops)")
    try:
        server.wait()
    except KeyboardInterrupt:
        console("\nshutting down …")
    finally:
        server.shutdown()
    return 0


def _cmd_check(args) -> int:
    from repro.checks.cli import run_check

    return run_check(args)


def _cmd_bench_serve(args) -> int:
    from repro.serve.bench import run_serve_benchmark

    result = run_serve_benchmark(
        _serve_config_from_args(args),
        requests=args.requests,
        naive_requests=args.naive_requests,
    )
    # A traced replicated run carries the telemetry collector; let the
    # --trace-out epilogue export the merged multi-process timeline
    # instead of just this process's spans.
    if result.collector is not None:
        args._collector = result.collector
    console(result.render())
    speedup = result.speedup("batched")
    console(f"\ncached+batched vs naive: {speedup:.1f}x")
    if args.out:
        import pathlib

        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(result.render() + "\n")
        console(f"[written to {path}]")
    if result.bitexact and not result.bitexact["identical"]:
        console("FAIL: replicated path is not bit-exact vs a single engine")
        return 1
    return 0


def _format_tail_line(line: str) -> str:
    """One telemetry-spool JSONL record → an aligned human-readable line."""
    import json

    try:
        rec = json.loads(line)
    except ValueError:
        return line
    proc = str(rec.get("proc", "?"))
    if rec.get("kind") == "log":
        level = str(rec.get("level", "info")).upper()
        return (f"{proc:<12} log   {level:<8} "
                f"{rec.get('logger', '-')} {rec.get('event', '')}")
    attrs = rec.get("attrs") or {}
    dur_ms = float(rec.get("duration_us", 0.0)) / 1000.0
    return (f"{proc:<12} span  {str(rec.get('name', '?')):<24} "
            f"{dur_ms:>9.3f} ms  trace={attrs.get('trace_id', '-')}")


def _cmd_trace_tail(args) -> int:
    import time
    from pathlib import Path

    path = Path(args.spool)
    if not args.follow and not path.exists():
        console(f"trace-tail: no spool at {path}", err=True)
        return 1
    pos = 0
    if args.follow and not args.from_start and path.exists():
        pos = path.stat().st_size  # tail from the end, like `tail -f`
    deadline = (
        None if args.duration is None else time.monotonic() + args.duration
    )
    try:
        while True:
            if path.exists():
                with path.open("rb") as fh:
                    fh.seek(pos)
                    for raw in fh:
                        if not raw.endswith(b"\n"):
                            break  # mid-write partial line; retry next poll
                        pos += len(raw)
                        line = raw.decode("utf-8", "replace").rstrip("\n")
                        console(line if args.raw else _format_tail_line(line))
            if not args.follow:
                return 0
            if deadline is not None and time.monotonic() >= deadline:
                return 0
            time.sleep(args.poll)
    except KeyboardInterrupt:
        return 0


def _global_options() -> argparse.ArgumentParser:
    """Observability flags shared by the root parser and every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    # default=SUPPRESS throughout: the subcommand parser (same parent)
    # parses into a fresh namespace whose values are copied over the
    # root's, so a plain default would silently clobber flags given
    # *before* the subcommand (`repro --trace serve ...`).  With
    # SUPPRESS, an unseen flag sets nothing and the root's value
    # survives; consumers read these via getattr with fallbacks.
    group.add_argument("--trace", action="store_true",
                       default=argparse.SUPPRESS,
                       help="enable the span tracer (REPRO_TRACE=1)")
    group.add_argument("--trace-out", default=argparse.SUPPRESS,
                       metavar="PATH",
                       help="write the collected trace to PATH (implies --trace)")
    group.add_argument("--trace-format", choices=["chrome", "jsonl"],
                       default=argparse.SUPPRESS,
                       help="trace file format: chrome://tracing JSON or JSONL")
    group.add_argument("--log-level", default=argparse.SUPPRESS,
                       choices=["debug", "info", "warning", "error"],
                       help="structured log threshold (REPRO_LOG_LEVEL)")
    group.add_argument("--log-json", action="store_true",
                       default=argparse.SUPPRESS,
                       help="emit JSON-lines logs (REPRO_LOG_JSON=1)")
    return parent


def build_parser() -> argparse.ArgumentParser:
    """The CLI schema (exposed for the dispatch-table tests)."""
    global_opts = _global_options()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ODQ (ICPP 2023) reproduction toolkit",
        parents=[global_opts],
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("info", help="package and experiment-scale info",
                   parents=[global_opts])
    sub.add_parser("table1", help="print Table 1 (PE allocation frontier)",
                   parents=[global_opts])
    sub.add_parser("table2", help="print Table 2 (accelerator configs)",
                   parents=[global_opts])
    p_sim = sub.add_parser("simulate", help="simulate a saved mask dump",
                           parents=[global_opts])
    p_sim.add_argument("dump", help="path to a .npz mask dump")
    sub.add_parser("quickstart", help="run the end-to-end quickstart example",
                   parents=[global_opts])

    p_prof = sub.add_parser(
        "profile",
        help="per-layer per-phase profile of quantized inference",
        parents=[global_opts],
    )
    p_prof.add_argument("model", help="model registry name (e.g. lenet, resnet8)")
    p_prof.add_argument("scheme", help="quantization scheme (e.g. odq, int8)")
    p_prof.add_argument("--threshold", type=float, default=None,
                        help="sensitivity threshold for odq/drq schemes")
    p_prof.add_argument("--dataset", default="mnist",
                        help="synthetic dataset (mnist|cifar10|cifar100)")
    p_prof.add_argument("--images", type=int, default=8,
                        help="images per profiled batch")
    p_prof.add_argument("--batches", type=int, default=1,
                        help="number of inference batches to profile")
    p_prof.add_argument("--calib-images", type=int, default=32,
                        help="calibration images for the session build")
    p_prof.add_argument("--train-epochs", type=int, default=0,
                        help="warm-up training epochs before profiling")
    p_prof.add_argument("--exec-path", choices=["auto", "dense", "sparse"],
                        default="auto",
                        help="ODQ result-generation path (auto|dense|sparse)")
    p_prof.add_argument("--gemm-threads", type=int, default=None,
                        help="process-wide GEMM pool width for the profiled "
                             "run (1 disables intra-op parallelism)")
    p_prof.add_argument("--no-plan", action="store_true",
                        help="profile the legacy per-call path instead of "
                             "the compiled inference plan")
    p_prof.add_argument("--flame", action="store_true",
                        help="also print the aggregated ASCII call tree")

    p_plan = sub.add_parser(
        "plan",
        help="compile and print the shape-specialized inference plan",
        parents=[global_opts],
    )
    p_plan.add_argument("model", help="model registry name (e.g. lenet, resnet20)")
    p_plan.add_argument("scheme", help="quantization scheme (e.g. odq, int8)")
    p_plan.add_argument("--threshold", type=float, default=None,
                        help="sensitivity threshold for odq/drq schemes")
    p_plan.add_argument("--dataset", default="mnist",
                        help="synthetic dataset (mnist|cifar10|cifar100)")
    p_plan.add_argument("--calib-images", type=int, default=32,
                        help="calibration images for the session build")
    p_plan.add_argument("--train-epochs", type=int, default=0,
                        help="warm-up training epochs before planning")
    p_plan.add_argument("--exec-path", choices=["auto", "dense", "sparse"],
                        default="auto",
                        help="ODQ result-generation path frozen into the plan")
    p_plan.add_argument("--batch-size", type=int, default=8,
                        help="batch shape the plan specializes on")

    p_serve = sub.add_parser("serve", help="start the batched inference HTTP server",
                             parents=[global_opts])
    _add_serve_options(p_serve)
    p_serve.add_argument("--verbose", action="store_true",
                         help="log each HTTP request")

    p_bench = sub.add_parser(
        "bench-serve", help="throughput: naive vs cached vs micro-batched",
        parents=[global_opts],
    )
    _add_serve_options(p_bench)
    p_bench.add_argument("--requests", type=int, default=64,
                         help="requests for the cached/batched paths")
    p_bench.add_argument("--naive-requests", type=int, default=4,
                         help="requests for the (slow) naive path")
    p_bench.add_argument("--out", default=None,
                         help="also write the table to this file")

    p_tail = sub.add_parser(
        "trace-tail",
        help="follow a serving telemetry spool (spans + logs, live)",
        parents=[global_opts],
    )
    p_tail.add_argument("spool",
                        help="telemetry spool path (serve --telemetry-spool)")
    p_tail.add_argument("--follow", action="store_true",
                        help="keep tailing for new records (Ctrl-C stops); "
                             "default prints the spool once and exits")
    p_tail.add_argument("--from-start", action="store_true",
                        help="with --follow, replay existing records before "
                             "tailing (default starts at the end)")
    p_tail.add_argument("--poll", type=float, default=0.5,
                        help="poll interval in seconds when following")
    p_tail.add_argument("--duration", type=float, default=None,
                        help="stop following after this many seconds")
    p_tail.add_argument("--raw", action="store_true",
                        help="print raw JSONL records instead of formatting")

    from repro.checks.cli import add_check_arguments

    p_check = sub.add_parser(
        "check", help="project-invariant static analyzer (repro.checks)",
        parents=[global_opts],
    )
    add_check_arguments(p_check)
    return parser


#: Command → handler dispatch table (tested in tests/test_cli.py).
HANDLERS = {
    "info": _cmd_info,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "simulate": _cmd_simulate,
    "profile": _cmd_profile,
    "plan": _cmd_plan,
    "quickstart": _cmd_quickstart,
    "serve": _cmd_serve,
    "bench-serve": _cmd_bench_serve,
    "check": _cmd_check,
    "trace-tail": _cmd_trace_tail,
}


def _configure_observability(args) -> None:
    """Apply the global --trace/--log-* flags before dispatch."""
    if getattr(args, "log_level", None):
        obslog.configure(level=args.log_level)
    if getattr(args, "log_json", False):
        obslog.configure(json_mode=True)
    if getattr(args, "trace", False) or getattr(args, "trace_out", None):
        trace.enable()


def _write_trace(args) -> None:
    """Shared --trace-out epilogue: export whatever the tracer collected."""
    trace_out = getattr(args, "trace_out", None)
    if not trace_out:
        return
    from repro.obs import exporters

    collector = getattr(args, "_collector", None)
    if collector is not None:
        if getattr(args, "trace_format", "chrome") == "jsonl":
            path = collector.write_jsonl(trace_out)
        else:
            path = collector.write_chrome_trace(trace_out)
        console(
            f"[trace: {len(collector.merged())} merged spans across "
            f"{len(collector.lanes())} lanes written to {path}]",
            err=True,
        )
        return
    spans = getattr(args, "_profile_spans", None)
    if spans is None:
        spans = trace.spans()
    if getattr(args, "trace_format", "chrome") == "jsonl":
        path = exporters.write_jsonl(spans, trace_out)
    else:
        path = exporters.write_chrome_trace(spans, trace_out)
    console(f"[trace: {len(spans)} spans written to {path}]", err=True)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        # No command: print usage and exit 2 (matching argparse's own
        # behaviour for unknown commands) instead of tracebacking.
        parser.print_usage(sys.stderr)
        console(f"{parser.prog}: error: a command is required "
                f"(one of: {', '.join(HANDLERS)})", err=True)
        return 2
    handler = HANDLERS.get(args.command)
    if handler is None:  # defensive: subparser without a handler entry
        parser.print_usage(sys.stderr)
        console(f"{parser.prog}: error: unhandled command {args.command!r}",
                err=True)
        return 2
    _configure_observability(args)
    rc = handler(args)
    _write_trace(args)
    return rc


if __name__ == "__main__":
    sys.exit(main())
