"""Accuracy comparison across quantization schemes (Figure 18).

For each (model, dataset) the five schemes of the paper are evaluated:
INT16 and INT8 static DoReFa, DRQ 8-4, DRQ 4-2, and ODQ 4-2, alongside
the FP32 reference, plus the share of high-precision (INT4/INT8) output
computation each dynamic scheme performed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import run_scheme
from repro.core.schemes import drq_scheme, fp32_scheme, odq_scheme, static_scheme
from repro.nn.layers import Module
from repro.utils.report import ascii_table


@dataclass
class AccuracyRow:
    """One scheme's Fig.-18 entry."""

    scheme: str
    accuracy: float
    high_precision_share: float  # share of outputs/inputs computed at hi bits


@dataclass
class AccuracyComparison:
    model_name: str
    dataset_name: str
    rows: list[AccuracyRow] = field(default_factory=list)

    def get(self, scheme: str) -> AccuracyRow:
        for row in self.rows:
            if row.scheme == scheme:
                return row
        raise KeyError(scheme)

    @property
    def odq_drop_vs_drq84(self) -> float:
        """The paper's headline <= 0.6% degradation metric."""
        return self.get("DRQ 8-4").accuracy - self.get("ODQ 4-2").accuracy

    @property
    def drq42_drop_vs_fp(self) -> float:
        """DRQ's low-bitwidth failure (paper: 2.5-10%)."""
        return self.get("FP32").accuracy - self.get("DRQ 4-2").accuracy


def compare_accuracy(
    model: Module,
    model_name: str,
    dataset_name: str,
    x_calib: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    odq_threshold: float,
    odq_model: Module | None = None,
) -> AccuracyComparison:
    """Evaluate the Fig.-18 scheme set on one trained model.

    ``odq_model`` is the ODQ-retrained twin (threshold introduced during
    training, per paper Section 3); when omitted, the base model is used
    for the ODQ row too.
    """
    comparison = AccuracyComparison(model_name, dataset_name)
    plan = [
        ("FP32", fp32_scheme()),
        ("INT16", static_scheme(16)),
        ("INT8", static_scheme(8)),
        ("DRQ 8-4", drq_scheme(8, 4)),
        ("DRQ 4-2", drq_scheme(4, 2)),
        ("ODQ 4-2", odq_scheme(odq_threshold)),
    ]
    for name, scheme in plan:
        target = odq_model if (scheme.kind == "odq" and odq_model is not None) else model
        acc, records = run_scheme(target, scheme, x_calib, x_test, y_test)
        if scheme.kind == "odq":
            total = sum(r.outputs_total for r in records.values())
            hi = sum(r.sensitive_total for r in records.values())
            share = hi / total if total else 0.0
        elif scheme.kind == "drq":
            hi = sum(r.macs.get("drq_hi", 0) for r in records.values())
            total = hi + sum(r.macs.get("drq_lo", 0) for r in records.values())
            share = hi / total if total else 0.0
        elif scheme.kind == "static":
            share = 1.0
        else:
            share = 1.0
        comparison.rows.append(AccuracyRow(name, acc, share))
    return comparison


def render_fig18(comparisons: list[AccuracyComparison]) -> str:
    headers = ["model", "dataset", "scheme", "top-1 acc", "hi-precision share"]
    rows = []
    for c in comparisons:
        for row in c.rows:
            rows.append(
                [
                    c.model_name,
                    c.dataset_name,
                    row.scheme,
                    f"{100 * row.accuracy:.1f}%",
                    f"{100 * row.high_precision_share:.1f}%",
                ]
            )
    return ascii_table(headers, rows, title="Fig. 18: accuracy vs quantization scheme")


__all__ = [
    "AccuracyRow",
    "AccuracyComparison",
    "compare_accuracy",
    "render_fig18",
]
