"""Motivation-study drivers (Section 2: Figures 1-5).

These run a trained network under the DRQ baseline, capture every conv
layer's input feature maps, and compute the paper's four motivation
metrics per layer via :mod:`repro.core.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import QuantizedInferenceEngine
from repro.core.schemes import drq_scheme
from repro.core.stats import (
    BUCKET_LABELS,
    MotivationLayerStats,
    motivation_stats_for_layer,
)
from repro.nn.layers import Module
from repro.utils.report import ascii_bar_chart, ascii_table


def collect_motivation_stats(
    model: Module,
    x_calib: np.ndarray,
    x_eval: np.ndarray,
    output_threshold: float,
    hi_bits: int = 8,
    lo_bits: int = 4,
) -> list[MotivationLayerStats]:
    """Per-layer Figs 2-5 statistics of DRQ on ``model``.

    ``output_threshold`` defines output sensitivity the ODQ way (|O| > t
    on the full-precision outputs), so the study measures exactly what the
    paper measures: how input-directed decisions interact with
    output-directed sensitivity.
    """
    engine = QuantizedInferenceEngine(model, drq_scheme(hi_bits, lo_bits))
    try:
        engine.capture_inputs = True
        engine.calibrate(x_calib)
        engine.forward(x_eval)
        stats = []
        for name, executor in engine.executors.items():
            x_layer = executor.record.extra.get("last_input")
            if x_layer is None:  # pragma: no cover - defensive
                continue
            stats.append(
                motivation_stats_for_layer(executor, x_layer, output_threshold)
            )
        return stats
    finally:
        engine.restore()


@dataclass
class Fig1Example:
    """The LeNet-5 illustration of Figure 1.

    Counts, over one batch, the two mismatch cases the figure draws:
    sensitive outputs computed mostly from insensitive inputs (case 1) and
    insensitive outputs computed mostly from sensitive inputs (case 2).
    """

    case1_fraction: float  # sensitive outputs with >50% low-precision inputs
    case2_fraction: float  # insensitive outputs with >50% high-precision inputs
    layers: int


def fig1_example(
    model: Module,
    x_calib: np.ndarray,
    x_eval: np.ndarray,
    output_threshold: float,
) -> Fig1Example:
    """Quantify Figure 1's mismatch cases on LeNet-5 (or any model)."""
    stats = collect_motivation_stats(model, x_calib, x_eval, output_threshold)
    case1 = float(np.mean([s.lowprec_input_buckets[2:].sum() for s in stats]))
    case2 = float(np.mean([s.highprec_input_buckets[2:].sum() for s in stats]))
    return Fig1Example(case1, case2, len(stats))


# -- rendering ------------------------------------------------------------------


def render_bucket_table(
    stats: list[MotivationLayerStats], which: str, title: str
) -> str:
    """ASCII rendering of Fig. 2 (which='low') or Fig. 4 (which='high')."""
    rows = []
    for i, s in enumerate(stats):
        buckets = s.lowprec_input_buckets if which == "low" else s.highprec_input_buckets
        rows.append(
            [f"C{i + 1}"] + [f"{100 * b:.1f}%" for b in buckets]
        )
    return ascii_table(["layer", *BUCKET_LABELS], rows, title=title)


def render_scalar_chart(
    stats: list[MotivationLayerStats], metric: str, title: str
) -> str:
    """ASCII rendering of Fig. 3 / Fig. 5 per-layer scalar series."""
    labels = [f"C{i + 1}" for i in range(len(stats))]
    values = [getattr(s, metric) for s in stats]
    return ascii_bar_chart(labels, values, title=title)


__all__ = [
    "collect_motivation_stats",
    "Fig1Example",
    "fig1_example",
    "render_bucket_table",
    "render_scalar_chart",
]
