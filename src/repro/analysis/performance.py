"""Performance & energy comparisons: Figures 19, 21 and Tables 1-2.

For each DNN the four schemes are run through the quantized inference
engine; the per-layer records become accelerator workloads; each Table-2
accelerator simulates its scheme.  Times and energies are reported
normalised to the INT16 DoReFa baseline, exactly like the paper's bars.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accel.configs import TABLE2
from repro.accel.energy import EnergyBreakdown
from repro.accel.simulator import (
    SimResult,
    build_accelerator,
    workloads_from_records,
)
from repro.accel.alloc import table1_configurations
from repro.core.pipeline import run_scheme
from repro.core.schemes import drq_scheme, odq_scheme, static_scheme
from repro.nn.layers import Module
from repro.utils.report import ascii_table


@dataclass
class SchemeRun:
    """One (scheme, accelerator) evaluation of one model."""

    scheme: str
    accelerator: str
    accuracy: float
    sim: SimResult

    @property
    def cycles(self) -> float:
        return self.sim.total_cycles

    @property
    def energy(self) -> EnergyBreakdown:
        return self.sim.total_energy


@dataclass
class ModelComparison:
    """Fig. 19/21 rows for one DNN."""

    model_name: str
    runs: dict[str, SchemeRun] = field(default_factory=dict)

    def normalized_times(self) -> dict[str, float]:
        ref = self.runs["INT16"].cycles
        return {name: run.cycles / ref for name, run in self.runs.items()}

    def normalized_energies(self) -> dict[str, float]:
        ref = self.runs["INT16"].energy.total_pj
        return {name: run.energy.total_pj / ref for name, run in self.runs.items()}

    def odq_speedup_vs(self, other: str) -> float:
        """Fractional execution-time reduction of ODQ vs another scheme."""
        t_odq = self.runs["ODQ"].cycles
        t_other = self.runs[other].cycles
        return 1.0 - t_odq / t_other

    def odq_energy_saving_vs(self, other: str) -> float:
        e_odq = self.runs["ODQ"].energy.total_pj
        e_other = self.runs[other].energy.total_pj
        return 1.0 - e_odq / e_other


def compare_accelerators(
    model: Module,
    model_name: str,
    x_calib: np.ndarray,
    x_eval: np.ndarray,
    y_eval: np.ndarray,
    odq_threshold: float,
    drq_hi: int = 8,
    drq_lo: int = 4,
    odq_model: Module | None = None,
) -> ModelComparison:
    """Run one model through all four (scheme, accelerator) pairs.

    ``odq_model`` is the ODQ-retrained twin used for the ODQ row.
    """
    plan = [
        ("INT16", static_scheme(16), build_accelerator("INT16")),
        ("INT8", static_scheme(8), build_accelerator("INT8")),
        ("DRQ", drq_scheme(drq_hi, drq_lo), build_accelerator("DRQ", hi_bits=drq_hi, lo_bits=drq_lo)),
        ("ODQ", odq_scheme(odq_threshold), build_accelerator("ODQ")),
    ]
    comparison = ModelComparison(model_name)
    for name, scheme, accel in plan:
        target = odq_model if (scheme.kind == "odq" and odq_model is not None) else model
        acc, records = run_scheme(target, scheme, x_calib, x_eval, y_eval)
        sim = accel.simulate(workloads_from_records(records))
        comparison.runs[name] = SchemeRun(name, accel.spec.name, acc, sim)
    return comparison


# -- rendering --------------------------------------------------------------------


def render_fig19(comparisons: list[ModelComparison]) -> str:
    """Fig. 19: normalized execution time per model per accelerator."""
    headers = ["model", "INT16", "INT8", "DRQ", "ODQ"]
    rows = []
    for c in comparisons:
        times = c.normalized_times()
        rows.append(
            [c.model_name] + [f"{times[k]:.4f}" for k in headers[1:]]
        )
    return ascii_table(headers, rows, title="Fig. 19: normalized execution time")


def render_fig21(comparisons: list[ModelComparison]) -> str:
    """Fig. 21: normalized energy with DRAM/Buffer/Cores breakdown."""
    headers = ["model", "scheme", "total", "cores", "buffer", "dram", "static"]
    rows = []
    for c in comparisons:
        ref = c.runs["INT16"].energy.total_pj
        for name, run in c.runs.items():
            shares = run.energy.normalized_to(ref)
            rows.append(
                [
                    c.model_name,
                    name,
                    f"{shares['total']:.4f}",
                    f"{shares['cores']:.4f}",
                    f"{shares['buffer']:.4f}",
                    f"{shares['dram']:.4f}",
                    f"{shares['static']:.4f}",
                ]
            )
    return ascii_table(headers, rows, title="Fig. 21: normalized energy")


def render_table1() -> str:
    """Table 1: PE-array configs vs max bubble-free sensitive fraction."""
    rows = [
        [
            c.predictor_arrays,
            c.executor_arrays,
            int(100 * c.max_sensitive_fraction),  # paper floors these
        ]
        for c in table1_configurations()
    ]
    return ascii_table(
        ["# predictor arrays", "# executor arrays", "max sensitive %"],
        rows,
        title="Table 1: PE allocation vs bubble-free sensitivity",
    )


def render_table2() -> str:
    """Table 2: the accelerator configurations."""
    rows = [
        [spec.name, spec.num_pes, f"INT{spec.native_bits}", f"{spec.onchip_memory_bytes / 2**20:.2f} MB"]
        for spec in TABLE2.values()
    ]
    return ascii_table(
        ["accelerator", "#PEs", "native width", "on-chip memory"],
        rows,
        title="Table 2: accelerator configurations",
    )


__all__ = [
    "SchemeRun",
    "ModelComparison",
    "compare_accelerators",
    "render_fig19",
    "render_fig21",
    "render_table1",
    "render_table2",
]
