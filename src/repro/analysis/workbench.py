"""Shared experiment workbench.

Every benchmark/figure needs the same expensive ingredients: synthetic
datasets, trained models, and per-model ODQ thresholds.  The
:class:`Workbench` builds them once (deterministically, from
``repro.config.ExperimentScale``) and memoises them for the process
lifetime, so the per-figure benches stay cheap and mutually consistent.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.config import DEFAULT_SEED, ExperimentScale
from repro.core.schemes import odq_scheme
from repro.core.odq_qat import finetune_odq
from repro.core.threshold import adaptive_threshold_search
from repro.data.synthetic import (
    Dataset,
    synthetic_cifar10,
    synthetic_cifar100,
    synthetic_mnist,
)
from repro.models.registry import build_model
from repro.nn.layers import Module
from repro.nn.optim import SGD, CosineLR
from repro.nn.trainer import Trainer, TrainHistory


def scale_from_env() -> ExperimentScale:
    """Pick the experiment scale from ``REPRO_SCALE`` (small|default)."""
    mode = os.environ.get("REPRO_SCALE", "small").lower()
    if mode == "default":
        return ExperimentScale.default()
    return ExperimentScale.small()


@dataclass
class TrainedModel:
    """A trained model plus its provenance."""

    model: Module
    history: TrainHistory
    model_name: str
    dataset_name: str

    @property
    def fp_accuracy(self) -> float:
        return self.history.final_test_acc


@dataclass
class Workbench:
    """Caches datasets, trained models, and ODQ thresholds per experiment run."""

    scale: ExperimentScale = field(default_factory=scale_from_env)
    seed: int = DEFAULT_SEED
    _datasets: dict[str, Dataset] = field(default_factory=dict, repr=False)
    _models: dict[tuple[str, str], TrainedModel] = field(default_factory=dict, repr=False)
    _thresholds: dict[tuple[str, str], float] = field(default_factory=dict, repr=False)
    _odq_models: dict[tuple[str, str], Module] = field(default_factory=dict, repr=False)

    # -- datasets -----------------------------------------------------------

    def dataset(self, name: str) -> Dataset:
        name = name.lower()
        if name not in self._datasets:
            kwargs = dict(
                image_size=self.scale.image_size,
                num_train=self.scale.num_train,
                num_test=self.scale.num_test,
                noise=self.scale.noise,
                max_shift=self.scale.max_shift,
                seed=self.seed,
            )
            if name == "cifar10":
                self._datasets[name] = synthetic_cifar10(**kwargs)
            elif name == "cifar100":
                # 100 classes need enough samples per class to be learnable
                # at all; guarantee ~20 train / 2 test images per class.
                kwargs["num_train"] = max(kwargs["num_train"], 2000)
                kwargs["num_test"] = max(kwargs["num_test"], 200)
                self._datasets[name] = synthetic_cifar100(**kwargs)
            elif name == "mnist":
                kwargs.pop("image_size")
                kwargs.pop("noise")
                self._datasets[name] = synthetic_mnist(**kwargs)
            else:
                raise KeyError(f"unknown dataset {name!r}")
        return self._datasets[name]

    # -- trained models ---------------------------------------------------------

    def trained_model(self, model_name: str, dataset_name: str = "cifar10") -> TrainedModel:
        key = (model_name, dataset_name)
        if key not in self._models:
            ds = self.dataset(dataset_name)
            rng = np.random.default_rng(self.seed + hash(key) % 10_000)
            in_channels = ds.image_shape[0]
            model = build_model(
                model_name,
                num_classes=ds.num_classes,
                scale=self.scale.width_multiplier,
                rng=rng,
                in_channels=in_channels,
                image_size=ds.image_shape[1],
            )
            # Per-model recipes: very deep narrow nets (ResNet-56) need a
            # gentler LR and a longer schedule to converge on the NumPy
            # substrate; CIFAR-100 runs get two extra epochs.
            lr, epochs = 0.05, self.scale.epochs
            if model_name == "resnet56":
                lr, epochs = 0.02, 2 * self.scale.epochs
            if dataset_name == "cifar100":
                epochs += 2
            optimizer = SGD(model.parameters(), lr=lr, momentum=0.9, weight_decay=1e-4)
            scheduler = CosineLR(optimizer, t_max=epochs)
            trainer = Trainer(
                model,
                optimizer,
                scheduler,
                batch_size=self.scale.batch_size,
                rng=np.random.default_rng(self.seed),
            )
            history = trainer.fit(
                ds.x_train, ds.y_train, ds.x_test, ds.y_test, epochs=epochs
            )
            self._models[key] = TrainedModel(model, history, model_name, dataset_name)
        return self._models[key]

    # -- thresholds and ODQ-retrained models ---------------------------------------

    def _finetune_kwargs(self, dataset_name: str) -> dict:
        ds = self.dataset(dataset_name)
        return {
            "x_train": ds.x_train,
            "y_train": ds.y_train,
            "epochs": max(2, self.scale.epochs // 2),
            "lr": 0.005,
            "batch_size": self.scale.batch_size,
            "rng": np.random.default_rng(self.seed + 1),
        }

    def odq_threshold(
        self,
        model_name: str,
        dataset_name: str = "cifar10",
        max_accuracy_drop: float = 0.05,
        max_halvings: int = 4,
    ) -> float:
        """Per-model ODQ threshold via the paper's adaptive search (Table 3).

        Each candidate threshold retrains a scratch copy of the model
        (the paper's "weights are retrained after introducing the
        threshold" step) before evaluating accuracy.
        """
        key = (model_name, dataset_name)
        if key not in self._thresholds:
            tm = self.trained_model(model_name, dataset_name)
            ds = self.dataset(dataset_name)
            result = adaptive_threshold_search(
                tm.model,
                self.calibration_batch(dataset_name),
                ds.x_test,
                ds.y_test,
                max_accuracy_drop=max_accuracy_drop,
                max_halvings=max_halvings,
                finetune=self._finetune_kwargs(dataset_name),
            )
            self._thresholds[key] = result.threshold
        return self._thresholds[key]

    def odq_model(self, model_name: str, dataset_name: str = "cifar10") -> Module:
        """The ODQ-retrained twin of a trained model (paper Section 3).

        Used for every ODQ evaluation; the plain ``trained_model`` serves
        the FP32/static/DRQ rows, mirroring the paper's per-scheme
        training setups.
        """
        key = (model_name, dataset_name)
        if key not in self._odq_models:
            import copy

            theta = self.odq_threshold(model_name, dataset_name)
            base = self.trained_model(model_name, dataset_name).model
            twin = copy.deepcopy(base)
            finetune_odq(twin, theta, **self._finetune_kwargs(dataset_name))
            twin.eval()
            self._odq_models[key] = twin
        return self._odq_models[key]

    def odq_scheme_for(self, model_name: str, dataset_name: str = "cifar10"):
        return odq_scheme(self.odq_threshold(model_name, dataset_name))

    def calibration_batch(self, dataset_name: str = "cifar10") -> np.ndarray:
        ds = self.dataset(dataset_name)
        return ds.x_train[: min(len(ds.x_train), 4 * self.scale.batch_size)]


_GLOBAL_WORKBENCH: Workbench | None = None


def global_workbench() -> Workbench:
    """Process-wide workbench shared by benchmarks and examples."""
    global _GLOBAL_WORKBENCH
    if _GLOBAL_WORKBENCH is None:
        _GLOBAL_WORKBENCH = Workbench()
    return _GLOBAL_WORKBENCH


__all__ = ["Workbench", "TrainedModel", "scale_from_env", "global_workbench"]
