"""PE-idleness studies: Figure 11 (static allocation) and Figure 20 (ODQ).

Both figures plot, per conv layer, the share of idle PEs.  The inputs are
the per-layer sensitive-output fractions measured by the ODQ predictor;
the allocation model of :mod:`repro.accel.alloc` turns them into idle
shares for a fixed (static) split and for the Table-1 dynamic scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.alloc import (
    PEAllocation,
    choose_allocation,
    idle_fractions,
)
from repro.analysis.sensitivity import LayerSensitivity
from repro.utils.report import ascii_table


@dataclass
class LayerIdle:
    """Idle-PE shares for one layer under one allocation policy."""

    layer: str
    predictor_idle: float
    executor_idle: float
    overall_idle: float
    allocation: str


def static_allocation_idleness(
    layers: list[LayerSensitivity], alloc: PEAllocation
) -> list[LayerIdle]:
    """Fig. 11: idle PEs when (p, e) is fixed for the whole network."""
    out = []
    for l in layers:
        stats = idle_fractions(l.sensitive_fraction, alloc)
        out.append(
            LayerIdle(
                layer=l.layer,
                predictor_idle=stats.predictor_idle_fraction,
                executor_idle=stats.executor_idle_fraction,
                overall_idle=stats.overall_idle_fraction,
                allocation=str(alloc),
            )
        )
    return out


def dynamic_allocation_idleness(
    layers: list[LayerSensitivity],
) -> list[LayerIdle]:
    """Fig. 20: idle PEs when the Table-1 config is re-chosen per layer."""
    out = []
    for l in layers:
        alloc = choose_allocation(l.sensitive_fraction)
        stats = idle_fractions(l.sensitive_fraction, alloc)
        out.append(
            LayerIdle(
                layer=l.layer,
                predictor_idle=stats.predictor_idle_fraction,
                executor_idle=stats.executor_idle_fraction,
                overall_idle=stats.overall_idle_fraction,
                allocation=str(alloc),
            )
        )
    return out


def render_idleness(rows: list[LayerIdle], title: str) -> str:
    table = [
        [
            f"C{i + 1}",
            r.allocation,
            f"{100 * r.predictor_idle:.1f}%",
            f"{100 * r.executor_idle:.1f}%",
            f"{100 * r.overall_idle:.1f}%",
        ]
        for i, r in enumerate(rows)
    ]
    return ascii_table(
        ["layer", "alloc", "Pre_idle", "Exe_idle", "overall"], table, title=title
    )


__all__ = [
    "LayerIdle",
    "static_allocation_idleness",
    "dynamic_allocation_idleness",
    "render_idleness",
]
