"""Output-sensitivity analyses: Figures 9, 10, 22 and Table 3."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import QuantizedInferenceEngine
from repro.core.schemes import odq_scheme
from repro.core.threshold import (
    ThresholdSweepPoint,
    adaptive_threshold_search,
    threshold_sweep,
)
from repro.nn.layers import Module
from repro.utils.report import ascii_bar_chart, ascii_table


@dataclass
class LayerSensitivity:
    """Per-layer sensitive/insensitive split under ODQ."""

    layer: str
    insensitive_fraction: float
    sensitive_fraction: float
    outputs: int


def per_layer_insensitivity(
    model: Module,
    x_calib: np.ndarray,
    x_eval: np.ndarray,
    threshold: float,
) -> list[LayerSensitivity]:
    """Figures 9/10: % insensitive output features per conv layer."""
    engine = QuantizedInferenceEngine(model, odq_scheme(threshold))
    try:
        engine.calibrate(x_calib)
        engine.forward(x_eval)
        out = []
        for name, rec in engine.records.items():
            out.append(
                LayerSensitivity(
                    layer=name,
                    insensitive_fraction=rec.insensitive_fraction,
                    sensitive_fraction=rec.sensitive_fraction,
                    outputs=rec.outputs_total,
                )
            )
        return out
    finally:
        engine.restore()


def render_insensitivity_chart(
    layers: list[LayerSensitivity], title: str
) -> str:
    labels = [f"C{i + 1}" for i in range(len(layers))]
    values = [100.0 * l.insensitive_fraction for l in layers]
    return ascii_bar_chart(labels, values, title=title, fmt="{:.1f}%")


def render_threshold_sweep(points: list[ThresholdSweepPoint], title: str) -> str:
    """Fig. 22: accuracy and INT4/INT2 mix vs threshold."""
    rows = [
        [
            f"{p.threshold:.3f}",
            f"{100 * p.accuracy:.1f}%",
            f"{100 * p.sensitive_fraction:.1f}%",
            f"{100 * p.insensitive_fraction:.1f}%",
        ]
        for p in points
    ]
    return ascii_table(
        ["threshold", "top-1 acc", "INT4 outputs", "INT2 outputs"], rows, title=title
    )


def render_table3(thresholds: dict[str, float]) -> str:
    """Table 3: per-model thresholds chosen by the adaptive search."""
    rows = [[name, f"{theta:.4g}"] for name, theta in thresholds.items()]
    return ascii_table(["NN Model", "Threshold"], rows, title="Table 3: thresholds")


__all__ = [
    "LayerSensitivity",
    "per_layer_insensitivity",
    "render_insensitivity_chart",
    "render_threshold_sweep",
    "render_table3",
    "threshold_sweep",
    "adaptive_threshold_search",
]
