"""Section 6.1's per-layer ODQ precision-loss listing.

The paper prints, for ODQ on ResNet-20/CIFAR-10, the per-layer precision
loss on sensitive outputs (C1: 0.08, C2: 0.1, ..., C16: 0.05) and argues
it is "significantly lower ... in almost all layers" than DRQ's Fig.-3
losses.  This driver regenerates that listing for any model and compares
ODQ vs DRQ-at-the-same-bits side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.motivation import collect_motivation_stats
from repro.core.pipeline import QuantizedInferenceEngine
from repro.core.schemes import odq_scheme
from repro.core.stats import odq_precision_loss_for_layer
from repro.nn.layers import Module
from repro.utils.report import ascii_table


@dataclass
class LayerPrecisionLoss:
    """One layer's sensitive-output precision loss under ODQ and DRQ 4-2."""

    layer: str
    odq_loss: float
    drq_loss: float

    @property
    def odq_wins(self) -> bool:
        return self.odq_loss <= self.drq_loss


def per_layer_precision_loss(
    model: Module,
    x_calib: np.ndarray,
    x_eval: np.ndarray,
    threshold: float,
    odq_model: Module | None = None,
) -> list[LayerPrecisionLoss]:
    """Per-layer sensitive-output loss: ODQ vs DRQ at 4-2 bits.

    ``odq_model`` is the ODQ-retrained twin (pass the base model to
    measure the post-training regime instead).  Output sensitivity is
    ``|O_fp| > threshold`` throughout, the definition both columns share.
    """
    drq_stats = collect_motivation_stats(
        model, x_calib, x_eval, threshold, hi_bits=4, lo_bits=2
    )

    target = odq_model if odq_model is not None else model
    engine = QuantizedInferenceEngine(target, odq_scheme(threshold))
    try:
        engine.capture_inputs = True
        engine.calibrate(x_calib)
        engine.forward(x_eval)
        rows = []
        for (name, ex), drq in zip(engine.executors.items(), drq_stats):
            xi = ex.record.extra["last_input"]
            o_fp = ex.reference_forward(xi)
            o_odq = ex.run(xi)
            rows.append(
                LayerPrecisionLoss(
                    layer=name,
                    odq_loss=odq_precision_loss_for_layer(o_fp, o_odq, threshold),
                    drq_loss=drq.precision_loss_sensitive,
                )
            )
        return rows
    finally:
        engine.restore()


def render_precision_loss(rows: list[LayerPrecisionLoss], title: str) -> str:
    table = [
        [
            f"C{i + 1}",
            f"{r.odq_loss:.3f}",
            f"{r.drq_loss:.3f}",
            "ODQ" if r.odq_wins else "DRQ",
        ]
        for i, r in enumerate(rows)
    ]
    wins = sum(r.odq_wins for r in rows)
    footer = f"ODQ lower in {wins}/{len(rows)} layers"
    return ascii_table(
        ["layer", "ODQ loss", "DRQ 4-2 loss", "lower"], table, title=title
    ) + "\n" + footer


__all__ = ["LayerPrecisionLoss", "per_layer_precision_loss", "render_precision_loss"]
