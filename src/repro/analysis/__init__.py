"""Experiment drivers shared by the benchmark harness and examples."""

from repro.analysis.workbench import (
    Workbench,
    TrainedModel,
    scale_from_env,
    global_workbench,
)
from repro.analysis.motivation import (
    collect_motivation_stats,
    Fig1Example,
    fig1_example,
    render_bucket_table,
    render_scalar_chart,
)
from repro.analysis.sensitivity import (
    LayerSensitivity,
    per_layer_insensitivity,
    render_insensitivity_chart,
    render_threshold_sweep,
    render_table3,
)
from repro.analysis.idleness import (
    LayerIdle,
    static_allocation_idleness,
    dynamic_allocation_idleness,
    render_idleness,
)
from repro.analysis.performance import (
    SchemeRun,
    ModelComparison,
    compare_accelerators,
    render_fig19,
    render_fig21,
    render_table1,
    render_table2,
)
from repro.analysis.accuracy import (
    AccuracyRow,
    AccuracyComparison,
    compare_accuracy,
    render_fig18,
)
from repro.analysis.precision_loss import (
    LayerPrecisionLoss,
    per_layer_precision_loss,
    render_precision_loss,
)

__all__ = [
    "Workbench",
    "TrainedModel",
    "scale_from_env",
    "global_workbench",
    "collect_motivation_stats",
    "Fig1Example",
    "fig1_example",
    "render_bucket_table",
    "render_scalar_chart",
    "LayerSensitivity",
    "per_layer_insensitivity",
    "render_insensitivity_chart",
    "render_threshold_sweep",
    "render_table3",
    "LayerIdle",
    "static_allocation_idleness",
    "dynamic_allocation_idleness",
    "render_idleness",
    "SchemeRun",
    "ModelComparison",
    "compare_accelerators",
    "render_fig19",
    "render_fig21",
    "render_table1",
    "render_table2",
    "AccuracyRow",
    "AccuracyComparison",
    "compare_accuracy",
    "render_fig18",
    "LayerPrecisionLoss",
    "per_layer_precision_loss",
    "render_precision_loss",
]
