"""Vectorized im2col / col2im transforms.

These are the workhorses behind every convolution in the library — both the
autograd substrate (``repro.nn``) and the quantized inference paths
(``repro.core``).  The paper's accelerator contains a hardware
"Im2col/Pack engine" (Fig. 12/17) that performs exactly this transform
before packing rows into line buffers, so keeping the software and the
simulator on the same layout is deliberate.

All tensors are NCHW.  The implementation uses stride tricks to build the
patch view without copying, then a single ``reshape`` materialises the
column matrix, following the vectorization guidance in the scientific-
python optimization notes (no Python-level loops over pixels).
"""

from __future__ import annotations

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"conv output size must be positive, got {out} "
            f"(size={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


def pad_nchw(x: np.ndarray, padding: int, value: float = 0.0) -> np.ndarray:
    """Zero-pad the two spatial dims of an NCHW tensor."""
    if padding == 0:
        return x
    return np.pad(
        x,
        ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="constant",
        constant_values=value,
    )


def _patch_view(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Return a (N, C, OH, OW, KH, KW) strided view of padded input ``x``."""
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    sn, sc, sh, sw = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )


def im2col(
    x: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Unfold an NCHW tensor into a column matrix.

    Returns an array of shape ``(N * OH * OW, C * KH * KW)`` where each row
    holds one receptive field, so a convolution becomes a single GEMM with
    the reshaped filter bank.  The row ordering is ``n``-major then
    raster-scan over output pixels, matching :func:`col2im`.
    """
    xp = pad_nchw(x, padding)
    patches = _patch_view(xp, kernel, stride)  # N,C,OH,OW,KH,KW
    n, c, oh, ow, kh, kw = patches.shape
    # -> N,OH,OW,C,KH,KW -> rows
    cols = patches.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols)


def im2col_rows(
    xp: np.ndarray, kernel: int, stride: int, rows: np.ndarray
) -> np.ndarray:
    """Materialise only selected rows of the im2col matrix of ``xp``.

    ``xp`` must already be padded (the caller owns pad semantics — the ODQ
    column cache pads with the activation zero point).  ``rows`` indexes
    the ``N * OH * OW`` raster order of :func:`im2col`; the result equals
    ``im2col(xp, kernel, stride)[rows]`` but copies only the gathered
    receptive fields.  This is the software analog of the paper's executor
    clusters fetching only flagged output positions from the line buffers:
    when few outputs are sensitive, the full column matrix is never built.
    """
    patches = _patch_view(xp, kernel, stride)  # N,C,OH,OW,KH,KW
    n, c, oh, ow, kh, kw = patches.shape
    rows = np.asarray(rows, dtype=np.intp)
    ni, rem = np.divmod(rows, oh * ow)
    oi, oj = np.divmod(rem, ow)
    # Fancy indexing copies only the selected patches: (R, C, KH, KW).
    gathered = patches[ni, :, oi, oj]
    return gathered.reshape(rows.size, c * kh * kw)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Fold a column matrix back into an NCHW tensor (adjoint of im2col).

    Overlapping patch contributions are accumulated, which makes this the
    correct gradient of :func:`im2col` rather than its inverse.
    """
    n, c, h, w = x_shape
    hp, wp = h + 2 * padding, w + 2 * padding
    oh = (hp - kernel) // stride + 1
    ow = (wp - kernel) // stride + 1
    patches = cols.reshape(n, oh, ow, c, kernel, kernel).transpose(0, 3, 1, 2, 4, 5)

    xp = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    # Accumulate per kernel offset: kernel*kernel strided adds, each fully
    # vectorized over N, C and all output pixels.
    for ki in range(kernel):
        for kj in range(kernel):
            xp[:, :, ki : ki + stride * oh : stride, kj : kj + stride * ow : stride] += (
                patches[:, :, :, :, ki, kj]
            )
    if padding:
        return xp[:, :, padding:-padding, padding:-padding]
    return xp


__all__ = ["conv_output_size", "pad_nchw", "im2col", "im2col_rows", "col2im"]
