"""Shared utilities: RNG handling, im2col transforms, bit manipulation,
and ASCII reporting used by the benchmark harness."""

from repro.utils.rng import new_rng, seed_everything
from repro.utils.im2col import (
    conv_output_size,
    im2col,
    col2im,
    pad_nchw,
)
from repro.utils.bitops import (
    split_bits,
    merge_bits,
    bit_plane,
    int_range,
)
from repro.utils.report import ascii_table, ascii_bar_chart, format_percent

__all__ = [
    "new_rng",
    "seed_everything",
    "conv_output_size",
    "im2col",
    "col2im",
    "pad_nchw",
    "split_bits",
    "merge_bits",
    "bit_plane",
    "int_range",
    "ascii_table",
    "ascii_bar_chart",
    "format_percent",
]
