"""Integer bit-plane manipulation used by the Eq.-3 decomposition.

The paper splits every INT4 operand ``q`` into a high-order slice (2 bits,
``HBS``) and a low-order slice (2 bits, ``LBS``) such that

    q = (HBS << N_LBS) + LBS.

For *unsigned* operands (post-ReLU activations) HBS is simply ``q >> 2``.
For *signed* operands (weights) we use arithmetic (floor) division so that
HBS keeps the sign and LBS stays in ``[0, 2**N_LBS)``; the identity above
then holds for every representable signed value, which is what makes the
four-term recomposition in Eq. 3 exact.
"""

from __future__ import annotations

import numpy as np


def int_range(bits: int, signed: bool) -> tuple[int, int]:
    """Inclusive (lo, hi) representable range of a ``bits``-wide integer."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    if signed:
        return -(2 ** (bits - 1)), 2 ** (bits - 1) - 1
    return 0, 2**bits - 1


def split_bits(
    q: np.ndarray, low_bits: int, signed: bool, mode: str = "floor"
) -> tuple[np.ndarray, np.ndarray]:
    """Split integer array ``q`` into (high, low) slices.

    Two signed conventions are supported, both satisfying
    ``merge_bits(high, low, low_bits) == q`` exactly:

    * ``mode="floor"`` — two's-complement style: ``high = q // 2**n`` and
      ``low`` in ``[0, 2**n)``.  Small *negative* values get ``high = -1``
      while small positive values get ``high = 0``, so a high-slice-only
      partial product is biased negative.
    * ``mode="sign_magnitude"`` — split ``|q|`` and reapply the sign to
      both slices: ``high = sign(q) * (|q| >> n)``.  Small values of
      either sign get ``high = 0``, which makes the high slice an
      *unbiased magnitude* estimate — this is what the ODQ sensitivity
      predictor needs from weights, and mirrors the sign-magnitude
      datapaths common in low-precision accelerators.

    Unsigned splits ignore ``mode`` (the two coincide).
    """
    q = np.asarray(q)
    if not np.issubdtype(q.dtype, np.integer):
        raise TypeError(f"split_bits expects an integer array, got {q.dtype}")
    base = 1 << low_bits
    if not signed or not np.any(q < 0):
        if not signed and np.any(q < 0):
            raise ValueError("unsigned split received negative values")
        high = q >> low_bits
        low = q & (base - 1)
    elif mode == "floor":
        high = np.floor_divide(q, base)
        low = q - high * base
    elif mode == "sign_magnitude":
        sign = np.sign(q)
        mag = np.abs(q)
        high = sign * (mag >> low_bits)
        low = sign * (mag & (base - 1))
    else:
        raise ValueError(f"unknown split mode {mode!r}")
    return high.astype(q.dtype), low.astype(q.dtype)


def merge_bits(high: np.ndarray, low: np.ndarray, low_bits: int) -> np.ndarray:
    """Inverse of :func:`split_bits`: ``(high << low_bits) + low``."""
    return (np.asarray(high) << low_bits) + np.asarray(low)


def bit_plane(q: np.ndarray, plane: int) -> np.ndarray:
    """Extract a single bit plane (0 = LSB) of a non-negative integer array."""
    q = np.asarray(q)
    if np.any(q < 0):
        raise ValueError("bit_plane expects non-negative values")
    return (q >> plane) & 1


__all__ = ["int_range", "split_bits", "merge_bits", "bit_plane"]
