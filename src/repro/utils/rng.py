"""Deterministic random-number handling.

Every stochastic component in the library takes either a seed or a
``numpy.random.Generator``; this module provides the single conversion
point so experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import random

import numpy as np

from repro.config import DEFAULT_SEED


def new_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts ``None`` (library default seed), an integer seed, or an existing
    generator (returned unchanged so call sites can thread one RNG through
    a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def seed_everything(seed: int = DEFAULT_SEED) -> None:
    """Seed both the stdlib and NumPy legacy global RNGs.

    Library code never uses global RNG state, but examples and third-party
    callers may; this is a convenience for them.
    """
    random.seed(seed)
    np.random.seed(seed % 2**32)


__all__ = ["new_rng", "seed_everything"]
