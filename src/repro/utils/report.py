"""Plain-text rendering of paper-style tables and bar charts.

The benchmark harness regenerates every table and figure of the paper as
ASCII so the comparison with the published artefact can be read straight
off a terminal (no plotting dependencies are available offline).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_percent(x: float, digits: int = 1) -> str:
    """Render a fraction in [0, 1] as a percentage string."""
    return f"{100.0 * x:.{digits}f}%"


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a list of rows as a fixed-width ASCII table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(fmt(list(headers)))
    lines.append(sep)
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str | None = None,
    width: int = 50,
    fmt: str = "{:.3f}",
) -> str:
    """Render labelled values as a horizontal ASCII bar chart.

    Bars are scaled so the maximum value fills ``width`` characters; zero
    and negative values render as empty bars with their numeric value
    still printed.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    vmax = max((v for v in values if v > 0), default=1.0)
    label_w = max((len(l) for l in labels), default=0)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        n = int(round(width * max(value, 0.0) / vmax)) if vmax > 0 else 0
        lines.append(f"{label.ljust(label_w)} | {'#' * n} {fmt.format(value)}")
    return "\n".join(lines)


__all__ = ["format_percent", "ascii_table", "ascii_bar_chart"]
