"""Section 6.1 per-layer precision-loss listing."""


from repro.analysis.precision_loss import (
    LayerPrecisionLoss,
    per_layer_precision_loss,
    render_precision_loss,
)


class TestListing:
    def test_rows_for_every_layer(self, trained_resnet, tiny_dataset, calib_batch):
        model, _ = trained_resnet
        rows = per_layer_precision_loss(
            model, calib_batch[:16], tiny_dataset.x_test[:8], threshold=0.3
        )
        assert len(rows) == 19
        assert all(r.odq_loss >= 0 and r.drq_loss >= 0 for r in rows)

    def test_render(self):
        rows = [LayerPrecisionLoss("C1", 0.05, 0.2), LayerPrecisionLoss("C2", 0.3, 0.1)]
        out = render_precision_loss(rows, "Sec. 6.1")
        assert "ODQ lower in 1/2 layers" in out
        assert "0.050" in out

    def test_odq_wins_property(self):
        assert LayerPrecisionLoss("C1", 0.1, 0.1).odq_wins
        assert not LayerPrecisionLoss("C1", 0.2, 0.1).odq_wins
