"""Analysis drivers: the figure/table generators behind the benchmarks."""

import pytest

from repro.accel.alloc import PEAllocation
from repro.analysis.accuracy import compare_accuracy, render_fig18
from repro.analysis.idleness import (
    dynamic_allocation_idleness,
    render_idleness,
    static_allocation_idleness,
)
from repro.analysis.motivation import (
    collect_motivation_stats,
    fig1_example,
    render_bucket_table,
    render_scalar_chart,
)
from repro.analysis.performance import (
    compare_accelerators,
    render_fig19,
    render_fig21,
    render_table1,
    render_table2,
)
from repro.analysis.sensitivity import (
    LayerSensitivity,
    per_layer_insensitivity,
    render_insensitivity_chart,
    render_table3,
)


class TestMotivationDriver:
    def test_stats_for_every_conv_layer(self, trained_resnet, tiny_dataset, calib_batch):
        model, _ = trained_resnet
        stats = collect_motivation_stats(
            model, calib_batch[:16], tiny_dataset.x_test[:8], 0.2
        )
        assert len(stats) == 19
        for s in stats:
            assert 0.0 <= s.sensitive_fraction <= 1.0

    def test_fig1_example(self, trained_resnet, tiny_dataset, calib_batch):
        model, _ = trained_resnet
        result = fig1_example(model, calib_batch[:16], tiny_dataset.x_test[:8], 0.2)
        assert result.layers == 19
        assert 0 <= result.case1_fraction <= 1
        assert 0 <= result.case2_fraction <= 1

    def test_renderers_produce_layers(self, trained_resnet, tiny_dataset, calib_batch):
        model, _ = trained_resnet
        stats = collect_motivation_stats(
            model, calib_batch[:16], tiny_dataset.x_test[:8], 0.2
        )
        table = render_bucket_table(stats, "low", "t")
        chart = render_scalar_chart(stats, "precision_loss_sensitive", "t")
        assert "C1" in table and "C19" in table
        assert chart.count("\n") >= 19


class TestSensitivityDriver:
    def test_per_layer_insensitivity(self, trained_resnet, tiny_dataset, calib_batch):
        model, _ = trained_resnet
        layers = per_layer_insensitivity(
            model, calib_batch[:16], tiny_dataset.x_test[:8], threshold=0.3
        )
        assert len(layers) == 19
        for l in layers:
            assert l.insensitive_fraction + l.sensitive_fraction == pytest.approx(1.0)

    def test_renderers(self):
        layers = [LayerSensitivity("C1", 0.4, 0.6, 100), LayerSensitivity("C2", 0.8, 0.2, 100)]
        chart = render_insensitivity_chart(layers, "t")
        assert "40.0%" in chart and "80.0%" in chart
        table3 = render_table3({"resnet20": 0.5})
        assert "resnet20" in table3 and "0.5" in table3


class TestIdlenessDriver:
    def _layers(self):
        return [
            LayerSensitivity("C1", 0.9, 0.1, 100),
            LayerSensitivity("C2", 0.5, 0.5, 100),
            LayerSensitivity("C3", 0.35, 0.65, 100),
        ]

    def test_static_idleness_rows(self):
        rows = static_allocation_idleness(self._layers(), PEAllocation(12, 15))
        assert len(rows) == 3
        assert all(r.allocation == "P12/E15" for r in rows)
        assert all(0 <= r.overall_idle <= 1 for r in rows)

    def test_dynamic_beats_static(self):
        layers = self._layers()
        static_rows = static_allocation_idleness(layers, PEAllocation(12, 15))
        dynamic_rows = dynamic_allocation_idleness(layers)
        assert sum(r.overall_idle for r in dynamic_rows) <= sum(
            r.overall_idle for r in static_rows
        )

    def test_render(self):
        rows = dynamic_allocation_idleness(self._layers())
        out = render_idleness(rows, "Fig. 20")
        assert "Fig. 20" in out and "Pre_idle" in out


class TestPerformanceDriver:
    def test_compare_accelerators_full_matrix(self, trained_resnet, tiny_dataset, calib_batch):
        model, _ = trained_resnet
        comparison = compare_accelerators(
            model, "resnet20", calib_batch[:16],
            tiny_dataset.x_test[:16], tiny_dataset.y_test[:16], odq_threshold=0.3,
        )
        assert set(comparison.runs) == {"INT16", "INT8", "DRQ", "ODQ"}
        times = comparison.normalized_times()
        assert times["INT16"] == pytest.approx(1.0)
        assert times["ODQ"] < times["INT16"]
        assert 0 < comparison.odq_speedup_vs("INT16") < 1
        assert render_fig19([comparison]).count("resnet20") == 1
        assert render_fig21([comparison]).count("resnet20") == 4

    def test_table_renderers(self):
        t1 = render_table1()
        assert "66" in t1 and "9" in t1
        t2 = render_table2()
        assert "4860" in t2 and "INT2" in t2


class TestAccuracyDriver:
    def test_compare_accuracy_rows(self, trained_resnet, tiny_dataset, calib_batch):
        model, _ = trained_resnet
        c = compare_accuracy(
            model, "resnet20", "cifar10",
            calib_batch[:16], tiny_dataset.x_test[:32], tiny_dataset.y_test[:32],
            odq_threshold=0.3,
        )
        names = [r.scheme for r in c.rows]
        assert names == ["FP32", "INT16", "INT8", "DRQ 8-4", "DRQ 4-2", "ODQ 4-2"]
        assert c.get("FP32").high_precision_share == 1.0
        assert 0 <= c.get("ODQ 4-2").high_precision_share <= 1
        out = render_fig18([c])
        assert "ODQ 4-2" in out

    def test_unknown_scheme_raises(self, trained_resnet, tiny_dataset, calib_batch):
        model, _ = trained_resnet
        c = compare_accuracy(
            model, "resnet20", "cifar10",
            calib_batch[:16], tiny_dataset.x_test[:16], tiny_dataset.y_test[:16],
            odq_threshold=0.3,
        )
        with pytest.raises(KeyError):
            c.get("INT2")
