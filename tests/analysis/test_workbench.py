"""Workbench: caching, determinism, and scale handling."""

import pytest

from repro.analysis.workbench import Workbench, scale_from_env
from repro.config import ExperimentScale


@pytest.fixture(scope="module")
def bench():
    # A deliberately tiny scale so workbench tests stay fast.
    scale = ExperimentScale(
        image_size=12, num_train=96, num_test=48, width_multiplier=0.25,
        epochs=2, batch_size=32, noise=0.12, max_shift=1,
    )
    return Workbench(scale=scale, seed=123)


class TestDatasets:
    def test_cached(self, bench):
        assert bench.dataset("cifar10") is bench.dataset("cifar10")

    def test_shapes_follow_scale(self, bench):
        ds = bench.dataset("cifar10")
        assert ds.x_train.shape == (96, 3, 12, 12)
        assert ds.num_classes == 10

    def test_cifar100(self, bench):
        assert bench.dataset("cifar100").num_classes == 100

    def test_mnist_geometry(self, bench):
        assert bench.dataset("mnist").image_shape == (1, 28, 28)

    def test_unknown(self, bench):
        with pytest.raises(KeyError):
            bench.dataset("imagenet")


class TestModels:
    def test_trained_model_cached(self, bench):
        a = bench.trained_model("resnet20")
        b = bench.trained_model("resnet20")
        assert a is b
        assert a.model_name == "resnet20"
        assert len(a.history.train_loss) == 2

    def test_calibration_batch_bounded(self, bench):
        calib = bench.calibration_batch("cifar10")
        assert len(calib) <= 4 * bench.scale.batch_size


class TestScaleFromEnv:
    def test_default_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_from_env().image_size == 16

    def test_paper_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "default")
        assert scale_from_env().image_size == 32


class TestThresholdAndODQModel:
    def test_threshold_and_model_cached(self, bench):
        t1 = bench.odq_threshold("resnet20", max_halvings=1)
        t2 = bench.odq_threshold("resnet20")
        assert t1 == t2 and t1 > 0
        m1 = bench.odq_model("resnet20")
        assert m1 is bench.odq_model("resnet20")
        # The ODQ twin is a different object from the base model.
        assert m1 is not bench.trained_model("resnet20").model
