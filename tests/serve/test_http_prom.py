"""/metrics content negotiation: JSON by default, Prometheus on request."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.serve.server import InferenceServer


def _fetch(url: str, accept: str | None = None):
    req = urllib.request.Request(url)
    if accept:
        req.add_header("Accept", accept)
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.headers.get("Content-Type", ""), resp.read().decode()


@pytest.fixture(scope="module")
def server(manager, serve_config):
    srv = InferenceServer(serve_config, sessions=manager)
    srv.start()
    # Push one request through so counters are non-trivial.
    payload = json.dumps(
        {"input": srv.session.sample_inputs[0].tolist()}
    ).encode()
    req = urllib.request.Request(
        srv.url + "/predict", data=payload,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30):
        pass
    yield srv
    srv.shutdown()


class TestNegotiation:
    def test_default_is_json(self, server):
        ctype, body = _fetch(server.url + "/metrics")
        assert "json" in ctype
        assert json.loads(body)["counters"]["requests_total"] >= 1

    def test_query_format_prom(self, server):
        ctype, body = _fetch(server.url + "/metrics?format=prom")
        assert ctype.startswith("text/plain")
        assert "# TYPE repro_requests_total counter" in body
        assert "repro_requests_total" in body

    def test_query_format_prometheus_alias(self, server):
        _, body = _fetch(server.url + "/metrics?format=prometheus")
        assert "# TYPE" in body

    def test_accept_text_plain(self, server):
        ctype, body = _fetch(server.url + "/metrics", accept="text/plain")
        assert ctype.startswith("text/plain")
        assert "repro_requests_total" in body

    def test_accept_json_stays_json(self, server):
        ctype, body = _fetch(server.url + "/metrics",
                             accept="application/json")
        assert "json" in ctype
        json.loads(body)

    def test_explicit_json_format_overrides_accept(self, server):
        ctype, body = _fetch(server.url + "/metrics?format=json",
                             accept="text/plain")
        assert "json" in ctype
        json.loads(body)

    def test_prom_body_is_exposition_shaped(self, server):
        _, body = _fetch(server.url + "/metrics?format=prom")
        for line in body.strip().split("\n"):
            assert line.startswith("#") or " " in line

    def test_sensitive_ratio_gauges_labelled(self, server):
        _, body = _fetch(server.url + "/metrics?format=prom")
        assert 'repro_sensitive_ratio{layer="' in body
