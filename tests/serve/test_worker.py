"""Worker pool: dispatch, metrics, per-worker stats, graceful shutdown."""

import threading

import numpy as np
import pytest

from repro.serve.batcher import MicroBatcher
from repro.serve.metrics import MetricsRegistry
from repro.serve.worker import WorkerPool


def _drive(session, n_requests: int, workers: int = 2, max_batch: int = 4):
    """Push n single-image requests through a fresh pool; return artifacts."""
    batcher = MicroBatcher(max_batch_size=max_batch, max_wait_ms=2)
    metrics = MetricsRegistry()
    pool = WorkerPool(session, batcher, metrics=metrics, num_workers=workers)
    with pool:
        futures = [
            batcher.submit(session.sample_inputs[i % len(session.sample_inputs)][None])
            for i in range(n_requests)
        ]
        results = [f.result(timeout=30) for f in futures]
    return pool, metrics, results


class TestDispatch:
    def test_all_futures_resolve_with_logit_rows(self, session):
        _, _, results = _drive(session, 10)
        assert len(results) == 10
        for rows in results:
            assert rows.shape == (1, session.num_classes)

    def test_results_match_direct_engine_outputs(self, session):
        batcher = MicroBatcher(max_batch_size=4, max_wait_ms=2)
        pool = WorkerPool(session, batcher, metrics=MetricsRegistry(), num_workers=1)
        x = session.sample_inputs[:3]
        expected = session.engine.infer(x)
        with pool:
            futures = [batcher.submit(x[i][None]) for i in range(3)]
            got = np.concatenate([f.result(timeout=30) for f in futures])
        np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-12)

    def test_metrics_account_for_every_request(self, session):
        _, metrics, _ = _drive(session, 12)
        snap = metrics.as_dict()
        assert snap["counters"]["requests_total"] == 12
        assert snap["counters"]["images_total"] == 12
        assert snap["counters"]["errors_total"] == 0
        assert snap["histograms"]["batch_size"]["sum"] == 12
        assert snap["histograms"]["queue_wait_ms"]["count"] == 12
        assert snap["histograms"]["infer_ms"]["count"] >= 1

    def test_sensitivity_gauges_published(self, session):
        _, metrics, _ = _drive(session, 4)
        gauges = metrics.as_dict()["gauges"]
        sens = {k: v for k, v in gauges.items() if k.startswith("sensitive_ratio:")}
        assert len(sens) == len(session.engine.executors)
        assert all(0.0 <= v <= 1.0 for v in sens.values())

    def test_bad_input_fails_future_not_worker(self, session):
        batcher = MicroBatcher(max_batch_size=4, max_wait_ms=1)
        pool = WorkerPool(session, batcher, metrics=MetricsRegistry(), num_workers=1)
        with pool:
            bad = batcher.submit(np.zeros((1, 7, 9, 9)))  # wrong shape
            with pytest.raises(Exception):
                bad.result(timeout=30)
            # the worker survived and still serves good requests
            good = batcher.submit(session.sample_inputs[0][None])
            assert good.result(timeout=30).shape == (1, session.num_classes)
        assert pool.stats()[0]["errors"] == 1


class TestLifecycle:
    def test_workers_start_and_join(self, session):
        pool, _, _ = _drive(session, 4)
        assert pool.alive_workers == 0  # all joined after shutdown

    def test_shutdown_leaves_no_threads(self, session):
        before = set(threading.enumerate())
        _drive(session, 4)
        leaked = [
            t for t in set(threading.enumerate()) - before
            if t.name.startswith("serve-worker")
        ]
        assert leaked == []

    def test_double_start_rejected(self, session):
        batcher = MicroBatcher()
        pool = WorkerPool(session, batcher, num_workers=1)
        pool.start()
        try:
            with pytest.raises(RuntimeError):
                pool.start()
        finally:
            pool.shutdown()

    def test_per_worker_stats_cover_all_batches(self, session):
        pool, metrics, _ = _drive(session, 16, workers=2)
        stats = pool.stats()
        assert len(stats) == 2
        total_images = sum(s["images"] for s in stats)
        assert total_images == 16

    def test_zero_workers_rejected(self, session):
        with pytest.raises(ValueError):
            WorkerPool(session, MicroBatcher(), num_workers=0)
