"""ServeConfig validation: actionable errors, oversubscription warning."""

from __future__ import annotations

import io

import pytest

from repro.obs import log
from repro.serve.config import ServeConfig


@pytest.fixture(autouse=True)
def _reset_logging():
    log.reset()
    yield
    log.reset()


class TestValueErrors:
    """Every rejection names the field, the constraint, and the value."""

    @pytest.mark.parametrize(
        "kwargs,needle",
        [
            ({"max_batch_size": 0}, "max_batch_size"),
            ({"max_wait_ms": -1.0}, "max_wait_ms"),
            ({"workers": 0}, "workers"),
            ({"replicas": 0}, "replicas"),
            ({"gemm_threads": 0}, "gemm_threads"),
            ({"train_epochs": -1}, "train_epochs"),
            ({"calib_images": 0}, "calib_images"),
            ({"exec_path": "vectorized"}, "exec_path"),
        ],
    )
    def test_rejects_and_names_field_and_value(self, kwargs, needle):
        with pytest.raises(ValueError) as exc:
            ServeConfig(**kwargs)
        message = str(exc.value)
        assert needle in message
        # The offending value itself appears in the message.
        bad = repr(list(kwargs.values())[0])
        assert bad.strip("'") in message

    def test_replicas_error_explains_the_modes(self):
        with pytest.raises(ValueError, match="thread pool"):
            ServeConfig(replicas=-2)

    def test_valid_config_accepts_replicas(self):
        cfg = ServeConfig(replicas=4, port=0)
        assert cfg.replicas == 4

    def test_gemm_threads_none_is_valid(self):
        assert ServeConfig(gemm_threads=None).gemm_threads is None


class TestOversubscriptionWarning:
    def _build(self, **kwargs) -> str:
        stream = io.StringIO()
        log.configure(stream=stream)
        ServeConfig(port=0, **kwargs)
        return stream.getvalue()

    def test_warns_when_lanes_exceed_affinity(self):
        # 64 * 64 lanes exceeds any box this test will ever run on.
        out = self._build(replicas=64, gemm_threads=64)
        assert "compute_lanes_oversubscribed" in out
        assert "lanes=4096" in out

    def test_thread_path_uses_workers_for_lane_count(self):
        out = self._build(workers=64, gemm_threads=64)
        assert "compute_lanes_oversubscribed" in out

    def test_silent_when_gemm_threads_ambient(self):
        # gemm_threads=None is sized from the affinity mask downstream;
        # warning would be noise.
        out = self._build(replicas=64)
        assert "compute_lanes_oversubscribed" not in out

    def test_silent_when_within_budget(self):
        out = self._build(replicas=1, workers=1, gemm_threads=1)
        assert "compute_lanes_oversubscribed" not in out
