"""Session building, the (model, scheme, threshold) cache, engine cloning."""

import threading

import numpy as np
import pytest

from repro.serve.config import ServeConfig
from repro.serve.session import ModelSession, SessionKey, SessionManager


class TestSessionKey:
    def test_defaults_threshold_when_unset(self):
        key = SessionKey.from_config(ServeConfig(model="LeNet", threshold=None))
        assert key.model == "lenet"
        assert key.threshold > 0

    def test_distinct_thresholds_distinct_keys(self):
        a = SessionKey.from_config(ServeConfig(threshold=0.1))
        b = SessionKey.from_config(ServeConfig(threshold=0.2))
        assert a != b


class TestModelSession:
    def test_session_is_ready_to_infer(self, session):
        assert session.engine.calibrated
        assert session.engine.mode == "run"
        out = session.engine.infer(session.sample_inputs[:2])
        assert out.shape == (2, session.num_classes)

    def test_freeze_prepacked_every_quantized_layer(self, session):
        assert session.stats.packed_layers == len(session.engine.executors)
        # ODQ executors carry the pre-packed W_HBS bit plane after freeze.
        for ex in session.engine.executors.values():
            assert ex._qw_high is not None

    def test_describe_is_json_safe(self, session):
        import json

        desc = session.describe()
        json.dumps(desc)  # raises if not serializable
        assert desc["model"] == "lenet"
        assert desc["scheme"] == "odq"
        assert tuple(desc["input_shape"]) == session.input_shape

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            ModelSession(ServeConfig(dataset="imagenet"))


class TestEngineCloning:
    def test_clone_is_independent_but_equivalent(self, session):
        clone = session.clone_engine()
        assert clone is not session.engine
        assert clone.calibrated
        x = session.sample_inputs[:2]
        np.testing.assert_allclose(clone.infer(x), session.engine.infer(x))
        # records are confined: running the clone does not touch the original
        clone.reset_records()
        before = {n: r.images for n, r in session.engine.records.items()}
        clone.infer(x)
        after = {n: r.images for n, r in session.engine.records.items()}
        assert before == after

    def test_engines_for_workers_counts(self, session):
        engines = session.engines_for_workers(3)
        assert len(engines) == 3
        assert engines[0] is session.engine
        assert len({id(e) for e in engines}) == 3

    def test_engines_for_workers_rejects_zero(self, session):
        with pytest.raises(ValueError):
            session.engines_for_workers(0)


class TestSessionManager:
    def test_same_key_hits_cache(self, serve_config):
        mgr = SessionManager()
        a = mgr.get_or_create(serve_config)
        b = mgr.get_or_create(serve_config)
        assert a is b
        assert mgr.builds == 1 and mgr.hits == 1
        assert len(mgr) == 1

    def test_different_threshold_builds_new_session(self, serve_config):
        mgr = SessionManager()
        a = mgr.get_or_create(serve_config)
        from dataclasses import replace

        b = mgr.get_or_create(replace(serve_config, threshold=0.9))
        assert a is not b
        assert mgr.builds == 2
        assert len(mgr) == 2

    def test_concurrent_first_requests_build_once(self, serve_config):
        mgr = SessionManager()
        results = []
        barrier = threading.Barrier(4)

        def hit():
            barrier.wait()
            results.append(mgr.get_or_create(serve_config))

        threads = [threading.Thread(target=hit) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert mgr.builds == 1
        assert len({id(s) for s in results}) == 1

    def test_clear(self, serve_config):
        mgr = SessionManager()
        mgr.get_or_create(serve_config)
        mgr.clear()
        assert len(mgr) == 0
