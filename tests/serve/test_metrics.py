"""Metrics registry: counters, gauges, histogram percentiles, rendering."""

import threading

import pytest

from repro.serve.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_thread_safety(self):
        c = Counter("x")

        def spin():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestHistogram:
    def test_summary_of_known_stream(self):
        h = Histogram("lat")
        for v in range(1, 101):  # 1..100
            h.observe(v)
        s = h.summary()
        assert s["count"] == 100
        assert s["min"] == 1 and s["max"] == 100
        assert s["mean"] == pytest.approx(50.5)
        assert s["p50"] == pytest.approx(50.5)
        assert s["p95"] == pytest.approx(95.05)
        assert s["p99"] == pytest.approx(99.01)

    def test_empty_histogram_is_all_zero(self):
        s = Histogram("lat").summary()
        assert s["count"] == 0
        assert s["p50"] == 0.0 and s["max"] == 0.0

    def test_percentile_bounds(self):
        h = Histogram("lat")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_reservoir_bound(self):
        h = Histogram("lat", reservoir=16)
        for v in range(1000):
            h.observe(v)
        # exact count survives, reservoir holds only the freshest values
        assert h.count == 1000
        assert h.percentile(0) >= 1000 - 16


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        assert m.histogram("h") is m.histogram("h")
        assert m.gauge("g") is m.gauge("g")

    def test_as_dict_shape(self):
        m = MetricsRegistry()
        m.counter("reqs").inc(3)
        m.gauge("ratio").set(0.25)
        m.histogram("ms").observe(1.5)
        snap = m.as_dict()
        assert snap["counters"] == {"reqs": 3}
        assert snap["gauges"] == {"ratio": 0.25}
        assert snap["histograms"]["ms"]["count"] == 1

    def test_render_contains_every_metric(self):
        m = MetricsRegistry()
        m.counter("requests_total").inc(7)
        m.gauge("sensitive_ratio:C1").set(0.5)
        m.histogram("batch_size").observe(4)
        text = m.render()
        for needle in ("requests_total", "sensitive_ratio:C1", "batch_size", "p95"):
            assert needle in text

    def test_render_empty(self):
        assert "no metrics" in MetricsRegistry().render()
