"""Shared serving fixtures: one fast LeNet/ODQ session for the module.

Session builds skip training (``train_epochs=0``) — serving tests verify
plumbing (caching, batching, threading, HTTP), not accuracy, so
random-init weights keep the whole tree in seconds.
"""

from __future__ import annotations

import pytest

from repro.serve.config import ServeConfig
from repro.serve.session import ModelSession, SessionManager


@pytest.fixture(scope="session")
def serve_config() -> ServeConfig:
    return ServeConfig(
        model="lenet",
        scheme="odq",
        dataset="mnist",
        train_epochs=0,
        calib_images=32,
        max_batch_size=8,
        max_wait_ms=2.0,
        workers=2,
        port=0,
    )


@pytest.fixture(scope="session")
def session(serve_config) -> ModelSession:
    return ModelSession(serve_config)


@pytest.fixture(scope="session")
def manager(serve_config) -> SessionManager:
    mgr = SessionManager()
    mgr.get_or_create(serve_config)
    return mgr
