"""Graceful-shutdown semantics: 503 while draining, ordered teardown."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.serve.server import InferenceServer


@pytest.fixture(scope="module")
def server(manager, serve_config):
    srv = InferenceServer(serve_config, sessions=manager)
    srv.start()
    yield srv
    srv.shutdown()


def _status_and_body(url: str, payload: dict | None = None):
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode() if payload is not None else None,
        headers={"Content-Type": "application/json"} if payload else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestDraining:
    @pytest.fixture
    def draining(self, server):
        # Flip the same flag shutdown() flips first, without tearing the
        # pool down, so the refusal path is observable over real HTTP.
        server._draining = True
        yield server
        server._draining = False

    def test_predict_answers_503_before_touching_the_pool(self, draining):
        img = draining.session.sample_inputs[0].tolist()
        status, body = _status_and_body(
            draining.url + "/predict", {"input": img}
        )
        assert status == 503
        assert "draining" in body["error"]

    def test_healthz_reports_draining_with_503(self, draining):
        status, body = _status_and_body(draining.url + "/healthz")
        assert status == 503
        assert body["status"] == "draining"

    def test_serves_again_once_flag_clears(self, server):
        status, body = _status_and_body(server.url + "/healthz")
        assert status == 200
        assert body["status"] == "ok"


class TestShutdownOrdering:
    def test_shutdown_flags_draining_and_is_idempotent(
        self, manager, serve_config
    ):
        srv = InferenceServer(serve_config, sessions=manager)
        srv.start()
        assert srv.draining is False
        srv.shutdown()
        assert srv.draining is True
        # The socket is gone: a second shutdown must be a clean no-op.
        srv.shutdown()
        with pytest.raises(OSError):
            urllib.request.urlopen(srv.url + "/healthz", timeout=2)
