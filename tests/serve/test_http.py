"""HTTP integration: /healthz, /predict round-trip, /metrics, /stats, and
clean shutdown with no leaked threads — the serving acceptance criteria."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve.server import InferenceServer


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as resp:
        body = resp.read()
        ctype = resp.headers.get("Content-Type", "")
    return json.loads(body) if "json" in ctype else body.decode()


def _post(url: str, payload: dict):
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read())


@pytest.fixture(scope="module")
def server(manager, serve_config):
    srv = InferenceServer(serve_config, sessions=manager)
    srv.start()
    yield srv
    srv.shutdown()


class TestEndpoints:
    def test_healthz(self, server):
        health = _get(server.url + "/healthz")
        assert health["status"] == "ok"
        assert health["session"]["model"] == "lenet"
        assert health["session"]["scheme"] == "odq"
        assert health["workers_alive"] == server.config.workers

    def test_predict_single_image_round_trip(self, server):
        img = server.session.sample_inputs[0].tolist()
        resp = _post(server.url + "/predict", {"input": img})
        assert resp["batch"] == 1
        assert len(resp["predictions"]) == 1
        assert 0 <= resp["predictions"][0] < server.session.num_classes
        assert resp["latency_ms"] > 0

    def test_predict_multi_image_and_logits(self, server):
        imgs = server.session.sample_inputs[:3].tolist()
        resp = _post(server.url + "/predict", {"inputs": imgs, "return_logits": True})
        assert resp["batch"] == 3
        assert len(resp["predictions"]) == 3
        logits = np.asarray(resp["logits"])
        assert logits.shape == (3, server.session.num_classes)
        np.testing.assert_array_equal(logits.argmax(axis=1), resp["predictions"])

    def test_predict_matches_direct_engine(self, server):
        x = server.session.sample_inputs[:2]
        resp = _post(server.url + "/predict",
                     {"inputs": x.tolist(), "return_logits": True})
        expected = server.session.engine.infer(x)
        np.testing.assert_allclose(np.asarray(resp["logits"]), expected, rtol=1e-9)

    def test_metrics_exposes_required_series(self, server):
        # ensure at least one request flowed
        _post(server.url + "/predict",
              {"input": server.session.sample_inputs[0].tolist()})
        metrics = _get(server.url + "/metrics")
        assert metrics["counters"]["requests_total"] >= 1
        for hist in ("batch_size", "queue_wait_ms", "infer_ms", "e2e_ms"):
            summary = metrics["histograms"][hist]
            assert summary["count"] >= 1
            assert {"p50", "p95", "p99"} <= set(summary)
        sens = [k for k in metrics["gauges"] if k.startswith("sensitive_ratio:")]
        assert len(sens) == len(server.session.engine.executors)

    def test_stats_is_rendered_text(self, server):
        text = _get(server.url + "/stats")
        assert "requests_total" in text
        assert "worker" in text
        assert "session" in text


class TestErrors:
    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(server.url + "/nope")
        assert exc.value.code == 404

    def test_bad_json_400(self, server):
        req = urllib.request.Request(
            server.url + "/predict", data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 400

    def test_missing_inputs_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(server.url + "/predict", {"wrong": 1})
        assert exc.value.code == 400

    def test_wrong_shape_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(server.url + "/predict", {"input": [[0.0, 1.0], [2.0, 3.0]]})
        assert exc.value.code == 400
        detail = json.loads(exc.value.read())
        assert "shape" in detail["error"]


class TestLifecycle:
    def test_port_zero_binds_real_port(self, manager, serve_config):
        with InferenceServer(serve_config, sessions=manager) as srv:
            assert srv.port > 0
            assert _get(srv.url + "/healthz")["status"] == "ok"

    def test_clean_shutdown_no_leaked_threads(self, manager, serve_config):
        before = set(threading.enumerate())
        srv = InferenceServer(serve_config, sessions=manager)
        srv.start()
        _post(srv.url + "/predict",
              {"input": srv.session.sample_inputs[0].tolist()})
        srv.shutdown()
        srv.shutdown()  # idempotent
        leaked = [
            t for t in set(threading.enumerate()) - before
            if t.is_alive() and (
                t.name.startswith("serve-worker") or t.name == "serve-http"
            )
        ]
        assert leaked == []

    def test_shutdown_refuses_new_predicts(self, manager, serve_config):
        srv = InferenceServer(serve_config, sessions=manager)
        srv.start()
        url = srv.url
        srv.shutdown()
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            _post(url + "/predict",
                  {"input": srv.session.sample_inputs[0].tolist()})
