"""Result-generation dispatch census through the serving stack.

Three claims: the configured ``exec_path`` is honored end-to-end
(ServeConfig -> session -> engine executors), the worker pool aggregates
and publishes per-layer ``exec_*`` gauges to the metrics registry (and
thus /metrics, Prometheus and JSON alike), and the serving benchmark
carries both the census and per-worker busy fractions in its report.
"""

import pytest

from repro.obs.exporters import prometheus_text
from repro.serve.batcher import MicroBatcher
from repro.serve.bench import PathResult, ServeBenchResult, run_batched
from repro.serve.config import ServeConfig
from repro.serve.metrics import MetricsRegistry
from repro.serve.session import ModelSession
from repro.serve.worker import WorkerPool


def _forced_path_config(exec_path: str) -> ServeConfig:
    return ServeConfig(
        model="lenet",
        scheme="odq",
        dataset="mnist",
        train_epochs=0,
        calib_images=16,
        max_batch_size=4,
        max_wait_ms=1.0,
        workers=1,
        port=0,
        exec_path=exec_path,
    )


class TestExecPathHonored:
    @pytest.mark.parametrize("exec_path", ["dense", "sparse"])
    def test_forced_path_reaches_executors(self, exec_path):
        """ServeConfig.exec_path must land on every ODQ executor and the
        census must show only the forced path dispatched."""
        sess = ModelSession(_forced_path_config(exec_path))
        sess.engine.infer(sess.sample_inputs[:2])
        paths = set()
        for rec in sess.engine.records.values():
            extra = getattr(rec, "extra", None) or {}
            paths |= set(extra.get("exec_path_calls", {}))
        assert paths == {exec_path}


class TestCensusGauges:
    def _drive(self, session, n: int = 6):
        batcher = MicroBatcher(max_batch_size=4, max_wait_ms=1.0)
        metrics = MetricsRegistry()
        pool = WorkerPool(session, batcher, metrics=metrics, num_workers=2)
        session.engine.reset_records()
        with pool:
            futures = [
                batcher.submit(
                    session.sample_inputs[i % len(session.sample_inputs)][None]
                )
                for i in range(n)
            ]
            for f in futures:
                f.result(timeout=30)
            census = pool.exec_census()
        return metrics, census

    def test_pool_census_sums_rows(self, session):
        _, census = self._drive(session)
        assert census, "ODQ session must produce an exec census"
        for layer, c in census.items():
            assert c["rows_total"] > 0
            assert 0 < c["rows_computed"] <= c["rows_total"]
            assert c["path_calls"] and all(
                p in ("dense", "sparse") for p in c["path_calls"]
            )

    def test_gauges_published_per_layer(self, session):
        metrics, census = self._drive(session)
        gauges = metrics.as_dict()["gauges"]
        for layer, c in census.items():
            assert gauges[f"exec_rows_total:{layer}"] == c["rows_total"]
            assert gauges[f"exec_rows_computed:{layer}"] == c["rows_computed"]
            for path, calls in c["path_calls"].items():
                assert gauges[f"exec_path_calls_{path}:{layer}"] == calls

    def test_prometheus_export_labels_layers(self, session):
        metrics, census = self._drive(session)
        text = prometheus_text(metrics.as_dict())
        layer = next(iter(census))
        assert "repro_exec_rows_computed{" in text
        assert f'layer="{layer}"' in text


class TestBenchReport:
    def test_batched_path_collects_census_and_busy(self, session, serve_config):
        census: dict = {}
        res = run_batched(session, serve_config, requests=8, seed=0,
                          census_out=census)
        assert res.requests == 8
        assert census, "batched run must fill the census"
        assert res.worker_busy, "batched run must report worker busy stats"
        for w in res.worker_busy:
            assert 0.0 <= w["busy_fraction"]
            assert {"name", "batches", "images", "busy_seconds"} <= set(w)
        # Workers can't have been busy longer than wall-clock each.
        assert all(w["busy_seconds"] <= res.seconds * 1.05 + 0.1
                   for w in res.worker_busy)

    def test_render_and_dict_carry_new_sections(self, serve_config):
        result = ServeBenchResult(config=serve_config)
        result.paths["naive"] = PathResult("naive", 2, 4.0)
        result.paths["batched"] = PathResult(
            "batched", 8, 1.0,
            worker_busy=[{
                "name": "serve-worker-0", "batches": 3, "images": 8,
                "busy_seconds": 0.8, "busy_fraction": 0.8,
            }],
        )
        result.exec_census = {
            "C1": {"rows_total": 100, "rows_computed": 40,
                   "path_calls": {"sparse": 3}},
        }
        text = result.render()
        assert "worker utilisation" in text
        assert "dispatch census" in text
        assert "C1" in text and "sparse:3" in text
        d = result.as_dict()
        assert d["batched"]["worker_busy"][0]["busy_fraction"] == 0.8
        assert d["exec_census"]["C1"]["rows_computed"] == 40
        assert "worker_busy" not in d["naive"]
