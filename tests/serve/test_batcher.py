"""Micro-batcher: coalescing policy, future splitting, shutdown semantics."""

import threading
import time

import numpy as np
import pytest

from repro.serve.batcher import BatcherClosed, MicroBatcher

IMG = (1, 4, 4)  # tiny C,H,W for queue tests (no engine involved)


def _img(value: float = 0.0) -> np.ndarray:
    return np.full(IMG, value)


class TestSubmit:
    def test_single_image_is_promoted_to_batch(self):
        b = MicroBatcher()
        b.submit(_img())
        batch = b.next_batch(timeout=1)
        assert batch.size == 1
        assert batch.stack().shape == (1, *IMG)

    def test_bad_rank_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher().submit(np.zeros((4, 4)))

    def test_submit_after_shutdown_raises(self):
        b = MicroBatcher()
        b.shutdown()
        with pytest.raises(BatcherClosed):
            b.submit(_img())


class TestCoalescing:
    def test_coalesces_up_to_max_batch_size(self):
        b = MicroBatcher(max_batch_size=4, max_wait_ms=50)
        for i in range(6):
            b.submit(_img(i))
        first = b.next_batch(timeout=1)
        second = b.next_batch(timeout=1)
        assert first.size == 4
        assert second.size == 2
        # FIFO order preserved through the split
        np.testing.assert_array_equal(first.stack()[0], _img(0))
        np.testing.assert_array_equal(second.stack()[0], _img(4))

    def test_max_wait_dispatches_partial_batch(self):
        b = MicroBatcher(max_batch_size=64, max_wait_ms=10)
        b.submit(_img())
        t0 = time.perf_counter()
        batch = b.next_batch(timeout=1)
        elapsed = time.perf_counter() - t0
        assert batch.size == 1
        assert elapsed < 0.5  # waited ~max_wait_ms, not the full timeout

    def test_oversize_request_rides_alone(self):
        b = MicroBatcher(max_batch_size=2, max_wait_ms=1)
        b.submit(np.zeros((5, *IMG)))  # bigger than the cap
        batch = b.next_batch(timeout=1)
        assert batch.size == 5
        assert len(batch.requests) == 1

    def test_never_splits_a_request_across_batches(self):
        b = MicroBatcher(max_batch_size=4, max_wait_ms=1)
        b.submit(np.zeros((3, *IMG)))
        b.submit(np.zeros((3, *IMG)))
        first = b.next_batch(timeout=1)
        second = b.next_batch(timeout=1)
        assert first.size == 3 and second.size == 3

    def test_timeout_returns_none_when_idle(self):
        assert MicroBatcher().next_batch(timeout=0.01) is None


class TestCompletion:
    def test_results_split_back_per_request(self):
        b = MicroBatcher(max_batch_size=8, max_wait_ms=5)
        f1 = b.submit(np.zeros((2, *IMG)))
        f2 = b.submit(np.zeros((1, *IMG)))
        batch = b.next_batch(timeout=1)
        outputs = np.arange(3 * 10, dtype=float).reshape(3, 10)
        batch.complete(outputs)
        np.testing.assert_array_equal(f1.result(timeout=1), outputs[:2])
        np.testing.assert_array_equal(f2.result(timeout=1), outputs[2:])

    def test_row_mismatch_fails_futures(self):
        b = MicroBatcher()
        fut = b.submit(_img())
        batch = b.next_batch(timeout=1)
        batch.complete(np.zeros((3, 10)))
        with pytest.raises(ValueError):
            fut.result(timeout=1)

    def test_fail_propagates_to_all_futures(self):
        b = MicroBatcher(max_batch_size=8, max_wait_ms=5)
        futures = [b.submit(_img()) for _ in range(3)]
        batch = b.next_batch(timeout=1)
        batch.fail(RuntimeError("engine exploded"))
        for fut in futures:
            with pytest.raises(RuntimeError, match="exploded"):
                fut.result(timeout=1)

    def test_queue_waits_are_nonnegative(self):
        b = MicroBatcher(max_wait_ms=1)
        b.submit(_img())
        batch = b.next_batch(timeout=1)
        assert all(w >= 0 for w in batch.queue_waits())


class TestShutdown:
    def test_shutdown_fails_queued_requests(self):
        b = MicroBatcher()
        fut = b.submit(_img())
        b.shutdown()
        with pytest.raises(BatcherClosed):
            fut.result(timeout=1)

    def test_shutdown_wakes_blocked_consumer(self):
        b = MicroBatcher()
        out = {}

        def consume():
            out["batch"] = b.next_batch(timeout=5)

        t = threading.Thread(target=consume)
        t.start()
        time.sleep(0.05)
        b.shutdown()
        t.join(timeout=2)
        assert not t.is_alive()
        assert out["batch"] is None

    def test_shutdown_is_idempotent(self):
        b = MicroBatcher()
        b.shutdown()
        b.shutdown()
        assert b.closed


class TestTraceContexts:
    def test_contexts_ride_along_in_submit_order(self):
        from repro.obs.trace import TraceContext

        b = MicroBatcher(max_batch_size=8, max_wait_ms=1)
        c1 = TraceContext("a" * 16, 1, "main")
        c2 = TraceContext("b" * 16, 2, "main")
        b.submit(_img(), ctx=c1)
        b.submit(_img())          # untraced request in the middle
        b.submit(_img(), ctx=c2)
        batch = b.next_batch(timeout=1)
        assert batch.size == 3
        # Distinct contexts in submit order; None never listed.
        assert batch.trace_contexts() == [c1, c2]

    def test_duplicate_context_listed_once(self):
        from repro.obs.trace import TraceContext

        b = MicroBatcher(max_batch_size=8, max_wait_ms=1)
        ctx = TraceContext("c" * 16, 3, "main")
        b.submit(_img(), ctx=ctx)
        b.submit(_img(), ctx=ctx)
        batch = b.next_batch(timeout=1)
        assert batch.trace_contexts() == [ctx]

    def test_no_contexts_gives_empty_list(self):
        b = MicroBatcher(max_batch_size=2, max_wait_ms=1)
        b.submit(_img())
        assert b.next_batch(timeout=1).trace_contexts() == []
