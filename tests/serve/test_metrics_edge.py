"""Histogram edge-case regressions and Prometheus rendering via the registry.

The Histogram implementation moved to ``repro.obs.hist``; serve re-exports
it. These tests pin the edge behaviour the move fixed: empty and
single-sample reservoirs must return finite numbers (no IndexError, no
NaN), NaN observations must not poison percentiles, and a zero-size
reservoir must stay harmless.
"""

from __future__ import annotations

import math

import pytest

from repro.obs import hist as obs_hist
from repro.serve.metrics import Histogram, MetricsRegistry


class TestHistogramIsShared:
    def test_serve_reuses_obs_histogram(self):
        # Satellite requirement: one implementation, re-exported — not a copy.
        assert Histogram is obs_hist.Histogram

    def test_default_reservoir_exported(self):
        assert obs_hist.DEFAULT_RESERVOIR > 0


class TestPercentileEdges:
    def test_empty_histogram_percentile_is_zero_not_nan(self):
        h = Histogram("lat")
        for p in (0, 50, 95, 99, 100):
            value = h.percentile(p)
            assert value == 0.0
            assert not math.isnan(value)

    def test_single_sample_returns_that_sample_for_all_p(self):
        h = Histogram("lat")
        h.observe(7.5)
        for p in (0, 1, 50, 99, 100):
            assert h.percentile(p) == 7.5

    def test_p0_and_p100_are_min_and_max(self):
        h = Histogram("lat")
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 3.0

    def test_out_of_range_p_raises(self):
        h = Histogram("lat")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(-0.1)
        with pytest.raises(ValueError):
            h.percentile(100.1)


class TestNanHandling:
    def test_nan_observations_are_dropped(self):
        h = Histogram("lat")
        h.observe(1.0)
        h.observe(float("nan"))
        h.observe(3.0)
        assert h.dropped_nan == 1
        for p in (0, 50, 100):
            assert not math.isnan(h.percentile(p))
        assert h.percentile(100) == 3.0

    def test_all_nan_stream_summarizes_as_empty(self):
        h = Histogram("lat")
        h.observe(float("nan"))
        h.observe(float("nan"))
        s = h.summary()
        assert s["count"] == 0
        assert s["p50"] == 0.0
        assert not any(math.isnan(v) for v in s.values())


class TestDegenerateReservoir:
    def test_zero_reservoir_never_raises(self):
        h = Histogram("lat", reservoir=0)
        h.observe(1.0)
        h.observe(2.0)
        assert h.percentile(50) == 0.0  # nothing retained, still finite

    def test_summary_keys_stable_when_empty(self):
        s = Histogram("lat", reservoir=0).summary()
        assert {"count", "sum", "mean", "min", "max", "p50", "p95",
                "p99"} <= set(s)


class TestRegistryPrometheus:
    def test_prometheus_render_from_registry(self):
        m = MetricsRegistry()
        m.counter("requests_total").inc(5)
        m.gauge("sensitive_ratio:C1:conv").set(0.125)
        m.histogram("e2e_ms").observe(2.0)
        text = m.prometheus()
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 5" in text
        assert 'repro_sensitive_ratio{layer="C1:conv"} 0.125' in text
        assert "repro_e2e_ms_count 1" in text

    def test_prometheus_namespace_override(self):
        m = MetricsRegistry()
        m.counter("hits").inc()
        assert "odq_hits_total 1" in m.prometheus(namespace="odq")
