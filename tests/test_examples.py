"""Examples must at least parse, import, and expose a main()."""

import ast
import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(pathlib.Path(__file__).parent.parent.glob("examples/*.py"))


def test_at_least_three_examples_exist():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in names, f"{path.name} lacks a main()"
    # Guarded entry point so importing never trains anything.
    assert "__main__" in path.read_text()


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_cleanly(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(module.main)
