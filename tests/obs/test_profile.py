"""Profiler rollup tests: spans + engine records → per-layer phase report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import QuantizedInferenceEngine
from repro.core.schemes import odq_scheme
from repro.models.registry import build_model
from repro.obs.profile import PHASES, ProfileReport, profile_inference
from repro.obs.trace import Tracer


def _traced_engine_run(images: int = 2):
    """Calibrate a tiny LeNet/ODQ engine and trace one infer batch."""
    rng = np.random.default_rng(0)
    model = build_model("lenet", num_classes=10, rng=rng, in_channels=1,
                        image_size=16)
    engine = QuantizedInferenceEngine(model, odq_scheme(threshold=0.3))
    x = rng.normal(0, 1, size=(images, 1, 16, 16))
    engine.calibrate(np.abs(x))
    from repro.obs import trace as trace_mod

    tracer = trace_mod.get_tracer()
    with tracer.collect(reset=True):
        engine.infer(np.abs(x))
        spans = tracer.spans()
    return engine, spans


class TestFromEngineSpans:
    @pytest.fixture(scope="class")
    def engine_spans(self):
        return _traced_engine_run()

    def test_all_phases_timed_per_layer(self, engine_spans):
        engine, spans = engine_spans
        report = ProfileReport.from_spans(spans, engine.records)
        assert set(report.layers) == set(engine.records)
        for layer in report.layers.values():
            assert set(layer.phases) == set(PHASES)
            for stat in layer.phases.values():
                assert stat.calls == 1
                assert stat.total_us > 0

    def test_mac_census_matches_engine_records(self, engine_spans):
        engine, spans = engine_spans
        report = ProfileReport.from_spans(spans, engine.records)
        for name, rec in engine.records.items():
            layer = report.layers[name]
            assert layer.macs_pred == rec.macs["pred_int2"]
            assert layer.macs_exec == rec.macs["exec_int4"]
            insens = rec.outputs_total - rec.sensitive_total
            assert layer.macs_skipped == insens * rec.info.macs_per_output
            assert layer.sensitive_ratio == pytest.approx(rec.sensitive_fraction)

    def test_render_mentions_phases_and_macs(self, engine_spans):
        engine, spans = engine_spans
        text = ProfileReport.from_spans(spans, engine.records).render()
        assert "predict_partial" in text
        assert "full_result" in text
        assert "MACs skipped" in text
        assert "phase split" in text

    def test_flame_render_contains_engine_tree(self, engine_spans):
        _, spans = engine_spans
        text = ProfileReport.from_spans(spans).render_flame()
        assert "engine.infer" in text
        assert "odq.run" in text


class TestSyntheticSpans:
    def test_counters_without_records(self):
        tracer = Tracer(enabled=True)
        with tracer.span("odq.run", layer="L1") as sp:
            with tracer.span("odq.predict_partial", layer="L1"):
                pass
            sp.add("outputs", 10)
            sp.add("sensitive", 4)
            sp.add("macs_pred", 90)
            sp.add("macs_exec", 36)
            sp.add("macs_skipped", 54)
        report = ProfileReport.from_spans(tracer.spans())
        layer = report.layers["L1"]
        assert layer.macs_pred == 90
        assert layer.sensitive_ratio == pytest.approx(0.4)
        assert layer.skip_ratio == pytest.approx(54 / 90)
        assert "predict_partial" in layer.phases

    def test_unrelated_spans_ignored(self):
        tracer = Tracer(enabled=True)
        with tracer.span("engine.infer", batch=1):
            with tracer.span("accel.layer", layer="L1"):
                pass
        report = ProfileReport.from_spans(tracer.spans())
        assert report.layers == {}

    def test_empty_report_renders_placeholder(self):
        assert "no layer phases" in ProfileReport.from_spans([]).render()


class TestProfileInference:
    def test_end_to_end_driver(self):
        result = profile_inference("lenet", "odq", images=2, batches=2,
                                   calib_images=8)
        assert result.batches == 2
        assert result.images == 2
        assert result.report.layers  # per-layer rows present
        assert result.infer_seconds > 0
        text = result.render()
        assert "model=lenet" in text
        assert "predict_partial" in text
        # Driver restores the tracer's disabled state.
        from repro.obs import trace as trace_mod

        assert not trace_mod.enabled()
