"""Exporter golden-shape tests: JSONL, Chrome trace-event, Prometheus."""

from __future__ import annotations

import json

import pytest

from repro.obs import exporters
from repro.obs.trace import Tracer


@pytest.fixture()
def spans():
    tracer = Tracer(enabled=True)
    with tracer.span("engine.infer", batch=4) as root:
        root.add("images", 4)
        with tracer.span("engine.layer", layer="C1:conv") as sp:
            sp.add("macs_pred", 100)
    return tracer.spans()


class TestJsonl:
    def test_one_parsable_object_per_line(self, spans):
        text = exporters.spans_to_jsonl(spans)
        lines = text.strip().split("\n")
        assert len(lines) == len(spans)
        rows = [json.loads(line) for line in lines]
        assert {r["name"] for r in rows} == {"engine.infer", "engine.layer"}
        layer = next(r for r in rows if r["name"] == "engine.layer")
        assert layer["attrs"] == {"layer": "C1:conv"}
        assert layer["counters"] == {"macs_pred": 100}

    def test_empty_spans_give_empty_text(self):
        assert exporters.spans_to_jsonl([]) == ""

    def test_write_jsonl_roundtrip(self, spans, tmp_path):
        path = exporters.write_jsonl(spans, tmp_path / "t.jsonl")
        lines = path.read_text().strip().split("\n")
        assert len(lines) == len(spans)
        json.loads(lines[0])


class TestChromeTrace:
    def test_structure_loads_in_chrome_tracing(self, spans):
        doc = exporters.chrome_trace(spans)
        assert "traceEvents" in doc
        assert doc["displayTimeUnit"] == "ms"
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(spans)
        for e in complete:
            # Microsecond ts/dur, pid/tid present — the chrome://tracing schema.
            assert set(e) >= {"name", "ph", "ts", "dur", "pid", "tid", "args"}
            assert e["dur"] >= 0

    def test_thread_name_metadata_present(self, spans):
        doc = exporters.chrome_trace(spans, process_name="proc")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert "process_name" in names
        assert "thread_name" in names

    def test_args_carry_attrs_and_counters(self, spans):
        doc = exporters.chrome_trace(spans)
        layer = next(e for e in doc["traceEvents"] if e["name"] == "engine.layer")
        assert layer["args"]["layer"] == "C1:conv"
        assert layer["args"]["macs_pred"] == 100

    def test_write_chrome_trace_is_valid_json(self, spans, tmp_path):
        path = exporters.write_chrome_trace(spans, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestPrometheus:
    SNAPSHOT = {
        "counters": {"requests_total": 42, "errors_total": 0},
        "gauges": {"sensitive_ratio:C1:features.0": 0.25},
        "histograms": {
            "e2e_ms": {"count": 3, "sum": 6.0, "mean": 2.0, "min": 1.0,
                       "max": 3.0, "p50": 2.0, "p95": 2.9, "p99": 2.99},
        },
    }

    def test_counter_lines(self):
        text = exporters.prometheus_text(self.SNAPSHOT)
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 42" in text
        assert "repro_errors_total 0" in text

    def test_gauge_with_layer_label(self):
        text = exporters.prometheus_text(self.SNAPSHOT)
        assert '# TYPE repro_sensitive_ratio gauge' in text
        assert 'repro_sensitive_ratio{layer="C1:features.0"} 0.25' in text

    def test_histogram_renders_as_summary(self):
        text = exporters.prometheus_text(self.SNAPSHOT)
        assert "# TYPE repro_e2e_ms summary" in text
        assert 'repro_e2e_ms{quantile="0.5"} 2' in text
        assert 'repro_e2e_ms{quantile="0.99"} 2.99' in text
        assert "repro_e2e_ms_sum 6" in text
        assert "repro_e2e_ms_count 3" in text

    def test_every_line_is_exposition_shaped(self):
        for line in exporters.prometheus_text(self.SNAPSHOT).strip().split("\n"):
            assert line.startswith("#") or " " in line
            if not line.startswith("#"):
                name = line.split("{")[0].split(" ")[0]
                assert name.replace("_", "").isalnum()

    def test_accepts_registry_duck_type(self):
        class Reg:
            def as_dict(self):
                return TestPrometheus.SNAPSHOT

        assert "repro_requests_total 42" in exporters.prometheus_text(Reg())

    def test_empty_snapshot_is_empty(self):
        assert exporters.prometheus_text(
            {"counters": {}, "gauges": {}, "histograms": {}}
        ) == ""


class TestAsciiRollup:
    def test_rollup_shows_tree_and_totals(self, spans):
        text = exporters.ascii_rollup(spans)
        assert "engine.infer" in text
        assert "engine.layer" in text
        assert "total ms" in text

    def test_empty_rollup(self):
        assert "no spans" in exporters.ascii_rollup([])


class TestPrometheusHelp:
    SNAPSHOT = {
        "counters": {"requests_total": 42},
        "gauges": {"sensitive_ratio:C1": 0.25, "sensitive_ratio:C2": 0.5},
        "histograms": {},
    }
    HELP = {
        "requests_total": "Requests accepted by the server",
        "sensitive_ratio": "Live per-layer sensitive-output density",
    }

    def test_help_line_immediately_precedes_type(self):
        lines = exporters.prometheus_text(
            self.SNAPSHOT, help_texts=self.HELP
        ).strip().split("\n")
        i = lines.index(
            "# HELP repro_requests_total Requests accepted by the server"
        )
        assert lines[i + 1] == "# TYPE repro_requests_total counter"

    def test_no_help_means_no_help_line(self):
        text = exporters.prometheus_text(self.SNAPSHOT)
        assert "# HELP" not in text
        assert "# TYPE repro_requests_total counter" in text

    def test_labeled_family_helped_once(self):
        # Two series of one family: exactly one HELP + one TYPE.
        text = exporters.prometheus_text(self.SNAPSHOT, help_texts=self.HELP)
        assert text.count("# HELP repro_sensitive_ratio") == 1
        assert text.count("# TYPE repro_sensitive_ratio") == 1

    def test_raw_registry_name_key_also_resolves(self):
        # Help keyed by the labeled registry name, not the base family.
        text = exporters.prometheus_text(
            self.SNAPSHOT, help_texts={"sensitive_ratio:C1": "per layer"}
        )
        assert "# HELP repro_sensitive_ratio per layer" in text

    def test_help_escaping(self):
        text = exporters.prometheus_text(
            {"counters": {"x_total": 1}, "gauges": {}, "histograms": {}},
            help_texts={"x_total": "line one\nand \\ two"},
        )
        assert "# HELP repro_x_total line one\\nand \\\\ two" in text

    def test_registry_help_flows_through_automatically(self):
        from repro.serve.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("requests_total", "Requests accepted").inc(3)
        reg.gauge("queue_depth", "Requests waiting").set(1.0)
        text = exporters.prometheus_text(reg)
        assert "# HELP repro_requests_total Requests accepted" in text
        assert "# HELP repro_queue_depth Requests waiting" in text

    def test_exposition_grammar_promtool_style(self):
        # Every line must be a comment or a `name[{labels}] value` sample,
        # each family TYPEd exactly once, every HELP directly above the
        # TYPE of the same family — the checks `promtool check metrics`
        # would make, without the binary.
        import re

        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
            r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
            r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
            r" -?[0-9.eE+-]+$"
        )
        comment = re.compile(
            r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$"
        )
        snapshot = dict(self.SNAPSHOT)
        snapshot["histograms"] = {
            "e2e_ms": {"count": 3, "sum": 6.0, "p50": 2.0, "p95": 2.9,
                       "p99": 2.99},
        }
        lines = exporters.prometheus_text(
            snapshot, help_texts=self.HELP
        ).strip().split("\n")
        typed = []
        for i, line in enumerate(lines):
            if line.startswith("# TYPE"):
                name = line.split()[2]
                assert name not in typed, f"family {name} TYPEd twice"
                typed.append(name)
            elif line.startswith("# HELP"):
                name = line.split()[2]
                assert lines[i + 1].startswith(f"# TYPE {name} "), (
                    "HELP not directly above its TYPE"
                )
            else:
                assert sample.match(line), f"bad sample line: {line!r}"
            assert comment.match(line) or sample.match(line)
