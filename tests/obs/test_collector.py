"""TelemetryCollector unit tests: ingest, clock alignment, orphan
detection, trace trees, spool, and the merged Chrome export."""

from __future__ import annotations

import json

import pytest

from repro.obs import trace
from repro.obs.collector import TelemetryCollector, orphan_spans, trace_trees
from repro.serve.metrics import MetricsRegistry


def span_row(name, span_id, parent_id=None, proc="main", start_us=0.0,
             dur=5.0, attrs=None, **extra):
    """A merged-timeline span record (the shape ``SpanRecord.as_dict``
    produces, plus the collector's ``proc``/``ts_us`` tags)."""
    row = {
        "name": name,
        "start_us": start_us,
        "duration_us": dur,
        "span_id": span_id,
        "parent_id": parent_id,
        "depth": 0,
        "thread_id": 1,
        "thread_name": "t",
        "attrs": attrs or {},
        "counters": {},
        "proc": proc,
        "ts_us": start_us,
    }
    row.update(extra)
    return row


class TestOrphanSpans:
    def test_empty_is_clean(self):
        assert orphan_spans([]) == []

    def test_trace_root_is_not_an_orphan(self):
        rows = [span_row("r", 1, attrs={"trace_id": "t", "trace_root": True})]
        assert orphan_spans(rows) == []

    def test_local_parent_resolves(self):
        rows = [
            span_row("r", 1, attrs={"trace_id": "t", "trace_root": True}),
            span_row("c", 2, parent_id=1, attrs={"trace_id": "t"}),
        ]
        assert orphan_spans(rows) == []

    def test_missing_local_parent_is_orphan(self):
        rows = [span_row("c", 2, parent_id=99)]
        assert [r["name"] for r in orphan_spans(rows)] == ["c"]

    def test_parent_ref_resolves_across_lanes(self):
        rows = [
            span_row("dispatch", 7, proc="main",
                     attrs={"trace_id": "t", "trace_root": True}),
            span_row("chunk", 1, proc="replica-0",
                     attrs={"trace_id": "t", "parent_ref": "main:7"}),
        ]
        assert orphan_spans(rows) == []

    def test_unresolvable_parent_ref_is_orphan(self):
        rows = [span_row("chunk", 1, proc="replica-0",
                         attrs={"trace_id": "t", "parent_ref": "main:99"})]
        assert len(orphan_spans(rows)) == 1

    def test_malformed_parent_ref_is_orphan(self):
        rows = [span_row("chunk", 1, proc="replica-0",
                         attrs={"trace_id": "t", "parent_ref": "nonsense"})]
        assert len(orphan_spans(rows)) == 1

    def test_traced_span_with_no_parent_at_all_is_orphan(self):
        rows = [span_row("lost", 3, attrs={"trace_id": "t"})]
        assert len(orphan_spans(rows)) == 1

    def test_untraced_background_root_is_fine(self):
        # Spans outside any request trace (build, maintenance) are not
        # orphans — they never claimed membership in a trace tree.
        rows = [span_row("session_build", 4)]
        assert orphan_spans(rows) == []


class TestTraceTrees:
    def test_groups_by_trace_id_and_finds_roots(self):
        rows = [
            span_row("r1", 1, attrs={"trace_id": "a", "trace_root": True}),
            span_row("c1", 2, parent_id=1, attrs={"trace_id": "a"}),
            span_row("r2", 3, attrs={"trace_id": "b", "trace_root": True}),
            span_row("plain", 4),  # no trace id → in no tree
        ]
        trees = trace_trees(rows)
        assert set(trees) == {"a", "b"}
        assert len(trees["a"]["roots"]) == 1
        assert len(trees["a"]["spans"]) == 2
        assert len(trees["b"]["spans"]) == 1


def payload(lane="replica-0", epoch_wall=100.0, spans=(), logs=(), samples=None):
    return {
        "lane": lane,
        "pid": 4242,
        "epoch_wall": epoch_wall,
        "spans": list(spans),
        "logs": list(logs),
        "samples": samples or {},
    }


def raw_span(name="replica.chunk", span_id=1, start_us=50.0, attrs=None):
    """A span dict as the replica ships it (no proc/ts_us tags yet)."""
    row = span_row(name, span_id, start_us=start_us, attrs=attrs)
    row.pop("proc")
    row.pop("ts_us")
    return row


class TestIngest:
    def test_clock_rebased_to_absolute_wall_us(self):
        col = TelemetryCollector()
        col.ingest("replica-0", payload(epoch_wall=100.0,
                                        spans=[raw_span(start_us=50.0)]))
        (rec,) = col.merged(include_local=False)
        assert rec["ts_us"] == pytest.approx(100.0 * 1e6 + 50.0)
        assert rec["proc"] == "replica-0"

    def test_lane_from_payload_wins_over_argument(self):
        col = TelemetryCollector()
        col.ingest("whatever", payload(lane="replica-3", spans=[raw_span()]))
        assert col.lanes(include_local=False) == ["replica-3"]

    def test_merged_is_time_sorted_across_lanes(self):
        col = TelemetryCollector()
        col.ingest("replica-1", payload(lane="replica-1", epoch_wall=200.0,
                                        spans=[raw_span(span_id=2)]))
        col.ingest("replica-0", payload(lane="replica-0", epoch_wall=100.0,
                                        spans=[raw_span(span_id=1)]))
        merged = col.merged(include_local=False)
        assert [r["proc"] for r in merged] == ["replica-0", "replica-1"]

    def test_batch_and_span_counters_per_lane(self):
        metrics = MetricsRegistry()
        col = TelemetryCollector(metrics=metrics)
        col.ingest("replica-0", payload(spans=[raw_span(), raw_span(span_id=2)]))
        counters = metrics.as_dict()["counters"]
        assert counters["telemetry_batches_total@lane=replica-0"] == 1
        assert counters["telemetry_spans_total@lane=replica-0"] == 2

    def test_samples_feed_the_drift_monitor(self):
        seen = []

        class FakeDrift:
            def observe(self, samples):
                seen.append(samples)

        col = TelemetryCollector(drift=FakeDrift())
        col.ingest("replica-0", payload(
            samples={"C1": {"sensitive_ratio": 0.4}}
        ))
        assert seen == [{"C1": {"sensitive_ratio": 0.4}}]

    def test_log_records_kept_with_lane(self):
        col = TelemetryCollector()
        col.ingest("replica-0", payload(
            logs=[{"level": "info", "event": "replica_up"}]
        ))
        (log,) = col.log_records()
        assert log["proc"] == "replica-0"
        assert log["event"] == "replica_up"


class TestSpool:
    def test_every_ingested_record_becomes_a_jsonl_line(self, tmp_path):
        spool = tmp_path / "spool.jsonl"
        col = TelemetryCollector(spool_path=spool)
        col.ingest("replica-0", payload(
            spans=[raw_span()],
            logs=[{"level": "info", "event": "replica_up"}],
        ))
        col.close()
        lines = [json.loads(l) for l in spool.read_text().splitlines()]
        assert [l["kind"] for l in lines] == ["span", "log"]
        assert lines[0]["proc"] == "replica-0"
        assert lines[0]["ts_us"] > 0

    def test_no_spool_path_writes_nothing(self, tmp_path):
        col = TelemetryCollector()
        col.ingest("replica-0", payload(spans=[raw_span()]))
        col.close()  # must not raise
        assert list(tmp_path.iterdir()) == []


class TestLocalMerge:
    def test_local_tracer_spans_join_the_timeline(self):
        col = TelemetryCollector()
        with trace.get_tracer().collect():
            with trace.span("local.work"):
                pass
            col.ingest("replica-0", payload(spans=[raw_span()]))
            merged = col.merged(include_local=True)
        names = {r["name"] for r in merged}
        assert {"local.work", "replica.chunk"} <= names
        local = next(r for r in merged if r["name"] == "local.work")
        assert local["proc"] == trace.process_lane()

    def test_local_snapshot_is_non_destructive(self):
        col = TelemetryCollector()
        with trace.get_tracer().collect():
            with trace.span("keep.me"):
                pass
            col.merged(include_local=True)
            # The CLI trace epilogue must still see the span afterwards.
            assert [s.name for s in trace.spans()] == ["keep.me"]


class TestChromeExport:
    def _collector(self):
        # Exports always include the local tracer's spans; drop any left
        # over from other tests so the timeline is exactly the two
        # ingested replica spans.
        trace.reset()
        col = TelemetryCollector()
        col.ingest("replica-0", payload(lane="replica-0", epoch_wall=100.0,
                                        spans=[raw_span(span_id=1)]))
        col.ingest("replica-1", payload(lane="replica-1", epoch_wall=100.0,
                                        spans=[raw_span(span_id=2,
                                                        start_us=75.0)]))
        return col

    def test_one_pid_per_lane_with_names(self):
        doc = self._collector().chrome_trace()
        procs = {
            ev["args"]["name"]: ev["pid"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert "replica-0" in procs and "replica-1" in procs
        assert procs["replica-0"] != procs["replica-1"]

    def test_timestamps_normalized_to_zero(self):
        doc = self._collector().chrome_trace()
        xs = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert min(ev["ts"] for ev in xs) == 0.0
        assert max(ev["ts"] for ev in xs) == pytest.approx(25.0)

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = self._collector().write_chrome_trace(tmp_path / "t.json")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"

    def test_write_jsonl_has_kind_tags(self, tmp_path):
        path = self._collector().write_jsonl(tmp_path / "t.jsonl")
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert all(l["kind"] == "span" for l in lines)
        assert len(lines) == 2
