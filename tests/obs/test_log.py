"""Structured logging: levels, JSON lines, console routing."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import log


@pytest.fixture(autouse=True)
def _reset_logging():
    log.reset()
    yield
    log.reset()


def _capture():
    stream = io.StringIO()
    log.configure(stream=stream)
    return stream


class TestLevels:
    def test_info_is_default_threshold(self):
        stream = _capture()
        logger = log.get_logger("t")
        logger.debug("hidden")
        logger.info("shown")
        out = stream.getvalue()
        assert "hidden" not in out
        assert "shown" in out

    def test_debug_level_lets_debug_through(self):
        stream = _capture()
        log.configure(level="debug")
        log.get_logger("t").debug("now_visible")
        assert "now_visible" in stream.getvalue()

    def test_error_level_suppresses_warning(self):
        stream = _capture()
        log.configure(level="error")
        logger = log.get_logger("t")
        logger.warning("quiet")
        logger.error("loud")
        out = stream.getvalue()
        assert "quiet" not in out
        assert "loud" in out

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            log.configure(level="loudest")


class TestFormats:
    def test_human_format_contains_fields(self):
        stream = _capture()
        log.get_logger("repro.test").info("batch_done", batch=8, ms=12.5)
        line = stream.getvalue().strip()
        assert "INFO" in line
        assert "repro.test" in line
        assert "batch_done" in line
        assert "batch=8" in line
        assert "ms=12.5" in line

    def test_json_lines_parse_with_fields(self):
        stream = _capture()
        log.configure(json_mode=True)
        log.get_logger("repro.test").warning("slow", latency_ms=99.0)
        record = json.loads(stream.getvalue().strip())
        assert record["level"] == "warning"
        assert record["logger"] == "repro.test"
        assert record["event"] == "slow"
        assert record["latency_ms"] == 99.0
        assert "ts" in record

    def test_non_serializable_fields_stringified(self):
        stream = _capture()
        log.configure(json_mode=True)
        log.get_logger("t").info("x", obj=object())
        record = json.loads(stream.getvalue().strip())
        assert isinstance(record["obj"], str)


class TestRegistry:
    def test_get_logger_is_cached(self):
        assert log.get_logger("a") is log.get_logger("a")
        assert log.get_logger("a") is not log.get_logger("b")


class TestConsole:
    def test_console_plain_in_human_mode(self):
        out = io.StringIO()
        log.configure(console_stream=out)
        log.console("| table | row |")
        assert out.getvalue() == "| table | row |\n"

    def test_console_json_record_in_json_mode(self):
        out = io.StringIO()
        log.configure(json_mode=True, console_stream=out)
        log.console("hello", "world")
        record = json.loads(out.getvalue().strip())
        assert record["event"] == "console"
        assert record["text"] == "hello world"

    def test_console_err_goes_to_diagnostic_stream(self):
        out, err = io.StringIO(), io.StringIO()
        log.configure(stream=err, console_stream=out)
        log.console("oops", err=True)
        assert out.getvalue() == ""
        assert "oops" in err.getvalue()
