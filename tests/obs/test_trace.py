"""Span tracer unit tests: nesting, thread-locality, disabled fast path."""

from __future__ import annotations

import threading

import pytest

from repro.obs import trace
from repro.obs.trace import NOOP_SPAN, Tracer


@pytest.fixture()
def tracer() -> Tracer:
    return Tracer(enabled=True)


class TestNesting:
    def test_parent_child_ids_and_depth(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grand"):
                    pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["root"].parent_id is None
        assert spans["root"].depth == 0
        assert spans["child"].parent_id == spans["root"].span_id
        assert spans["child"].depth == 1
        assert spans["grand"].parent_id == spans["child"].span_id
        assert spans["grand"].depth == 2
        assert root.span_id != child.span_id

    def test_completion_order_is_child_first(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]

    def test_durations_nested_within_parent(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()
        assert inner.duration_us <= outer.duration_us
        assert inner.start_us >= outer.start_us
        assert inner.end_us <= outer.end_us + 1.0  # float-rounding slack

    def test_sibling_spans_share_parent(self, tracer):
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["a"].parent_id == spans["root"].span_id
        assert spans["b"].parent_id == spans["root"].span_id

    def test_exception_is_annotated_and_propagates(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (span,) = tracer.spans()
        assert span.attrs["error"] == "RuntimeError"


class TestAttrsAndCounters:
    def test_attrs_and_counters_recorded(self, tracer):
        with tracer.span("work", layer="C1") as sp:
            sp.add("macs", 100)
            sp.add("macs", 50)
            sp.set(batch=4)
        (span,) = tracer.spans()
        assert span.attrs == {"layer": "C1", "batch": 4}
        assert span.counters == {"macs": 150}

    def test_decorator_records_qualname(self, tracer):
        @tracer.traced()
        def compute():
            return 42

        assert compute() == 42
        (span,) = tracer.spans()
        assert "compute" in span.name

    def test_decorator_with_explicit_name(self, tracer):
        @tracer.traced("custom.name", kind="test")
        def f():
            return 1

        f()
        (span,) = tracer.spans()
        assert span.name == "custom.name"
        assert span.attrs == {"kind": "test"}


class TestThreadLocality:
    def test_threads_get_independent_stacks(self, tracer):
        barrier = threading.Barrier(2)

        def worker(tag: str):
            with tracer.span(f"root-{tag}"):
                barrier.wait(timeout=5)  # both roots open simultaneously
                with tracer.span(f"child-{tag}"):
                    pass

        threads = [threading.Thread(target=worker, args=(t,)) for t in "ab"]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = {s.name: s for s in tracer.spans()}
        assert len(spans) == 4
        # Each child's parent is its own thread's root, never the other's.
        assert spans["child-a"].parent_id == spans["root-a"].span_id
        assert spans["child-b"].parent_id == spans["root-b"].span_id
        assert spans["child-a"].thread_id != spans["child-b"].thread_id


class TestDisabledFastPath:
    def test_disabled_returns_shared_noop_singleton(self):
        tracer = Tracer(enabled=False)
        s1 = tracer.span("a", layer="x")
        s2 = tracer.span("b")
        assert s1 is NOOP_SPAN and s2 is NOOP_SPAN

    def test_noop_span_accepts_full_api(self):
        tracer = Tracer(enabled=False)
        with tracer.span("a") as sp:
            sp.add("macs", 1)
            sp.set(layer="x")
        assert len(tracer) == 0

    def test_module_level_disabled_is_noop(self):
        trace.disable()
        assert trace.span("x") is NOOP_SPAN
        assert not trace.enabled()

    def test_decorator_disabled_calls_through(self):
        tracer = Tracer(enabled=False)

        @tracer.traced("x")
        def f():
            return "ok"

        assert f() == "ok"
        assert len(tracer) == 0


class TestLifecycle:
    def test_collect_restores_previous_state(self):
        tracer = Tracer(enabled=False)
        with tracer.collect() as t:
            assert t.enabled
            with t.span("inside"):
                pass
        assert not tracer.enabled
        assert [s.name for s in tracer.spans()] == ["inside"]

    def test_collect_resets_prior_spans(self, tracer):
        with tracer.span("old"):
            pass
        with tracer.collect():
            with tracer.span("new"):
                pass
        assert [s.name for s in tracer.spans()] == ["new"]

    def test_bounded_buffer_counts_drops(self):
        tracer = Tracer(enabled=True, max_spans=2)
        for i in range(4):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 2
        assert tracer.dropped == 2
        assert [s.name for s in tracer.spans()] == ["s2", "s3"]

    def test_reset_clears_spans_and_drops(self, tracer):
        with tracer.span("x"):
            pass
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_current_returns_innermost(self, tracer):
        assert tracer.current() is NOOP_SPAN
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                assert tracer.current() is inner

    def test_record_as_dict_is_json_safe(self, tracer):
        import json

        with tracer.span("x", layer="L") as sp:
            sp.add("n", 1)
        (span,) = tracer.spans()
        parsed = json.loads(json.dumps(span.as_dict()))
        assert parsed["name"] == "x"
        assert parsed["attrs"] == {"layer": "L"}
        assert parsed["counters"] == {"n": 1}
