"""TraceContext propagation: minting, wire forms, activation, lanes."""

from __future__ import annotations

import pytest

from repro.obs import trace
from repro.obs.trace import NOOP_SPAN, TraceContext, Tracer


@pytest.fixture()
def tracer() -> Tracer:
    return Tracer(enabled=True)


class TestTraceContext:
    def test_parent_ref_is_lane_qualified(self):
        ctx = TraceContext("abcd1234abcd1234", 7, "replica-3", key="s1")
        assert ctx.parent_ref() == "replica-3:7"

    def test_wire_roundtrip(self):
        ctx = TraceContext("abcd1234abcd1234", 7, "main", key="k")
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_from_wire_none_passthrough(self):
        assert TraceContext.from_wire(None) is None

    def test_rebased_keeps_trace_id_and_key(self):
        ctx = TraceContext("abcd1234abcd1234", 7, "main", key="k")
        hop = ctx.rebased(42, "replica-1")
        assert hop.trace_id == ctx.trace_id
        assert hop.key == "k"
        assert hop.parent_ref() == "replica-1:42"
        # Original is frozen/unchanged.
        assert ctx.parent_ref() == "main:7"

    def test_new_trace_ids_are_16_hex_and_distinct(self):
        a, b = trace.new_trace_id(), trace.new_trace_id()
        assert len(a) == 16 and len(b) == 16
        int(a, 16)  # must be valid hex
        assert a != b


class TestProcessLane:
    def test_default_lane_is_main(self):
        assert trace.process_lane() == "main"

    def test_set_and_restore(self):
        prev = trace.process_lane()
        try:
            trace.set_process_lane("replica-9")
            assert trace.process_lane() == "replica-9"
        finally:
            trace.set_process_lane(prev)


class TestActivation:
    def test_active_context_tags_spans(self, tracer):
        ctx = TraceContext("t1", 5, "main")
        with tracer.activate(ctx):
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["root"].attrs["trace_id"] == "t1"
        # Thread-root span parents to the remote span the ctx names.
        assert spans["root"].attrs["parent_ref"] == "main:5"
        # Non-root spans keep local parentage — no cross-process ref.
        assert spans["child"].attrs["trace_id"] == "t1"
        assert "parent_ref" not in spans["child"].attrs
        assert spans["child"].parent_id == spans["root"].span_id

    def test_activate_none_is_a_noop(self, tracer):
        with tracer.activate(None):
            assert tracer.current_context() is None
            with tracer.span("s"):
                pass
        (s,) = tracer.spans()
        assert "trace_id" not in s.attrs

    def test_contexts_nest_and_restore(self, tracer):
        outer = TraceContext("t1", 1, "main")
        inner = TraceContext("t2", 2, "main")
        assert tracer.current_context() is None
        with tracer.activate(outer):
            with tracer.activate(inner):
                assert tracer.current_context() is inner
            assert tracer.current_context() is outer
        assert tracer.current_context() is None

    def test_context_restored_on_exception(self, tracer):
        ctx = TraceContext("t1", 1, "main")
        with pytest.raises(RuntimeError):
            with tracer.activate(ctx):
                raise RuntimeError("boom")
        assert tracer.current_context() is None


class TestDrain:
    def test_drain_ships_each_span_exactly_once(self, tracer):
        with tracer.span("a"):
            pass
        first = tracer.drain()
        assert [s.name for s in first] == ["a"]
        assert tracer.drain() == []
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.drain()] == ["b"]

    def test_drain_leaves_epoch_untouched(self, tracer):
        epoch = tracer.epoch_wall
        with tracer.span("a"):
            pass
        tracer.drain()
        assert tracer.epoch_wall == epoch


class TestRequestContext:
    def test_disabled_yields_noop_and_none(self):
        assert not trace.enabled()
        with trace.request_context("serve.predict") as (sp, ctx):
            assert sp is NOOP_SPAN
            assert ctx is None

    def test_mints_root_and_activates(self):
        with trace.get_tracer().collect():
            with trace.request_context(
                "serve.predict", key="k", batch=2
            ) as (sp, ctx):
                assert ctx.span_id == sp.span_id
                assert ctx.key == "k"
                assert ctx.origin == trace.process_lane()
                assert trace.current_context() is ctx
                with trace.span("inner"):
                    pass
            spans = {s.name: s for s in trace.spans()}
            root = spans["serve.predict"]
            assert root.attrs["trace_root"] is True
            assert root.attrs["trace_id"] == ctx.trace_id
            assert root.attrs["batch"] == 2
            assert spans["inner"].attrs["trace_id"] == ctx.trace_id
        assert trace.current_context() is None

    def test_each_request_gets_a_fresh_trace_id(self):
        with trace.get_tracer().collect():
            with trace.request_context("r1") as (_sp, c1):
                pass
            with trace.request_context("r2") as (_sp, c2):
                pass
            assert c1.trace_id != c2.trace_id
