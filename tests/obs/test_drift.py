"""DriftMonitor unit tests: EWMA math, band alerts, gauges, baselines."""

from __future__ import annotations

import pytest

from repro.obs import log as obs_log
from repro.obs.drift import (
    DriftMonitor,
    _sparse_fraction,
    baseline_from_engine,
)
from repro.serve.metrics import MetricsRegistry


class TestValidation:
    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_bad_alpha_rejected(self, alpha):
        with pytest.raises(ValueError):
            DriftMonitor(alpha=alpha)

    @pytest.mark.parametrize("band", [0.0, -0.2])
    def test_bad_band_rejected(self, band):
        with pytest.raises(ValueError):
            DriftMonitor(band=band)


class TestEwma:
    def test_first_sample_sets_ewma_exactly(self):
        mon = DriftMonitor(baseline={"L": 0.2}, alpha=0.5)
        mon.observe({"L": {"sensitive_ratio": 0.4}})
        assert mon.snapshot()["L"]["ewma"] == pytest.approx(0.4)

    def test_ewma_smooths_with_alpha(self):
        mon = DriftMonitor(baseline={"L": 0.2}, alpha=0.5)
        mon.observe({"L": {"sensitive_ratio": 0.4}})
        mon.observe({"L": {"sensitive_ratio": 0.8}})
        # 0.5 * 0.8 + 0.5 * 0.4
        assert mon.snapshot()["L"]["ewma"] == pytest.approx(0.6)

    def test_unknown_layer_self_anchors_baseline(self):
        mon = DriftMonitor()
        mon.observe({"new": {"sensitive_ratio": 0.33}})
        snap = mon.snapshot()["new"]
        assert snap["baseline"] == pytest.approx(0.33)
        assert snap["delta"] == pytest.approx(0.0)
        assert not snap["alert"]

    def test_samples_without_ratio_are_skipped(self):
        mon = DriftMonitor()
        mon.observe({"L": {"path_calls": {"dense": 1}}})
        assert mon.snapshot() == {}


class TestAlerting:
    def test_band_crossing_flags_layer(self):
        mon = DriftMonitor(baseline={"L": 0.2}, alpha=1.0, band=0.15)
        mon.observe({"L": {"sensitive_ratio": 0.5}})
        assert mon.alerting() == ["L"]
        assert mon.snapshot()["L"]["alert"]

    def test_rearmed_when_back_inside_band(self):
        mon = DriftMonitor(baseline={"L": 0.2}, alpha=1.0, band=0.15)
        mon.observe({"L": {"sensitive_ratio": 0.5}})
        mon.observe({"L": {"sensitive_ratio": 0.22}})
        assert mon.alerting() == []
        assert not mon.snapshot()["L"]["alert"]

    def test_warns_once_per_crossing(self):
        buf = obs_log.install_buffer()
        try:
            mon = DriftMonitor(baseline={"L": 0.2}, alpha=1.0, band=0.15)
            mon.observe({"L": {"sensitive_ratio": 0.5}})   # crossing → warn
            mon.observe({"L": {"sensitive_ratio": 0.6}})   # still out → quiet
            mon.observe({"L": {"sensitive_ratio": 0.21}})  # back in → re-arm
            mon.observe({"L": {"sensitive_ratio": 0.7}})   # crossing → warn
            events = [r for r in buf.drain() if r["event"] == "drift_exceeded"]
            assert len(events) == 2
            assert events[0]["layer"] == "L"
        finally:
            obs_log.remove_buffer()


class TestGauges:
    def test_gauges_published_per_layer(self):
        metrics = MetricsRegistry()
        mon = DriftMonitor(baseline={"L": 0.2}, alpha=1.0, band=0.15,
                           metrics=metrics)
        mon.observe({"L": {
            "sensitive_ratio": 0.5,
            "path_calls": {"dense": 1, "sparse": 3},
        }})
        gauges = metrics.as_dict()["gauges"]
        assert gauges["drift_sensitive_ratio:L"] == pytest.approx(0.5)
        assert gauges["drift_delta:L"] == pytest.approx(0.3)
        assert gauges["drift_alert:L"] == 1.0
        assert gauges["drift_sparse_frac:L"] == pytest.approx(0.75)

    def test_alert_gauge_clears(self):
        metrics = MetricsRegistry()
        mon = DriftMonitor(baseline={"L": 0.2}, alpha=1.0, band=0.15,
                           metrics=metrics)
        mon.observe({"L": {"sensitive_ratio": 0.5}})
        mon.observe({"L": {"sensitive_ratio": 0.2}})
        assert metrics.as_dict()["gauges"]["drift_alert:L"] == 0.0


class TestSparseFraction:
    def test_none_and_empty(self):
        assert _sparse_fraction(None) is None
        assert _sparse_fraction({}) is None
        assert _sparse_fraction({"dense": 0}) is None

    def test_non_dense_paths_count_as_sparse(self):
        frac = _sparse_fraction({"dense": 2, "sparse_gather": 1,
                                 "sparse_skip": 1})
        assert frac == pytest.approx(0.5)


class TestBaselineFromEngine:
    def test_ratios_from_records(self):
        class Rec:
            def __init__(self, s, t):
                self.sensitive_total = s
                self.outputs_total = t

        class Engine:
            records = {"C1": Rec(30, 100), "C2": Rec(0, 0)}

        baseline = baseline_from_engine(Engine())
        assert baseline == {"C1": pytest.approx(0.3)}

    def test_engine_without_records(self):
        assert baseline_from_engine(object()) == {}
