"""Uniform quantizer semantics and error bounds."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.quant.uniform import (
    QParams,
    affine_qparams,
    dequantize,
    fake_quantize,
    quantization_error_bound,
    quantize,
    symmetric_qparams,
)


class TestQParams:
    def test_symmetric_covers_range(self):
        qp = symmetric_qparams(2.0, 4)
        assert qp.signed and qp.zero_point == 0
        assert qp.qmin == -8 and qp.qmax == 7
        assert qp.scale == pytest.approx(2.0 / 7)

    def test_affine_includes_zero(self):
        qp = affine_qparams(0.5, 2.0, 4)  # lo forced down to 0
        assert dequantize(np.array([qp.zero_point]), qp)[0] == 0.0

    def test_affine_negative_range(self):
        qp = affine_qparams(-1.0, 1.0, 8)
        x = np.array([-1.0, 0.0, 1.0])
        deq = fake_quantize(x, qp)
        np.testing.assert_allclose(deq, x, atol=qp.scale)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            QParams(scale=0.0, zero_point=0, bits=4, signed=True)

    def test_zero_point_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            QParams(scale=1.0, zero_point=99, bits=4, signed=False)

    def test_degenerate_ranges_handled(self):
        # max_abs = 0 and hi == lo must still give valid (tiny-scale) qparams.
        assert symmetric_qparams(0.0, 4).scale > 0
        assert affine_qparams(0.0, 0.0, 4).scale > 0


class TestQuantizeDequantize:
    def test_clamping(self):
        qp = symmetric_qparams(1.0, 4)
        q = quantize(np.array([-100.0, 100.0]), qp)
        np.testing.assert_array_equal(q, [qp.qmin, qp.qmax])

    def test_integer_output_dtype(self):
        qp = affine_qparams(0, 1, 4)
        assert quantize(np.array([0.5]), qp).dtype == np.int64

    def test_zero_maps_to_zero_exactly(self):
        qp = affine_qparams(-0.3, 1.7, 4)
        assert fake_quantize(np.array([0.0]), qp)[0] == 0.0

    @given(
        st.lists(st.floats(min_value=-1.0, max_value=1.0), min_size=1, max_size=50),
        st.integers(min_value=2, max_value=8),
    )
    def test_roundtrip_error_bounded(self, values, bits):
        """Property: in-range values dequantize within half a step."""
        x = np.array(values)
        qp = symmetric_qparams(1.0, bits)
        err = np.abs(fake_quantize(x, qp) - x)
        assert (err <= quantization_error_bound(qp) + 1e-12).all()

    @given(st.integers(min_value=2, max_value=8))
    def test_monotonicity(self, bits):
        """Property: quantization preserves ordering."""
        x = np.linspace(-1, 1, 101)
        qp = symmetric_qparams(1.0, bits)
        q = quantize(x, qp)
        assert (np.diff(q) >= 0).all()

    def test_more_bits_less_error(self, rng):
        x = rng.uniform(-1, 1, 1000)
        errs = []
        for bits in (2, 4, 8):
            qp = symmetric_qparams(1.0, bits)
            errs.append(np.abs(fake_quantize(x, qp) - x).mean())
        assert errs[0] > errs[1] > errs[2]
