"""Eq.-3 bit-plane decomposition: exactness of the four-term expansion."""

import numpy as np
from hypothesis import given, strategies as st

from repro.quant.bitsplit import cross_terms, predictor_term, split_planes
from repro.quant.uniform import affine_qparams, symmetric_qparams


def planes_from_ints(values, signed, low_bits=2, bits=4):
    qp = (
        symmetric_qparams(1.0, bits)
        if signed
        else affine_qparams(0.0, 1.0, bits)
    )
    return split_planes(np.array(values, dtype=np.int64), qp, low_bits)


class TestSplitPlanes:
    def test_unsigned_high_is_shift(self):
        p = planes_from_ints([0, 5, 10, 15], signed=False)
        np.testing.assert_array_equal(p.high, [0, 1, 2, 3])
        np.testing.assert_array_equal(p.low, [0, 1, 2, 3])

    def test_recompose_identity_signed(self):
        q = np.arange(-8, 8)
        p = planes_from_ints(q, signed=True)
        np.testing.assert_array_equal(p.recompose(), q)

    def test_high_shift(self):
        p = planes_from_ints([0], signed=False)
        assert p.high_shift == 4  # << 2*N_LBS with N_LBS=2


class TestEq3CrossTerms:
    @given(
        st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=32),
        st.lists(st.integers(min_value=-8, max_value=7), min_size=1, max_size=32),
    )
    def test_four_terms_sum_to_product(self, acts, weights):
        """Property (Eq. 3): HH<<2N + HL<<N + LH<<N + LL == q_a * q_w,
        for every INT4 activation x INT4 signed weight pair."""
        n = min(len(acts), len(weights))
        a = planes_from_ints(acts[:n], signed=False)
        w = planes_from_ints(weights[:n], signed=True)
        hh, hl, lh, ll = cross_terms(a, w)
        np.testing.assert_array_equal(hh + hl + lh + ll, a.recompose() * w.recompose())

    def test_predictor_term_equals_hh(self):
        a = planes_from_ints(np.arange(16), signed=False)
        w = planes_from_ints(np.arange(-8, 8), signed=True)
        hh, _, _, _ = cross_terms(a, w)
        np.testing.assert_array_equal(predictor_term(a, w), hh)

    def test_predictor_dominates_for_large_magnitudes(self):
        """The HH term carries most of the product for large operands —
        the premise that makes output prediction from HBS meaningful."""
        a = planes_from_ints([15], signed=False)
        w = planes_from_ints([7], signed=True)
        hh = predictor_term(a, w)[0]
        full = (a.recompose() * w.recompose())[0]
        assert hh / full > 0.4

    def test_mismatched_low_bits_rejected(self):
        import pytest

        a = planes_from_ints([1], signed=False, low_bits=1)
        w = planes_from_ints([1], signed=True, low_bits=2)
        with pytest.raises(ValueError):
            cross_terms(a, w)

    @given(st.integers(min_value=1, max_value=3))
    def test_exactness_for_other_splits(self, low_bits):
        """Eq. 3 holds for any N_LBS, not just the paper's 2."""
        rng = np.random.default_rng(0)
        acts = rng.integers(0, 16, 64)
        weights = rng.integers(-8, 8, 64)
        a = planes_from_ints(acts, signed=False, low_bits=low_bits)
        w = planes_from_ints(weights, signed=True, low_bits=low_bits)
        hh, hl, lh, ll = cross_terms(a, w)
        np.testing.assert_array_equal(hh + hl + lh + ll, acts * weights)
