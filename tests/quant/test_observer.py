"""Range observers for calibration."""

import numpy as np
import pytest

from repro.quant.observer import MinMaxObserver, PercentileObserver


class TestMinMaxObserver:
    def test_tracks_running_extremes(self):
        obs = MinMaxObserver()
        obs.observe(np.array([1.0, 2.0]))
        obs.observe(np.array([-3.0, 0.5]))
        qp = obs.qparams(8, signed=False)
        assert qp.scale > 0
        # Range must cover [-3, 2].
        lo = (qp.qmin - qp.zero_point) * qp.scale
        hi = (qp.qmax - qp.zero_point) * qp.scale
        assert lo <= -3.0 + 0.05 and hi >= 2.0 - 0.05

    def test_signed_symmetric_from_max_abs(self):
        obs = MinMaxObserver()
        obs.observe(np.array([-4.0, 1.0]))
        qp = obs.qparams(4, signed=True)
        assert qp.zero_point == 0
        assert qp.scale == pytest.approx(4.0 / 7)

    def test_empty_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver().qparams(8, signed=False)

    def test_empty_array_ignored(self):
        obs = MinMaxObserver()
        obs.observe(np.array([]))
        with pytest.raises(RuntimeError):
            obs.qparams(8, False)


class TestPercentileObserver:
    def test_clips_outliers(self, rng):
        obs = PercentileObserver(percentile=99.0)
        data = rng.normal(size=10000)
        data[0] = 1000.0  # extreme outlier
        obs.observe(data)
        qp = obs.qparams(8, signed=True)
        max_repr = qp.qmax * qp.scale
        assert max_repr < 10.0  # outlier did not blow up the range

    def test_minmax_would_not_clip(self, rng):
        mm = MinMaxObserver()
        data = rng.normal(size=1000)
        data[0] = 1000.0
        mm.observe(data)
        qp = mm.qparams(8, signed=True)
        assert qp.qmax * qp.scale > 900

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            PercentileObserver(percentile=40.0)

    def test_reservoir_bounds_memory(self, rng):
        obs = PercentileObserver(reservoir=1024)
        for _ in range(20):
            obs.observe(rng.normal(size=5000))
        held = sum(s.size for s in obs._samples)
        assert held < 1024 + 20 * (1024 // 4)
        assert obs.qparams(4, signed=True).scale > 0

    def test_unsigned_range(self, rng):
        obs = PercentileObserver(percentile=99.9)
        obs.observe(rng.uniform(0, 1, 5000))
        qp = obs.qparams(4, signed=False)
        assert 0.9 < qp.qmax * qp.scale < 1.2
