"""Exactness of the float64-GEMM integer convolution (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.base import int_conv2d


class TestExactness:
    @settings(deadline=None, max_examples=30)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.sampled_from([(4, True), (8, True), (16, False)]),
    )
    def test_matches_int64_reference(self, seed, spec):
        """For random tensors at every operand width used in the repo,
        the BLAS path equals a pure-integer reference."""
        bits, signed = spec
        rng = np.random.default_rng(seed)
        if signed:
            lo, hi = -(2 ** (bits - 1)), 2 ** (bits - 1)
        else:
            lo, hi = 0, 2**bits
        q = rng.integers(0, 2**bits, size=(1, 3, 6, 6))
        qw = rng.integers(lo, hi, size=(2, 3, 3, 3))

        got = int_conv2d(q, qw, 1, 1)

        # Pure integer reference via direct loops (int64 arithmetic).
        qp = np.pad(q, ((0, 0), (0, 0), (1, 1), (1, 1)))
        want = np.zeros_like(got)
        for o in range(2):
            for y in range(6):
                for x in range(6):
                    want[0, o, y, x] = int(
                        (qp[0, :, y : y + 3, x : x + 3] * qw[o]).sum()
                    )
        np.testing.assert_array_equal(got, want)

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=0, max_value=255))
    def test_pad_value_semantics(self, pad_value):
        """Padding with value v is identical to manual constant-padding."""
        rng = np.random.default_rng(0)
        q = rng.integers(0, 16, size=(1, 2, 4, 4))
        qw = rng.integers(-8, 8, size=(2, 2, 3, 3))
        got = int_conv2d(q, qw, 1, 1, pad_value=pad_value)
        qp = np.pad(q, ((0, 0), (0, 0), (1, 1), (1, 1)), constant_values=pad_value)
        want = int_conv2d(qp, qw, 1, 0)
        np.testing.assert_array_equal(got, want)
