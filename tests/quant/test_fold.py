"""Batch-norm folding: exactness and structural coverage."""

import copy

import numpy as np
import pytest

from repro.models import densenet, resnet20, vgg16
from repro.nn import BatchNorm2d, Conv2d, Sequential, Tensor
from repro.quant.fold import fold_batchnorm, fold_conv_bn


def _warm_bn(module, rng, shape):
    module.train()
    for _ in range(5):
        module(Tensor(rng.normal(size=shape) * 2 + 0.5))
    module.eval()


class TestFoldConvBn:
    def test_exact_equivalence(self, rng):
        conv = Conv2d(3, 4, 3, padding=1, rng=rng)
        bn = BatchNorm2d(4)
        seq = Sequential(conv, bn)
        _warm_bn(seq, rng, (8, 3, 6, 6))
        folded = fold_conv_bn(conv, bn)
        x = rng.normal(size=(2, 3, 6, 6))
        want = bn(conv(Tensor(x))).data
        got = folded(Tensor(x)).data
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_conv_without_bias(self, rng):
        conv = Conv2d(3, 4, 3, bias=False, rng=rng)
        bn = BatchNorm2d(4)
        seq = Sequential(conv, bn)
        _warm_bn(seq, rng, (8, 3, 6, 6))
        folded = fold_conv_bn(conv, bn)
        assert folded.bias is not None
        x = rng.normal(size=(2, 3, 6, 6))
        np.testing.assert_allclose(
            folded(Tensor(x)).data, bn(conv(Tensor(x))).data, atol=1e-10
        )

    def test_channel_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            fold_conv_bn(Conv2d(3, 4, 3, rng=rng), BatchNorm2d(8))


class TestFoldModel:
    @pytest.mark.parametrize("builder,expected_folds", [(resnet20, 19), (vgg16, 13)])
    def test_network_equivalence(self, rng, builder, expected_folds):
        model = builder(scale=0.25, rng=rng)
        _warm_bn(model, rng, (4, 3, 16, 16))
        x = rng.normal(size=(2, 3, 16, 16))
        want = model(Tensor(x)).data
        folded_model = copy.deepcopy(model)
        n = fold_batchnorm(folded_model)
        assert n == expected_folds
        np.testing.assert_allclose(folded_model(Tensor(x)).data, want, atol=1e-9)
        # No BatchNorm2d left on the folded paths.
        remaining = folded_model.modules_of_type(BatchNorm2d)
        assert len(remaining) == 0

    def test_densenet_preactivation_untouched(self, rng):
        """DenseNet's BN-before-conv layout has no conv->BN edge to fold
        (except none); the model must pass through unchanged."""
        model = densenet(scale=0.5, rng=rng, depth=10)
        _warm_bn(model, rng, (4, 3, 16, 16))
        x = rng.normal(size=(1, 3, 16, 16))
        want = model(Tensor(x)).data
        n = fold_batchnorm(model)
        np.testing.assert_allclose(model(Tensor(x)).data, want, atol=1e-9)
        assert n == 0

    def test_training_mode_rejected(self, rng):
        model = resnet20(scale=0.25, rng=rng)
        model.train()
        with pytest.raises(RuntimeError):
            fold_batchnorm(model)

    def test_folded_model_quantizes_fine(self, rng):
        """Folded networks run through the static-quant pipeline."""
        from repro.core import run_scheme, static_scheme

        model = resnet20(scale=0.25, rng=rng)
        _warm_bn(model, rng, (4, 3, 16, 16))
        fold_batchnorm(model)
        x = np.abs(rng.normal(size=(16, 3, 16, 16)))
        y = rng.integers(0, 10, 16)
        acc, records = run_scheme(model, static_scheme(8), x[:8], x, y)
        assert len(records) == 19
