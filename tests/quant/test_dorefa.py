"""DoReFa quantizers, STE gradients, and model transformation."""

import numpy as np

from repro.models import resnet20
from repro.nn import SGD, Conv2d, Linear, Sequential, Tensor, cross_entropy
from repro.quant.dorefa import (
    QuantConv2d,
    QuantLinear,
    dorefa_weight_transform,
    fake_quant_act,
    fake_quant_weight,
    quantize_k,
    quantize_model_inplace,
)


class TestQuantizeK:
    def test_levels(self):
        x = np.linspace(0, 1, 100)
        out = quantize_k(x, 2)
        assert set(np.round(np.unique(out) * 3).astype(int)).issubset({0, 1, 2, 3})

    def test_clips_out_of_range(self):
        np.testing.assert_array_equal(quantize_k(np.array([-1.0, 2.0]), 4), [0.0, 1.0])

    def test_identity_points(self):
        np.testing.assert_allclose(quantize_k(np.array([0.0, 1.0]), 3), [0.0, 1.0])


class TestWeightTransform:
    def test_output_range(self, rng):
        w = rng.normal(size=(100,)) * 3
        out = dorefa_weight_transform(w, 4)
        assert out.min() >= -1.0 and out.max() <= 1.0

    def test_preserves_sign(self, rng):
        w = rng.normal(size=(100,))
        w[np.abs(w) < 0.2] = 0.5
        out = dorefa_weight_transform(w, 4)
        # Large-magnitude weights keep their sign.
        big = np.abs(w) > 0.5
        assert (np.sign(out[big]) == np.sign(w[big])).all()

    def test_discrete_level_count(self, rng):
        out = dorefa_weight_transform(rng.normal(size=1000), 2)
        assert len(np.unique(out)) <= 4


class TestSTE:
    def test_weight_gradient_passes_through(self, rng):
        w = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        out = fake_quant_weight(w, 4)
        g = rng.normal(size=(4, 4))
        out.backward(g)
        np.testing.assert_array_equal(w.grad, g)

    def test_act_gradient_masked_outside_clip(self):
        a = Tensor(np.array([-0.5, 0.5, 1.5]), requires_grad=True)
        out = fake_quant_act(a, 4)
        out.backward(np.ones(3))
        np.testing.assert_array_equal(a.grad, [0.0, 1.0, 0.0])

    def test_32bit_is_identity(self, rng):
        w = Tensor(rng.normal(size=(3,)), requires_grad=True)
        assert fake_quant_weight(w, 32) is w


class TestModelTransform:
    def test_first_conv_skipped_by_default(self):
        model = resnet20(scale=0.25, rng=np.random.default_rng(0))
        quantize_model_inplace(model, 4, 4)
        convs = [m for _, m in model.named_modules() if isinstance(m, Conv2d)]
        plain = [c for c in convs if not isinstance(c, QuantConv2d)]
        assert len(plain) == 1  # only conv1

    def test_all_linear_become_quant(self):
        model = Sequential(Linear(4, 4), Linear(4, 2))
        quantize_model_inplace(model, 4, 4)
        assert all(isinstance(l, QuantLinear) for l in model.layers)

    def test_weights_shared_not_copied(self):
        conv = Conv2d(2, 2, 3)
        q = QuantConv2d.from_conv(conv, 4, 4)
        assert q.weight is conv.weight

    def test_idempotent(self):
        model = Sequential(Linear(4, 2))
        quantize_model_inplace(model, 4, 4)
        first = model.layers[0]
        quantize_model_inplace(model, 4, 4)
        assert model.layers[0] is first

    def test_qat_training_step_runs_and_learns(self, rng):
        """A fake-quant model must still be trainable via STE."""
        x = rng.normal(size=(64, 8))
        y = (x[:, 0] > 0).astype(int)
        model = Sequential(Linear(8, 16, rng=rng), Linear(16, 2, rng=rng))
        quantize_model_inplace(model, w_bits=4, a_bits=4)
        opt = SGD(model.parameters(), lr=0.2)
        losses = []
        for _ in range(40):
            loss = cross_entropy(model(Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.7
