"""Sizing and mask-aware placement (pure-function tier)."""

from __future__ import annotations

import pytest

from repro.cluster.sizing import (
    MAX_DEFAULT_REPLICAS,
    PREDICT_COST,
    autoscale_hint,
    place_chunks,
    predicted_chunk_cost,
    recommended_gemm_threads,
    recommended_replicas,
    usable_cores,
)


class TestDefaults:
    def test_usable_cores_positive(self):
        assert usable_cores() >= 1

    @pytest.mark.parametrize(
        "cores,expected", [(1, 1), (4, 4), (8, 8), (64, MAX_DEFAULT_REPLICAS)]
    )
    def test_recommended_replicas(self, cores, expected):
        assert recommended_replicas(cores) == expected

    @pytest.mark.parametrize(
        "replicas,cores,expected", [(1, 8, 8), (4, 8, 2), (8, 4, 1), (3, 7, 2)]
    )
    def test_gemm_threads_keep_product_within_cores(self, replicas, cores, expected):
        assert recommended_gemm_threads(replicas, cores) == expected


class TestAutoscaleHint:
    def test_saturated_grows_within_cores(self):
        assert autoscale_hint([0.9, 0.85], replicas=2, cores=4) == 3
        assert autoscale_hint([0.9, 0.85], replicas=4, cores=4) == 4  # capped

    def test_idle_shrinks_to_floor_of_one(self):
        assert autoscale_hint([0.1, 0.05], replicas=2, cores=4) == 1
        assert autoscale_hint([0.1], replicas=1, cores=4) == 1

    def test_moderate_load_and_no_data_hold(self):
        assert autoscale_hint([0.5, 0.6], replicas=2, cores=4) == 2
        assert autoscale_hint([], replicas=3, cores=4) == 3


class TestPredictedCost:
    def test_scales_with_images_and_density(self):
        dense = predicted_chunk_cost(8, 1.0)
        sparse = predicted_chunk_cost(8, 0.1)
        assert dense == 8 * (PREDICT_COST + 1.0)
        assert sparse < dense
        assert predicted_chunk_cost(16, 0.5) == 2 * predicted_chunk_cost(8, 0.5)

    def test_out_of_range_ratio_clamps_to_dense(self):
        assert predicted_chunk_cost(4, -0.5) == predicted_chunk_cost(4, 1.0)
        assert predicted_chunk_cost(4, 3.0) == predicted_chunk_cost(4, 1.0)


class TestPlacement:
    def test_balances_equal_chunks_round_robin(self):
        out = place_chunks([4, 4, 4, 4], [0.0, 0.0])
        assert sorted(out) == [0, 0, 1, 1]

    def test_prefers_less_loaded_replica(self):
        # Replica 0 starts with outstanding work; all new chunks should
        # land on replica 1 until the loads even out.
        out = place_chunks([4], [100.0, 0.0])
        assert out == [1]

    def test_lpt_equalizes_predicted_work(self):
        sizes = [8, 1, 1, 1, 1, 8, 2, 2]
        out = place_chunks(sizes, [0.0, 0.0], sensitive_ratio=1.0)
        loads = [0.0, 0.0]
        for size, rep in zip(sizes, out):
            loads[rep] += predicted_chunk_cost(size, 1.0)
        assert abs(loads[0] - loads[1]) <= predicted_chunk_cost(2, 1.0)

    def test_deterministic(self):
        sizes = [3, 7, 2, 9, 4, 4]
        a = place_chunks(sizes, [0.0, 0.0, 0.0], 0.4)
        b = place_chunks(sizes, [0.0, 0.0, 0.0], 0.4)
        assert a == b

    def test_result_in_original_chunk_order(self):
        sizes = [1, 9]
        out = place_chunks(sizes, [0.0, 0.0])
        assert len(out) == 2
        # The big chunk (index 1) is placed first (LPT) but reported at
        # its original position.
        assert out[1] in (0, 1)

    def test_no_replicas_raises(self):
        with pytest.raises(ValueError):
            place_chunks([1], [])
