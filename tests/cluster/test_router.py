"""ClusterPool end-to-end over echo replicas: routing, recovery, drain.

Every test here spawns real replica *processes* (echo mode — no engine
build) and exercises the real shared-memory transport.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterClosed, ClusterPool
from tests.cluster.conftest import (
    ECHO_CLASSES,
    ECHO_SHAPE,
    echo_config,
    expected_echo,
)


def requests(rng, n, size):
    return [rng.normal(size=(size, *ECHO_SHAPE)) for _ in range(n)]


def wait_for(predicate, timeout=10.0):
    """Poll until true: replicas update their stats rows *after* sending
    the result, so counter assertions must not race the writer."""
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class TestSubmission:
    def test_single_and_multi_chunk_results_exact(self, echo_pool):
        rng = np.random.default_rng(0)
        small = rng.normal(size=(2, *ECHO_SHAPE))      # one chunk
        large = rng.normal(size=(11, *ECHO_SHAPE))     # three chunks (cap 4)
        out_small = echo_pool.submit(small).result(timeout=30)
        out_large = echo_pool.submit(large).result(timeout=30)
        assert np.array_equal(out_small, expected_echo(small))
        assert np.array_equal(out_large, expected_echo(large))
        assert out_large.shape == (11, ECHO_CLASSES)

    def test_3d_input_promoted_to_single_image(self, echo_pool):
        img = np.random.default_rng(1).normal(size=ECHO_SHAPE)
        out = echo_pool.submit(img).result(timeout=30)
        assert out.shape == (1, ECHO_CLASSES)

    def test_bad_shape_rejected(self, echo_pool):
        with pytest.raises(ValueError):
            echo_pool.submit(np.zeros((2, 3, 3, 3)))

    def test_many_concurrent_submissions(self, echo_pool):
        rng = np.random.default_rng(2)
        arrs = requests(rng, 20, 3)
        futs = [echo_pool.submit(a) for a in arrs]
        for a, f in zip(arrs, futs):
            assert np.array_equal(f.result(timeout=60), expected_echo(a))
        assert echo_pool.submitted >= 20

    def test_work_spreads_across_replicas(self, echo_pool):
        rng = np.random.default_rng(3)
        futs = [echo_pool.submit(a) for a in requests(rng, 16, 4)]
        for f in futs:
            f.result(timeout=60)
        assert wait_for(
            lambda: all(s["batches"] > 0 for s in echo_pool.stats())
        ), echo_pool.stats()


class TestAffinity:
    def test_same_key_lands_on_one_replica(self, echo_pool):
        rng = np.random.default_rng(4)
        before = {s["name"]: s["batches"] for s in echo_pool.stats()}
        futs = [
            echo_pool.submit(a, affinity="tenant-A")
            for a in requests(rng, 6, 2)
        ]
        for f in futs:
            f.result(timeout=60)
        assert wait_for(
            lambda: sum(s["batches"] for s in echo_pool.stats())
            == sum(before.values()) + 6
        )
        after = {s["name"]: s["batches"] for s in echo_pool.stats()}
        grew = [n for n in after if after[n] > before[n]]
        assert len(grew) == 1  # all six requests on the ring owner

    def test_affinity_matches_ring_assignment(self, echo_pool):
        rid = echo_pool.ring.assign("tenant-B")
        before = echo_pool.stats()[rid]["batches"]
        echo_pool.submit(
            np.zeros((1, *ECHO_SHAPE)), affinity="tenant-B"
        ).result(timeout=30)
        assert wait_for(
            lambda: echo_pool.stats()[rid]["batches"] == before + 1
        ), echo_pool.stats()


class TestLifecycle:
    def test_shutdown_rejects_new_work(self, echo_pool):
        echo_pool.shutdown()
        with pytest.raises(ClusterClosed):
            echo_pool.submit(np.zeros((1, *ECHO_SHAPE)))

    def test_liveness_surface(self, echo_pool):
        rows = echo_pool.liveness()
        assert len(rows) == 2
        for row in rows:
            assert row["alive"] is True
            assert row["router_state"] == "up"
            assert row["generation"] == 0
            assert row["queued_chunks"] == 0

    def test_rolling_restart_bumps_generation(self, echo_pool):
        arr = np.random.default_rng(5).normal(size=(3, *ECHO_SHAPE))
        assert echo_pool.drain_replica(0, restart=True, timeout=60)
        assert echo_pool.supervisor.handle(0).generation == 1
        # Replica 0 serves again after its restart.
        out = echo_pool.submit(arr, affinity=None).result(timeout=60)
        assert np.array_equal(out, expected_echo(arr))
        assert echo_pool.liveness()[0]["router_state"] == "up"


class TestCrashRecovery:
    def test_no_request_loss_across_crashes(self):
        # Every replica exits (code 23) after 2 batches, repeatedly; all
        # submissions must still complete exactly, via requeue + respawn.
        pool = ClusterPool(
            echo_config(replicas=2, cluster_exit_after=2),
            input_shape=ECHO_SHAPE,
            num_classes=ECHO_CLASSES,
            backoff_base=0.05,
            backoff_cap=0.2,
        )
        pool.start()
        try:
            rng = np.random.default_rng(6)
            arrs = requests(rng, 10, 4)
            futs = [pool.submit(a) for a in arrs]
            for a, f in zip(arrs, futs):
                assert np.array_equal(f.result(timeout=120), expected_echo(a))
            assert pool.requeued > 0  # crashes actually happened
            assert any(
                pool.supervisor.respawn_count(r) > 0 for r in range(2)
            )
        finally:
            pool.shutdown()

    def test_metrics_fold_across_generations(self):
        # Counters must stay monotonic through a crash (dead generation
        # folded into the router's totals, not lost).
        from repro.serve.metrics import MetricsRegistry

        pool = ClusterPool(
            echo_config(replicas=1, cluster_exit_after=2),
            input_shape=ECHO_SHAPE,
            num_classes=ECHO_CLASSES,
            metrics=MetricsRegistry(),
            backoff_base=0.05,
            backoff_cap=0.2,
        )
        pool.start()
        try:
            rng = np.random.default_rng(7)
            for a in requests(rng, 5, 2):
                pool.submit(a).result(timeout=120)

            def folded_total():
                pool.refresh_metrics()
                counters = pool.metrics.as_dict()["counters"]
                return counters.get("replica_batches_total@replica=0", 0)

            assert wait_for(lambda: folded_total() >= 5), folded_total()
        finally:
            pool.shutdown()
