"""Distributed tracing E2E: context propagation across real replica
processes, telemetry merge, crash-log last words, and the HTTP-tier
drift gauges."""

from __future__ import annotations

import io
import json
import signal
import time
import urllib.request

import numpy as np
import pytest

from repro.cluster import ClusterPool
from repro.cluster.worker import ReplicaSpec, _apply_observability, replica_main
from repro.cluster.shm import ShmArena, ShmStatsBlock
from repro.obs import log as obs_log
from repro.obs import trace
from repro.obs.collector import TelemetryCollector, trace_trees
from repro.obs.log import get_logger
from repro.serve.config import ServeConfig
from tests.cluster.conftest import (
    ECHO_CLASSES,
    ECHO_SHAPE,
    echo_config,
    expected_echo,
)


@pytest.fixture
def traced():
    """Enable the global tracer for the test, restore and clear after."""
    was = trace.enabled()
    trace.reset()
    trace.enable()
    yield
    if not was:
        trace.disable()
    trace.reset()


def wait_for(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


class TestTracePropagation:
    def test_requests_form_single_cross_process_trees(self, traced):
        collector = TelemetryCollector()
        wall_start = time.time()
        pool = ClusterPool(
            echo_config(replicas=2),
            input_shape=ECHO_SHAPE,
            num_classes=ECHO_CLASSES,
            collector=collector,
        )
        pool.start()
        minted = []
        try:
            assert pool.wait_ready(timeout=60)
            rng = np.random.default_rng(0)
            pending = []
            for _ in range(4):
                arr = rng.normal(size=(6, *ECHO_SHAPE))  # 2 chunks at cap 4
                with trace.request_context(
                    "serve.predict", batch=6
                ) as (_sp, ctx):
                    minted.append(ctx.trace_id)
                    pending.append((arr, pool.submit(arr, ctx=ctx)))
            for arr, fut in pending:
                assert np.array_equal(
                    fut.result(timeout=60), expected_echo(arr)
                )
        finally:
            pool.shutdown()
        wall_end = time.time()

        # Every request is one tree spanning processes — no orphans.
        assert collector.orphans() == []
        trees = trace_trees(collector.merged())
        assert set(trees) == set(minted)
        for tid in minted:
            tree = trees[tid]
            assert len(tree["roots"]) == 1
            names = [s["name"] for s in tree["spans"]]
            assert names.count("cluster.dispatch") == 2
            assert names.count("replica.chunk") == 2
            lanes = {s["proc"] for s in tree["spans"]}
            assert any(lane.startswith("replica-") for lane in lanes)
            assert trace.process_lane() in lanes

        # Clock alignment: every merged record sits inside the test's
        # wall-clock window (replica epochs re-based correctly).
        merged = collector.merged()
        assert merged
        for rec in merged:
            assert wall_start - 2.0 <= rec["ts_us"] / 1e6 <= wall_end + 2.0
        # merged() is globally time-sorted, hence monotone per lane too.
        ts = [r["ts_us"] for r in merged]
        assert ts == sorted(ts)

    def test_trace_ids_stable_across_crash_respawn(self, traced):
        # Replicas crash (exit 23) every 2 batches; requeued chunks
        # re-run under the *same* wire context, so every span the
        # surviving generations ship still belongs to a minted trace
        # and still parents cleanly.
        # 8 single-chunk requests with a crash every 3 batches: the
        # final generation handles 8 mod 3 = 2 and *survives*, so its
        # drain ships spans (crashed generations take theirs with them).
        collector = TelemetryCollector()
        pool = ClusterPool(
            echo_config(replicas=1, cluster_exit_after=3),
            input_shape=ECHO_SHAPE,
            num_classes=ECHO_CLASSES,
            collector=collector,
            backoff_base=0.05,
            backoff_cap=0.2,
        )
        pool.start()
        minted = set()
        try:
            rng = np.random.default_rng(1)
            pending = []
            for _ in range(8):
                arr = rng.normal(size=(2, *ECHO_SHAPE))  # single chunk
                with trace.request_context("serve.predict") as (_sp, ctx):
                    minted.add(ctx.trace_id)
                    pending.append((arr, pool.submit(arr, ctx=ctx)))
            for arr, fut in pending:
                assert np.array_equal(
                    fut.result(timeout=120), expected_echo(arr)
                )
            assert pool.requeued > 0  # crashes actually happened
        finally:
            pool.shutdown()

        chunk_spans = [
            s for s in collector.merged(include_local=False)
            if s["name"] == "replica.chunk"
        ]
        assert chunk_spans  # the last generation drained its telemetry
        assert {s["attrs"]["trace_id"] for s in chunk_spans} <= minted
        # Spans from crashed generations are lost (the process died with
        # them) — but nothing that *was* shipped may dangle.
        assert collector.orphans() == []


class TestReplicaObservability:
    def _specs(self, **spec_kw):
        req = ShmArena(2, 64)
        res = ShmArena(2, 64)
        stats = ShmStatsBlock(1)
        spec = ReplicaSpec(
            replica_id=0,
            config=spec_kw.pop("config", echo_config(replicas=1)),
            req_arena_name=req.name,
            res_arena_name=res.name,
            stats_name=stats.name,
            slots=2,
            req_slot_floats=64,
            res_slot_floats=64,
            replicas=1,
            **spec_kw,
        )
        return spec, (req, res, stats)

    def test_apply_observability_reapplies_parent_snapshot(self):
        spec, shm = self._specs(
            log_level="debug", log_json=True, trace_enabled=True
        )
        try:
            buffer = _apply_observability(spec)
            assert obs_log.get_level() == obs_log.LEVELS["debug"]
            assert obs_log.json_mode() is True
            assert trace.process_lane() == "replica-0"
            assert trace.enabled()
            assert buffer is not None
            get_logger("repro.test").info("buffered_event")
            assert any(
                r["event"] == "buffered_event" for r in buffer.drain()
            )
        finally:
            obs_log.reset()
            trace.disable()
            trace.set_process_lane("main")
            for seg in shm:
                seg.unlink()

    def test_apply_observability_without_tracing_installs_no_buffer(self):
        spec, shm = self._specs(trace_enabled=False)
        try:
            assert _apply_observability(spec) is None
            assert not trace.enabled()
        finally:
            obs_log.reset()
            trace.set_process_lane("main")
            for seg in shm:
                seg.unlink()

    def test_replica_crash_leaves_structured_last_words(self):
        # In-process run of the spawn target with an injected startup
        # failure: the supervisor only ever sees the exit code, so the
        # replica must log the traceback itself before dying.
        spec, shm = self._specs(
            config=echo_config(replicas=1, cluster_raise_on_start=True)
        )

        class FakeConn:
            def close(self):
                pass

        stream = io.StringIO()
        prev_sigint = signal.getsignal(signal.SIGINT)
        obs_log.configure(stream=stream)
        try:
            with pytest.raises(RuntimeError, match="injected replica start"):
                replica_main(spec, FakeConn())
            out = stream.getvalue()
            assert "replica_crash" in out
            assert "replica=0" in out
            assert "Traceback" in out
            assert "injected replica start failure" in out
        finally:
            signal.signal(signal.SIGINT, prev_sigint)
            obs_log.reset()
            trace.set_process_lane("main")
            for seg in shm:
                seg.unlink()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return json.loads(resp.read())


def _post(url: str, payload: dict):
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=60) as resp:
        return json.loads(resp.read())


class TestServerTelemetryE2E:
    def test_http_requests_trace_and_drift_gauges_flow(self, traced, tmp_path):
        # Full engine-mode path: HTTP mints the context, the router
        # carries it, replicas ship spans + sensitivity samples, the
        # drift gauges surface on /metrics, and the spool receives the
        # live stream.
        from repro.serve.server import InferenceServer

        spool = tmp_path / "spool.jsonl"
        config = ServeConfig(
            model="lenet",
            scheme="odq",
            dataset="mnist",
            train_epochs=0,
            calib_images=32,
            max_batch_size=4,
            replicas=2,
            port=0,
            telemetry_spool=str(spool),
        )
        server = InferenceServer(config)
        server.start()
        try:
            assert server.cluster.wait_ready(timeout=180)
            imgs = server.session.sample_inputs[:3].tolist()
            for _ in range(3):
                resp = _post(server.url + "/predict", {"inputs": imgs})
                assert resp["batch"] == 3

            # Calibration counters are reset at freeze, so the baseline
            # self-anchors from replica samples — coverage must still
            # reach every quantized layer the engine records.
            layers = set(server.session.engine.records)
            assert layers

            def drift_ready():
                gauges = _get(server.url + "/metrics")["gauges"]
                return all(
                    f"drift_sensitive_ratio:{layer}" in gauges
                    for layer in layers
                )

            assert wait_for(drift_ready, timeout=60), (
                "drift gauges never appeared for all layers"
            )
        finally:
            server.shutdown()

        collector = server.collector
        assert collector is not None
        assert collector.orphans() == []
        trees = trace_trees(collector.merged())
        assert trees
        assert all(len(t["roots"]) == 1 for t in trees.values())
        replica_lanes = {
            s["proc"]
            for t in trees.values()
            for s in t["spans"]
            if s["proc"].startswith("replica-")
        }
        assert replica_lanes  # request work actually ran on replicas

        assert spool.stat().st_size > 0
        kinds = {
            json.loads(line)["kind"]
            for line in spool.read_text().splitlines()
        }
        assert "span" in kinds
