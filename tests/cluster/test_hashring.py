"""Consistent-hash ring properties: stability, balance, failover order."""

from __future__ import annotations

import pytest

from repro.cluster.hashring import DEFAULT_VNODES, HashRing, stable_hash

KEYS = [f"session-{i}" for i in range(2000)]


def assignments(ring: HashRing) -> dict[str, object]:
    return {k: ring.assign(k) for k in KEYS}


class TestStableHash:
    def test_deterministic_and_salted(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash("abc") != stable_hash("abd")
        assert stable_hash("abc", salt="x") != stable_hash("abc", salt="y")

    def test_64_bit_range(self):
        h = stable_hash("anything")
        assert 0 <= h < 2**64


class TestMembership:
    def test_add_remove_roundtrip(self):
        ring = HashRing([0, 1, 2])
        assert len(ring) == 3 and 1 in ring
        ring.remove(1)
        assert len(ring) == 2 and 1 not in ring
        ring.add(1)
        assert len(ring) == 3

    def test_duplicate_add_rejected(self):
        ring = HashRing([0])
        with pytest.raises(ValueError):
            ring.add(0)

    def test_remove_absent_rejected(self):
        ring = HashRing([0])
        with pytest.raises(KeyError):
            ring.remove(7)

    def test_empty_ring_assign_raises(self):
        with pytest.raises(LookupError):
            HashRing().assign("k")


class TestConsistency:
    """The Karger guarantee the router's cache warmth relies on."""

    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_removing_one_node_moves_at_most_its_share(self, n):
        ring = HashRing(range(n))
        before = assignments(ring)
        ring.remove(n - 1)
        after = assignments(ring)
        # Keys NOT owned by the removed node must not move at all ...
        moved = sum(
            1
            for k in KEYS
            if before[k] != (n - 1) and before[k] != after[k]
        )
        assert moved == 0
        # ... so the total churn is exactly the removed node's share,
        # which concentration around 1/n bounds at ~2/n for 64 vnodes.
        displaced = sum(1 for k in KEYS if before[k] == n - 1)
        assert displaced <= 2 * len(KEYS) / n

    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    def test_adding_one_node_moves_at_most_its_share(self, n):
        ring = HashRing(range(n))
        before = assignments(ring)
        ring.add(n)
        after = assignments(ring)
        # Only keys captured by the new node may change owner.
        for k in KEYS:
            if after[k] != before[k]:
                assert after[k] == n
        captured = sum(1 for k in KEYS if after[k] == n)
        assert captured <= 2 * len(KEYS) / (n + 1)

    def test_assignment_is_process_independent(self):
        # Rebuilt rings agree key-for-key (blake2b, not builtin hash).
        a, b = HashRing([0, 1, 2]), HashRing([0, 1, 2])
        assert assignments(a) == assignments(b)


class TestBalance:
    def test_vnode_spread_keeps_ownership_balanced(self):
        n = 4
        ring = HashRing(range(n), vnodes=DEFAULT_VNODES)
        counts = {r: 0 for r in range(n)}
        for k in KEYS:
            counts[ring.assign(k)] += 1
        share = len(KEYS) / n
        for c in counts.values():
            assert 0.5 * share <= c <= 1.7 * share


class TestPreference:
    def test_head_matches_assign_and_covers_all_nodes(self):
        ring = HashRing(range(4))
        for k in KEYS[:50]:
            pref = ring.preference(k)
            assert pref[0] == ring.assign(k)
            assert sorted(pref) == [0, 1, 2, 3]

    def test_failover_order_is_what_removal_produces(self):
        # preference()[1] must be the owner after the primary leaves —
        # that is the whole point of the failover list.
        ring = HashRing(range(4))
        for k in KEYS[:50]:
            primary, fallback = ring.preference(k)[:2]
            ring.remove(primary)
            assert ring.assign(k) == fallback
            ring.add(primary)
