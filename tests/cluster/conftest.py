"""Cluster-tier fixtures.

Multi-process tests run replicas in **echo mode** (``cluster_echo`` in
``config.extra``): the replica skips the engine build and applies a
deterministic array transform, so transport, routing, supervision, and
crash-recovery are all exercised in milliseconds per process instead of
paying a session build per replica.  Engine-backed cluster inference is
covered by the serving benchmark's bit-exactness gate
(``repro.serve.bench.run_replicated``) and the scaling benchmark.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.config import ServeConfig

#: Echo output width (matches lenet's 10 classes for shape parity).
ECHO_CLASSES = 10

#: Small image shape so arenas stay tiny and writes are fast.
ECHO_SHAPE = (1, 8, 8)


def echo_config(replicas: int = 2, max_batch_size: int = 4, **extra) -> ServeConfig:
    return ServeConfig(
        model="lenet",
        scheme="odq",
        dataset="mnist",
        train_epochs=0,
        calib_images=32,
        max_batch_size=max_batch_size,
        replicas=replicas,
        port=0,
        extra={
            "cluster_echo": True,
            "cluster_echo_classes": ECHO_CLASSES,
            **extra,
        },
    )


def expected_echo(arr: np.ndarray) -> np.ndarray:
    """What echo-mode replicas return for ``arr`` (first 10 features)."""
    flat = arr.reshape(arr.shape[0], -1)
    return flat[:, :ECHO_CLASSES].copy()


@pytest.fixture
def echo_pool():
    """A started 2-replica echo pool, shut down at test end."""
    from repro.cluster import ClusterPool

    pool = ClusterPool(
        echo_config(replicas=2),
        input_shape=ECHO_SHAPE,
        num_classes=ECHO_CLASSES,
    )
    pool.start()
    assert pool.wait_ready(timeout=60), "replicas failed to come up"
    yield pool
    pool.shutdown()
